"""F4: Figure 4 — avg/stddev temperature per 30-minute window, plus zoom.

Regenerates the left panel's data series (window → avg, stddev) and the
right panel's zoom (per-tuple temperatures of the highlighted windows),
asserting the shapes DESIGN.md commits to:

* high-stddev windows exist and are a minority;
* zooming exposes tuples above 100°F belonging only to failing sensors.
"""

import numpy as np


def _run_window_query(db):
    return db.sql(
        "SELECT minute / 30 AS w, avg(temp) AS avg_temp, "
        "stddev(temp) AS std_temp FROM readings GROUP BY minute / 30 "
        "ORDER BY w"
    )


def test_fig4_left_window_series(benchmark, intel_workload):
    db, table, __ = intel_workload
    result = benchmark(_run_window_query, db)

    std = np.asarray(result.column("std_temp"))
    avg = np.asarray(result.column("avg_temp"))
    typical = float(np.median(std))
    high = std > 4 * typical
    assert 0 < high.sum() < len(std) / 2, "anomalous windows must be a minority"
    # The paper's plot: suspicious windows stand far above the band.
    assert std[high].min() > 3 * typical

    print("\nFigure 4 (left) series — window, avg_temp, std_temp:")
    for i in range(result.num_rows):
        marker = "  <-- suspicious" if high[i] else ""
        print(f"  w={result.row(i)[0]:>3}  avg={avg[i]:7.2f}  "
              f"std={std[i]:6.2f}{marker}")


def test_fig4_right_zoom_tuples(benchmark, intel_workload, intel_result,
                                intel_selection):
    __, table, truth = intel_workload
    S, F, dprime = intel_selection

    zoomed = benchmark(intel_result.inputs_for, S)

    temps = np.asarray(zoomed.column("temp"))
    hot = temps > 100.0
    assert hot.sum() > 0, "zoom must expose >100-degree tuples"
    hot_tids = np.asarray(zoomed.tids)[hot]
    hot_sensors = sorted(
        set(int(s) for s in np.asarray(zoomed.column("sensorid"))[hot])
    )
    assert hot_sensors == [15, 18], "hot tuples come from the failing motes"
    truth_set = set(int(t) for t in truth.tids)
    assert all(int(t) in truth_set for t in hot_tids)

    print(f"\nFigure 4 (right): zoomed {len(zoomed)} tuples, "
          f"{int(hot.sum())} above 100F, from sensors {hot_sensors}")
