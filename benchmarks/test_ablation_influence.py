"""A1: removable-aggregate influence vs naive recomputation.

The Preprocessor's leave-one-out ranking is O(|F|) with the
removable-aggregate closed forms and O(|F|²) with naive per-tuple
recomputation. This ablation measures both on growing group sizes and
checks they agree numerically — the speedup is the price of admission
for interactive debugging of large groups.
"""

import numpy as np
import pytest

from repro.core import TooHigh
from repro.core.influence import leave_one_out_influence
from repro.db import get_aggregate

GROUP_SIZES = [200, 800, 3200]


def _group(n: int):
    rng = np.random.default_rng(n)
    values = rng.normal(50, 5, n)
    values[:: max(n // 20, 1)] += 60.0  # a few culprits
    return values, np.arange(n, dtype=np.int64)


@pytest.mark.parametrize("n", GROUP_SIZES)
@pytest.mark.parametrize("agg_name", ["avg", "stddev"])
def test_a1_fast_influence(benchmark, n, agg_name):
    values, tids = _group(n)
    agg = get_aggregate(agg_name)
    metric = TooHigh(55.0)

    result = benchmark(
        leave_one_out_influence, [values], [tids], [0], agg, metric, True
    )
    assert len(result.scores) == n


@pytest.mark.parametrize("n", GROUP_SIZES[:2])  # naive is quadratic; cap size
@pytest.mark.parametrize("agg_name", ["avg", "stddev"])
def test_a1_naive_influence(benchmark, n, agg_name):
    values, tids = _group(n)
    agg = get_aggregate(agg_name)
    metric = TooHigh(55.0)

    result = benchmark(
        leave_one_out_influence, [values], [tids], [0], agg, metric, False
    )
    assert len(result.scores) == n


@pytest.mark.parametrize("agg_name", ["avg", "sum", "stddev", "min", "max"])
def test_a1_fast_equals_naive(benchmark, agg_name):
    values, tids = _group(400)
    agg = get_aggregate(agg_name)
    metric = TooHigh(55.0)

    fast = benchmark(
        leave_one_out_influence, [values], [tids], [0], agg, metric, True
    )
    naive = leave_one_out_influence([values], [tids], [0], agg, metric, False)
    np.testing.assert_allclose(fast.scores, naive.scores, rtol=1e-7, atol=1e-7)
