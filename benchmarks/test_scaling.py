"""Q2: runtime scaling of the ranked-provenance pipeline.

Sweeps the input size (rows of the base table / of F) and the selection
size |S|, measuring end-to-end ``debug()`` latency and bare query
execution. Expected shape: near-linear growth in |F| — the pipeline's
stages are all linear passes over F (influence via removable aggregates,
condition-mask precomputation, tree building with capped thresholds).
"""

import numpy as np
import pytest

from repro.core import RankedProvenance, TooHigh
from repro.data import IntelConfig, generate_intel
from repro.db import Database

ROWS_SWEEP = [5400, 21600, 43200]  # readings: 54 sensors x {100,400,800} epochs


def _build(rows: int):
    epochs = rows // 54
    duration = epochs * 2
    table, truth = generate_intel(
        IntelConfig(
            n_sensors=54,
            duration_minutes=duration,
            interval_minutes=2.0,
            failing_sensors=(15, 18),
            failure_onset_frac=0.7,
        )
    )
    db = Database()
    db.register(table)
    result = db.sql(
        "SELECT minute / 30 AS w, avg(temp) AS a, stddev(temp) AS s "
        "FROM readings GROUP BY minute / 30 ORDER BY w"
    )
    std = np.asarray(result.column("s"))
    cutoff = 4 * float(np.median(std))
    S = [i for i in range(result.num_rows) if std[i] > cutoff]
    F = result.inputs_for(S)
    dprime = np.asarray(F.tids)[np.asarray(F.column("temp")) > 100.0]
    return db, result, S, dprime, len(F)


@pytest.mark.parametrize("rows", ROWS_SWEEP)
def test_q2_debug_latency_vs_rows(benchmark, rows):
    db, result, S, dprime, f_size = _build(rows)
    pipeline = RankedProvenance()

    report = benchmark(
        pipeline.debug, result, S, TooHigh(4.0), dprime_tids=dprime,
        agg_name="s",
    )
    assert len(report) > 0
    print(f"\nQ2: rows={rows}, |F|={f_size}, |S|={len(S)}, "
          f"stage timings (ms): "
          + ", ".join(f"{k}={1000 * v:.0f}" for k, v in report.timings.items()))


@pytest.mark.parametrize("rows", ROWS_SWEEP)
def test_q2_query_execution_vs_rows(benchmark, rows):
    db, __, __, __, __ = _build(rows)

    result = benchmark(
        db.sql,
        "SELECT minute / 30 AS w, avg(temp) AS a, stddev(temp) AS s "
        "FROM readings GROUP BY minute / 30 ORDER BY w",
    )
    assert result.num_rows > 0


@pytest.mark.parametrize("n_selected", [1, 4, 8])
def test_q2_debug_latency_vs_selection_size(benchmark, n_selected):
    db, result, S, dprime, __ = _build(21600)
    S = S[:n_selected] if len(S) >= n_selected else S
    pipeline = RankedProvenance()

    report = benchmark(
        pipeline.debug, result, S, TooHigh(4.0), dprime_tids=dprime,
        agg_name="s",
    )
    assert report.epsilon >= 0
