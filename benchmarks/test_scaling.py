"""Q2: runtime scaling of the ranked-provenance pipeline.

Sweeps the input size (rows of the base table / of F) and the selection
size |S|, measuring end-to-end ``debug()`` latency and bare query
execution. Expected shape: near-linear growth in |F| — the pipeline's
stages are all linear passes over F (influence via removable aggregates,
condition-mask precomputation, tree building with capped thresholds).

The grouped-kernel ablation compares the segmented vectorized kernels
(`compute_grouped` / `leave_one_out_grouped` / `compute_without_grouped`)
against the per-group Python loop they replaced, on the same data the
scaling sweep uses.
"""

import time

import numpy as np
import pytest

from repro.core import RankedProvenance, TooHigh
from repro.data import IntelConfig, generate_intel
from repro.db import Database, SegmentedValues, get_aggregate

ROWS_SWEEP = [5400, 21600, 43200]  # readings: 54 sensors x {100,400,800} epochs


def _build(rows: int):
    epochs = rows // 54
    duration = epochs * 2
    table, truth = generate_intel(
        IntelConfig(
            n_sensors=54,
            duration_minutes=duration,
            interval_minutes=2.0,
            failing_sensors=(15, 18),
            failure_onset_frac=0.7,
        )
    )
    db = Database()
    db.register(table)
    result = db.sql(
        "SELECT minute / 30 AS w, avg(temp) AS a, stddev(temp) AS s "
        "FROM readings GROUP BY minute / 30 ORDER BY w"
    )
    std = np.asarray(result.column("s"))
    cutoff = 4 * float(np.median(std))
    S = [i for i in range(result.num_rows) if std[i] > cutoff]
    F = result.inputs_for(S)
    dprime = np.asarray(F.tids)[np.asarray(F.column("temp")) > 100.0]
    return db, result, S, dprime, len(F)


@pytest.mark.parametrize("rows", ROWS_SWEEP)
def test_q2_debug_latency_vs_rows(benchmark, rows):
    db, result, S, dprime, f_size = _build(rows)
    pipeline = RankedProvenance()

    report = benchmark(
        pipeline.debug, result, S, TooHigh(4.0), dprime_tids=dprime,
        agg_name="s",
    )
    assert len(report) > 0
    print(f"\nQ2: rows={rows}, |F|={f_size}, |S|={len(S)}, "
          f"stage timings (ms): "
          + ", ".join(f"{k}={1000 * v:.0f}" for k, v in report.timings.items()))


@pytest.mark.parametrize("rows", ROWS_SWEEP)
def test_q2_query_execution_vs_rows(benchmark, rows):
    db, __, __, __, __ = _build(rows)

    result = benchmark(
        db.sql,
        "SELECT minute / 30 AS w, avg(temp) AS a, stddev(temp) AS s "
        "FROM readings GROUP BY minute / 30 ORDER BY w",
    )
    assert result.num_rows > 0


def _intel_segments(rows: int) -> SegmentedValues:
    """Per-minute temperature segments of the intel table (many groups)."""
    epochs = rows // 54
    table, __ = generate_intel(
        IntelConfig(
            n_sensors=54,
            duration_minutes=epochs * 2,
            interval_minutes=2.0,
            failing_sensors=(15, 18),
            failure_onset_frac=0.7,
        )
    )
    temps = np.asarray(table.column("temp"), dtype=np.float64)
    minutes = np.asarray(table.column("minute"), dtype=np.float64)
    uniques, codes = np.unique(minutes, return_inverse=True)
    seg, __ = SegmentedValues.from_codes(temps, codes, len(uniques))
    return seg


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("agg_name", ["avg", "stddev", "max"])
def test_q2_grouped_kernels_vs_python_loop(agg_name):
    """A1 ablation: the segmented kernels must beat the per-group loop.

    Runs on the largest configured input size. `*_grouped_loop` is the
    exact code shape the executor/influence/ranker hot paths used before
    the segmented rewrite (one Python-level Aggregate call per group).
    """
    seg = _intel_segments(ROWS_SWEEP[-1])
    assert seg.n_segments > 500  # many groups: the loop's worst case
    agg = get_aggregate(agg_name)
    rng = np.random.default_rng(0)
    mask = rng.random(len(seg.values)) < 0.25

    timings = {}
    for kernel, grouped, loop in [
        ("compute", agg.compute_grouped, agg.compute_grouped_loop),
        ("leave_one_out", agg.leave_one_out_grouped, agg.leave_one_out_grouped_loop),
    ]:
        np.testing.assert_allclose(grouped(seg), loop(seg), rtol=1e-6, atol=1e-6)
        timings[kernel] = (_best_of(lambda: grouped(seg)),
                           _best_of(lambda: loop(seg)))
    np.testing.assert_allclose(
        agg.compute_without_grouped(seg, mask),
        agg.compute_without_grouped_loop(seg, mask),
        rtol=1e-6, atol=1e-6,
    )
    timings["compute_without"] = (
        _best_of(lambda: agg.compute_without_grouped(seg, mask)),
        _best_of(lambda: agg.compute_without_grouped_loop(seg, mask)),
    )

    report = ", ".join(
        f"{kernel}: grouped={1000 * fast:.2f}ms loop={1000 * slow:.2f}ms "
        f"({slow / fast:.0f}x)"
        for kernel, (fast, slow) in timings.items()
    )
    print(f"\nA1 ablation [{agg_name}] |values|={len(seg.values)}, "
          f"groups={seg.n_segments} -> {report}")
    for kernel, (fast, slow) in timings.items():
        assert fast < slow, f"{agg_name}/{kernel}: grouped kernel slower than loop"


@pytest.mark.parametrize("n_selected", [1, 4, 8])
def test_q2_debug_latency_vs_selection_size(benchmark, n_selected):
    db, result, S, dprime, __ = _build(21600)
    S = S[:n_selected] if len(S) >= n_selected else S
    pipeline = RankedProvenance()

    report = benchmark(
        pipeline.debug, result, S, TooHigh(4.0), dprime_tids=dprime,
        agg_name="s",
    )
    assert report.epsilon >= 0
