"""Partitioned-execution benchmarks: 1 vs N workers, in-process vs blocks.

Two questions, answered at each workload scale of
``REPRO_PARTITION_BENCH_SCALES`` (default ``1`` — the tier-1 smoke; CI
runs ``1,10,50``):

1. **Scatter-gather serving** — the same multi-dataset debug workload
   through a single-process server and through an N-worker server with
   consistent-hash routing. Datasets shard across workers, so the
   worker tier preprocesses and ranks in true parallel processes; at
   the 50× scale the compute dominates the IPC and the multi-worker
   req/s should exceed the single-process baseline on a multi-core
   host (on one core the expectation degenerates to ~1.0, so the
   record carries ``cpu_count``). Per-worker preprocess-cache hit
   rates are recorded — cache affinity means each shard keeps its own
   hit rate high.

2. **Partitioned backend latency** — one ``debug()`` on the same
   selection with ``backend="in_process"`` vs ``backend="partitioned"``
   (byte-identical answers; the parity suite enforces that — here we
   only time them).

Results land in ``BENCH_partition.json`` at the repo root (a CI
artifact), one section per scale.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core import PipelineConfig
from repro.data import IntelConfig, generate_intel
from repro.db import Database
from repro.frontend import Brush, DBWipesSession
from repro.service import (
    DatasetCatalog,
    DBWipesServer,
    HashRing,
    ServiceClient,
    SessionManager,
)

SCALES = tuple(
    int(scale)
    for scale in os.environ.get("REPRO_PARTITION_BENCH_SCALES", "1").split(",")
    if scale.strip()
)
N_DATASETS = 4
N_WORKERS = 4
N_CYCLES = 2
#: Wire requests per debug cycle (excluding the one-time open).
REQUESTS_PER_CYCLE = 4
#: Base duration in minutes; scale 50 ≈ 324k readings across datasets.
BASE_MINUTES = 240

BOOTSTRAP = (
    "SELECT minute / 30 AS w, avg(temp) AS avg_temp, "
    "stddev(temp) AS std_temp FROM readings GROUP BY minute / 30 ORDER BY w"
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_partition.json"


def _sharded_dataset_names() -> list[str]:
    """N dataset names that the router provably spreads 1:1 over workers.

    The ring is deterministic, so probing candidate names here picks the
    same shards the server will: every worker gets exactly one dataset
    and the benchmark measures true N-way parallelism, not the luck of
    the hash draw.
    """
    ring = HashRing(range(N_WORKERS))
    names: list[str] = []
    owners: set[int] = set()
    candidate = 0
    while len(names) < N_DATASETS:
        name = f"intel-{candidate}"
        owner = int(ring.node_for(name))
        if owner not in owners:
            owners.add(owner)
            names.append(name)
        candidate += 1
    return names


def _intel_db(scale: int, seed: int) -> Database:
    table, __ = generate_intel(
        IntelConfig(
            n_sensors=54,
            duration_minutes=BASE_MINUTES * scale,
            interval_minutes=2.0,
            failing_sensors=(15, 18),
            failure_onset_frac=0.7,
            seed=seed,
        )
    )
    db = Database()
    db.register(table)
    return db


def _build_catalog(databases: dict[str, Database]) -> DatasetCatalog:
    catalog = DatasetCatalog()
    for name, db in databases.items():
        catalog.register(name, db, bootstrap=BOOTSTRAP)
    return catalog


def run_cycle(client: ServiceClient) -> str:
    """One intel debug cycle; returns the top predicate text."""
    result = client.execute(BOOTSTRAP, max_rows=None)
    std_index = result["columns"].index("std_temp")
    stds = sorted(
        row[std_index] for row in result["rows"] if row[std_index] is not None
    )
    cutoff = 4.0 * stds[len(stds) // 2]
    client.select_results(brush={"above": cutoff}, y="std_temp")
    client.set_metric("too_high")
    report = client.debug(max_rows=1)
    return report["predicates"][0]["predicate"]


def _drive(host: str, port: int, dataset: str) -> list[str]:
    with ServiceClient(
        host, port, session=f"bench-{dataset}", timeout=600
    ) as client:
        client.open(dataset)
        return [run_cycle(client) for __ in range(N_CYCLES)]


def _measure_tier(server: DBWipesServer, names: list[str]) -> tuple[dict, dict]:
    host, port = server.address
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=len(names)) as pool:
        answers = dict(
            zip(names, pool.map(lambda n: _drive(host, port, n), names))
        )
    elapsed = time.perf_counter() - start
    n_requests = len(names) * (1 + N_CYCLES * REQUESTS_PER_CYCLE)
    return answers, {
        "n_clients": len(names),
        "n_cycles_per_client": N_CYCLES,
        "elapsed_seconds": elapsed,
        "requests_per_second": n_requests / elapsed,
        "debug_cycles_per_second": (len(names) * N_CYCLES) / elapsed,
    }


def _merge_into_bench(section: str, payload) -> None:
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    if not isinstance(data, dict):
        data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


class TestPartitionedServing:
    @pytest.mark.parametrize("scale", SCALES)
    def test_one_vs_n_workers(self, scale):
        names = _sharded_dataset_names()
        databases = {
            name: _intel_db(scale, seed=100 + i)
            for i, name in enumerate(names)
        }

        manager = SessionManager(catalog=_build_catalog(databases))
        with DBWipesServer(manager, port=0) as single:
            single_answers, single_record = _measure_tier(single, names)

        multi = DBWipesServer(
            port=0,
            workers=N_WORKERS,
            catalog_factory=lambda: _build_catalog(databases),
        )
        multi.start()
        try:
            multi_answers, multi_record = _measure_tier(multi, names)
            with ServiceClient(*multi.address, timeout=600) as client:
                stats = client.stats()
        finally:
            multi.stop()

        # Parity first: each dataset's ranked answer is tier-independent,
        # and repeat cycles within a tier agree with themselves.
        assert multi_answers == single_answers
        for answers in single_answers.values():
            assert len(set(answers)) == 1

        per_worker_cache = [
            {
                "worker": entry["worker"],
                "requests": entry["requests"],
                "sessions": entry["stats"]["sessions"],
                "preprocess_cache": entry["stats"]["preprocess_cache"],
            }
            for entry in stats["per_worker"]
            if "stats" in entry
        ]
        busy = [w for w in per_worker_cache if w["sessions"] > 0]
        # Cache affinity: every shard that served sessions did its one
        # preprocess and hit its own cache for every repeat cycle.
        for worker in busy:
            cache = worker["preprocess_cache"]
            assert cache["hits"] >= cache["misses"]

        section = {
            "benchmark": "partitioned_serving",
            "scale": scale,
            "n_datasets": N_DATASETS,
            "n_workers": N_WORKERS,
            # Context for the speedup: N processes cannot beat one on a
            # single-core host — there the honest expectation is ~1.0.
            "cpu_count": os.cpu_count(),
            "rows_per_dataset": 54 * (BASE_MINUTES * scale) // 2,
            "single_process": single_record,
            "multi_worker": multi_record,
            "speedup": (
                multi_record["requests_per_second"]
                / single_record["requests_per_second"]
            ),
            "datasets_sharded_over": len(busy),
            "per_worker": per_worker_cache,
        }
        _merge_into_bench(f"serving_scale_{scale}x", section)
        print(
            f"\npartitioned serving {scale}x: "
            f"single={single_record['requests_per_second']:.1f} req/s, "
            f"{N_WORKERS} workers={multi_record['requests_per_second']:.1f} "
            f"req/s (speedup {section['speedup']:.2f}, "
            f"{len(busy)} shards busy) -> {BENCH_PATH.name}"
        )


class TestPartitionedBackendLatency:
    @pytest.mark.parametrize("scale", SCALES)
    def test_in_process_vs_partitioned_debug(self, scale):
        db = _intel_db(scale, seed=100)
        timings = {}
        answers = {}
        for backend, n_partitions in (("in_process", 1), ("partitioned", 4)):
            session = DBWipesSession(
                db,
                PipelineConfig(backend=backend, n_partitions=n_partitions),
            )
            result = session.execute(BOOTSTRAP)
            import numpy as np

            std = np.asarray(result.column("std_temp"), dtype=float)
            cutoff = 4.0 * float(np.median(std[np.isfinite(std)]))
            session.select_results(Brush.above(cutoff), y="std_temp")
            session.set_metric("too_high")
            start = time.perf_counter()
            report = session.debug()
            timings[backend] = time.perf_counter() - start
            answers[backend] = [
                ranked.describe() for ranked in report
            ]
        assert answers["partitioned"] == answers["in_process"]
        section = {
            "benchmark": "partitioned_debug_latency",
            "scale": scale,
            "n_partitions": 4,
            "in_process_seconds": timings["in_process"],
            "partitioned_seconds": timings["partitioned"],
            "n_ranked": len(answers["in_process"]),
        }
        _merge_into_bench(f"latency_scale_{scale}x", section)
        print(
            f"\npartitioned debug {scale}x: "
            f"in_process={timings['in_process']:.3f}s, "
            f"partitioned(4)={timings['partitioned']:.3f}s "
            f"-> {BENCH_PATH.name}"
        )
