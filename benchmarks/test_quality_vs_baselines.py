"""Q1: explanation quality — DBWipes vs classic provenance baselines.

The quantitative evaluation the demo implies. For each workload we
measure precision / recall / F1 against injected ground truth for:

* **DBWipes** — the top-ranked predicate's matched tuples;
* **fine-grained provenance** — all inputs of S (recall 1, precision ~0);
* **pre-defined criteria** — the fixed value-based ranking, cut at k =
  |ground truth in F| (the most favorable possible cut);
* **causal responsibility** — responsibility ranking, same top-k cut.

Expected shape (DESIGN.md): DBWipes ≫ fine-grained everywhere; DBWipes
beats the pre-defined criteria on the decoy workload where "the user's
notion of error differs" (clustered moderate anomalies + legitimate
extreme outliers).
"""

import numpy as np

from repro.baselines import (
    fine_grained_explanation,
    predefined_criteria_explanation,
    responsibility_explanation,
)
from repro.core import PipelineConfig, Preprocessor, RankedProvenance, TooHigh, TooLow
from repro.data import (
    dirty_group_rows,
    explanation_quality,
    tid_set_quality,
)


def _evaluate(result, S, metric, truth, dprime, feature_columns=None,
              agg_name=None):
    """One row of the Q1 table per method."""
    pre = Preprocessor().run(result, S, metric, agg_name=agg_name)
    F = pre.F
    k = int(truth.label_mask(F).sum())
    rows = {}

    config = PipelineConfig(feature_columns=feature_columns)
    report = RankedProvenance(config).debug(
        result, S, metric, dprime_tids=dprime, agg_name=agg_name
    )
    assert report.best is not None
    rows["dbwipes (top predicate)"] = explanation_quality(
        report.best.predicate, F, truth
    )

    fine = fine_grained_explanation(result, S)
    rows["fine-grained provenance"] = tid_set_quality(fine.tids, F, truth)

    fixed = predefined_criteria_explanation(pre)
    rows[f"predefined criteria top-{k}"] = tid_set_quality(fixed.top(k), F, truth)

    responsibility = responsibility_explanation(pre)
    rows[f"responsibility top-{k}"] = tid_set_quality(
        responsibility.top(k), F, truth
    )
    return rows


def _print_table(title, rows):
    print(f"\nQ1 — {title}")
    print(f"  {'method':32s} {'prec':>6s} {'rec':>6s} {'f1':>6s}")
    for name, quality in rows.items():
        print(f"  {name:32s} {quality.precision:6.3f} {quality.recall:6.3f} "
              f"{quality.f1:6.3f}")


def test_q1_intel_quality(benchmark, intel_workload, intel_result,
                          intel_selection):
    __, __, truth = intel_workload
    S, F, dprime = intel_selection
    metric = TooHigh(4.0)

    rows = benchmark(
        _evaluate, intel_result, S, metric, truth, dprime,
        agg_name="std_temp",
    )
    _print_table("Intel sensor workload", rows)

    dbwipes = rows["dbwipes (top predicate)"]
    fine = rows["fine-grained provenance"]
    assert dbwipes.f1 > 0.9
    assert fine.recall == 1.0
    assert fine.precision < 0.1, "the paper's 'very low precision' complaint"
    assert dbwipes.precision > 10 * fine.precision


def test_q1_fec_quality(benchmark, fec_workload):
    db, table, truth = fec_workload
    from repro.data import walkthrough_query

    result = db.sql(walkthrough_query("MCCAIN"))
    totals = np.asarray(result.column("total"))
    S = [i for i in range(result.num_rows) if totals[i] < 0]
    F = result.inputs_for(S)
    dprime = np.asarray(F.tids)[np.asarray(F.column("amount")) < 0]
    metric = TooLow(0.0)

    rows = benchmark(_evaluate, result, S, metric, truth, dprime)
    _print_table("FEC contributions workload", rows)

    dbwipes = rows["dbwipes (top predicate)"]
    assert dbwipes.f1 > 0.9
    assert rows["fine-grained provenance"].precision < 0.5


def test_q1_decoy_quality(benchmark, decoy_workload):
    """The limitation-1 scenario: fixed criteria chase the decoys."""
    db, table, truth = decoy_workload
    result = db.sql(
        "SELECT grp, avg(measure) AS m FROM facts GROUP BY grp ORDER BY grp"
    )
    dirty = set(dirty_group_rows(table, truth).tolist())
    S = [i for i in range(result.num_rows) if result.row(i)[0] in dirty]
    values = np.asarray(result.column("m"))
    threshold = float(np.delete(values, S).max())
    metric = TooHigh(threshold)
    F = result.inputs_for(S)
    dprime = np.asarray(F.tids)[truth.label_mask(F)]

    rows = benchmark(
        _evaluate, result, S, metric, truth, dprime,
        feature_columns=("a", "b", "x", "y"),
    )
    _print_table("decoy workload (clustered anomaly + extreme legit outliers)",
                 rows)

    dbwipes = rows["dbwipes (top predicate)"]
    fixed = next(v for k, v in rows.items() if k.startswith("predefined"))
    assert dbwipes.f1 > fixed.f1, (
        "DBWipes must beat the fixed criterion when the user's notion of "
        "error differs from 'largest values'"
    )
