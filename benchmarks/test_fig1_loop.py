"""F1: Figure 1 — the full interactive loop, end to end.

Measures the complete frontend↔backend cycle on the Intel workload:
execute → visualize → select S → zoom → select D' → error form →
debug → click predicate → re-execute → undo. This is the latency an
attendee of the demo would experience per interaction round.
"""

import numpy as np

from repro.frontend import Brush, DBWipesSession


def test_fig1_full_interactive_loop(benchmark, intel_workload):
    db, __, __ = intel_workload

    def loop():
        session = DBWipesSession(db)
        session.execute(
            "SELECT minute / 30 AS w, avg(temp) AS avg_temp, "
            "stddev(temp) AS std_temp FROM readings GROUP BY minute / 30 "
            "ORDER BY w"
        )
        std = np.asarray(session.result.column("std_temp"))
        cutoff = 4 * float(np.median(std))
        session.select_results(Brush.above(cutoff), y="std_temp")
        session.zoom()
        session.select_inputs(Brush.above(100.0))
        session.error_form("std_temp")
        session.set_metric("too_high", agg_name="std_temp")
        report = session.debug()
        session.apply_predicate(0)
        session.undo_cleaning()
        return report

    report = benchmark(loop)
    assert len(report) > 0
    assert report.best.relative_error_reduction > 0.9

    print("\nFigure 1 loop stage timings (last run):")
    for stage, seconds in report.timings.items():
        print(f"  {stage:22s} {1000 * seconds:8.1f} ms")
