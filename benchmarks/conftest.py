"""Shared workload fixtures for the benchmark harness.

Each fixture is session-scoped: dataset generation is not part of any
measured benchmark. Sizes are laptop-scale (the paper's demo ran live on
a laptop too) but configurable via the ``REPRO_BENCH_SCALE`` environment
variable (1 = default, 2 = double duration/rows, ...).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import (
    FECConfig,
    IntelConfig,
    SyntheticConfig,
    generate_fec,
    generate_intel,
    generate_synthetic,
)
from repro.db import Database

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))


@pytest.fixture(scope="session")
def intel_workload():
    """Intel Lab stand-in: 54 sensors, high-variance failure windows."""
    table, truth = generate_intel(
        IntelConfig(
            n_sensors=54,
            duration_minutes=720 * SCALE,
            interval_minutes=2.0,
            failing_sensors=(15, 18),
            failure_onset_frac=0.7,
        )
    )
    db = Database()
    db.register(table)
    return db, table, truth


@pytest.fixture(scope="session")
def intel_result(intel_workload):
    db, __, __ = intel_workload
    return db.sql(
        "SELECT minute / 30 AS w, avg(temp) AS avg_temp, "
        "stddev(temp) AS std_temp FROM readings GROUP BY minute / 30 "
        "ORDER BY w"
    )


@pytest.fixture(scope="session")
def intel_selection(intel_result):
    """The Figure-4 selection: S (high-stddev windows) and D' (hot tuples)."""
    std = np.asarray(intel_result.column("std_temp"))
    cutoff = 4 * float(np.median(std))
    S = [i for i in range(intel_result.num_rows) if std[i] > cutoff]
    F = intel_result.inputs_for(S)
    dprime = np.asarray(F.tids)[np.asarray(F.column("temp")) > 100.0]
    return S, F, dprime


@pytest.fixture(scope="session")
def fec_workload():
    """FEC stand-in with the REATTRIBUTION TO SPOUSE anomaly."""
    table, truth = generate_fec(FECConfig(n_days=600, base_rate=30 * SCALE))
    db = Database()
    db.register(table)
    return db, table, truth


@pytest.fixture(scope="session")
def decoy_workload():
    """Clustered moderate anomaly + extreme legitimate decoys (limitation 1)."""
    table, truth = generate_synthetic(
        SyntheticConfig(
            n_rows=6000 * SCALE,
            shift_stds=10.0,
            legit_outlier_rate=0.01,
            legit_outlier_stds=25.0,
            predicate_kind="categorical",
            seed=13,
        )
    )
    db = Database()
    db.register(table)
    return db, table, truth
