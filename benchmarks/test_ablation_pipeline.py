"""A2: pipeline design-choice ablations.

DESIGN.md calls out four design choices; this bench measures each one's
contribution to explanation quality (F1 of the top predicate vs ground
truth) on the decoy workload, plus the latency cost of the full
configuration:

* D' cleaning (kmeans / nb / none) — with a deliberately polluted D';
* subgroup-discovery extension on/off;
* the number of tree strategies m (1 vs the default 5);
* influence weighting of tree samples on/off.
"""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_STRATEGIES,
    PipelineConfig,
    RankedProvenance,
    RankerWeights,
    TooHigh,
)
from repro.data import dirty_group_rows, explanation_quality


@pytest.fixture(scope="module")
def decoy_case():
    """A deliberately *hard* workload: subtle conjunction anomaly, decoy
    outliers, and a sloppy (2/3 innocent) D' brush — chosen because the
    easy workloads converge to the same answer under every configuration,
    which demonstrates robustness but not the ablation deltas."""
    from repro.data import SyntheticConfig, generate_synthetic
    from repro.db import Database

    table, truth = generate_synthetic(
        SyntheticConfig(
            n_rows=6000,
            shift_stds=6.0,
            predicate_kind="conjunction",
            legit_outlier_rate=0.02,
            legit_outlier_stds=12.0,
            corruption_rate=1.0,
            n_dirty_groups=5,
            seed=23,
        )
    )
    db = Database()
    db.register(table)
    result = db.sql(
        "SELECT grp, avg(measure) AS m FROM facts GROUP BY grp ORDER BY grp"
    )
    dirty = set(dirty_group_rows(table, truth).tolist())
    S = [i for i in range(result.num_rows) if result.row(i)[0] in dirty]
    values = np.asarray(result.column("m"))
    threshold = float(np.delete(values, S).max())
    F = result.inputs_for(S)
    clean_dprime = np.asarray(F.tids)[truth.label_mask(F)]
    rng = np.random.default_rng(3)
    innocent = np.asarray(F.tids)[~truth.label_mask(F)]
    polluted = np.concatenate([
        clean_dprime,
        rng.choice(innocent, size=min(2 * len(clean_dprime), len(innocent)),
                   replace=False),
    ])
    return result, S, threshold, F, truth, clean_dprime, polluted


FEATURES = ("a", "b", "x", "y")

CONFIGS = {
    "full": PipelineConfig(feature_columns=FEATURES),
    "clean=none": PipelineConfig(feature_columns=FEATURES,
                                 clean_strategy="none"),
    "clean=nb": PipelineConfig(feature_columns=FEATURES, clean_strategy="nb"),
    "no-subgroups": PipelineConfig(feature_columns=FEATURES,
                                   extend_with_subgroups=False),
    "m=1 strategy": PipelineConfig(feature_columns=FEATURES,
                                   strategies=DEFAULT_STRATEGIES[:1]),
    "influence-weighted": PipelineConfig(feature_columns=FEATURES,
                                         weight_by_influence=True),
    # The most fragile combination: trust the sloppy brush verbatim and
    # never extend it — trees must learn from polluted labels alone.
    "bare (no clean, no subgroups)": PipelineConfig(
        feature_columns=FEATURES,
        clean_strategy="none",
        extend_with_subgroups=False,
    ),
    # Ranker ablations: drop the error-improvement term (rank by candidate
    # accuracy alone) and the parsimony term (ignore collateral deletions).
    "ranker: no delta-eps": PipelineConfig(
        feature_columns=FEATURES,
        ranker_weights=RankerWeights(error=0.0, accuracy=1.0,
                                     complexity=0.25, parsimony=0.3),
    ),
    "ranker: no parsimony": PipelineConfig(
        feature_columns=FEATURES,
        ranker_weights=RankerWeights(error=1.0, accuracy=0.5,
                                     complexity=0.25, parsimony=0.0),
    ),
}


@pytest.mark.parametrize("name", list(CONFIGS))
def test_a2_config_quality(benchmark, decoy_case, name):
    result, S, threshold, F, truth, __, polluted = decoy_case
    config = CONFIGS[name]

    pipeline = RankedProvenance(config)
    report = benchmark(
        pipeline.debug, result, S, TooHigh(threshold), dprime_tids=polluted
    )

    if report.best is not None:
        quality = explanation_quality(report.best.predicate, F, truth)
        f1 = quality.f1
    else:
        f1 = 0.0
    print(f"\nA2 [{name:30s}] top-1 F1 vs truth = {f1:.3f} "
          f"(candidates={report.n_candidates}, predicates={len(report)})")
    # Every configuration must at least produce some explanation from the
    # polluted D'; the full configuration must do reasonably well.
    assert len(report) > 0
    if name == "full":
        assert f1 > 0.5


def test_a2_delta_eps_term_is_load_bearing(decoy_case):
    """Ranking without the error-improvement term collapses (unbenchmarked).

    Without Δε the ranker trusts each predicate's fit to *its own
    candidate* — a self-fulfilling score — and surfaces descriptions that
    do not repair the error at all.
    """
    result, S, threshold, F, truth, __, polluted = decoy_case
    scores = {}
    for name in ("full", "ranker: no delta-eps"):
        report = RankedProvenance(CONFIGS[name]).debug(
            result, S, TooHigh(threshold), dprime_tids=polluted
        )
        quality = explanation_quality(report.best.predicate, F, truth)
        scores[name] = quality.f1
    print(f"\nA2 ranker ablation: full={scores['full']:.3f} "
          f"no-delta-eps={scores['ranker: no delta-eps']:.3f}")
    assert scores["full"] > scores["ranker: no delta-eps"] + 0.3
