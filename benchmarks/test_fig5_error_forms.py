"""F5: Figure 5 — the dynamically generated error-metric forms.

Asserts that every aggregate of the paper's list gets a sensible form
set, that defaults derive from the unselected (normal-looking) results,
and measures form generation latency (it sits on the interactive path:
the form regenerates on every new highlight).
"""

import numpy as np
import pytest

from repro.core import TooHigh, TooLow, NotEqual
from repro.frontend import forms_for

PAPER_AGGREGATES = ("avg", "sum", "count", "min", "max", "stddev")


@pytest.mark.parametrize("agg", PAPER_AGGREGATES)
def test_fig5_forms_offered_per_aggregate(benchmark, agg):
    selected = np.array([120.0, 130.0])
    unselected = np.array([20.0, 21.0, 22.0])

    options = benchmark(forms_for, agg, selected, unselected)

    ids = [option.form_id for option in options]
    assert "too_high" in ids
    assert "too_low" in ids
    assert "not_equal" in ids

    by_id = {option.form_id: option for option in options}
    # Defaults come from the *unselected* values: what normal looks like.
    assert by_id["too_high"].defaults["threshold"] == 22.0
    assert by_id["too_low"].defaults["threshold"] == 20.0
    assert by_id["not_equal"].defaults["expected"] == 21.0

    built = [
        by_id["too_high"].build(),
        by_id["too_low"].build(),
        by_id["not_equal"].build(),
    ]
    assert isinstance(built[0], TooHigh)
    assert isinstance(built[1], TooLow)
    assert isinstance(built[2], NotEqual)
