"""Closed-loop service throughput: K clients × M debug cycles.

The acceptance workload of the serving tier: 8 concurrent clients each
replay the scripted §3.2 FEC debug cycle (execute → brush S → zoom →
brush D' → metric → debug → apply → undo) against one server process.
Asserts correctness (every client sees the single-session ranked
answer) and records requests/sec plus shared preprocess-cache hit/miss
counts to ``BENCH_service.json`` at the repo root (uploaded as a CI
artifact).

A second benchmark sweeps a stepped load curve — one debug cycle per
client at each step of ``REPRO_SERVICE_LOAD_STEPS`` concurrent clients
(default ``8,64``; CI runs ``8,64,512``) — recording requests/sec at
each step so a throughput regression at high fan-in shows up as a bent
curve, not a single blended number.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.frontend import Brush, DBWipesSession
from repro.service import DBWipesServer, DatasetCatalog, ServiceClient, SessionManager

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))
N_CLIENTS = 8
N_CYCLES = 3 * SCALE
#: Wire requests issued per debug cycle (excluding the one-time open).
REQUESTS_PER_CYCLE = 8
#: The stepped load curve: concurrent-client counts, lightest first.
LOAD_STEPS = tuple(
    int(step)
    for step in os.environ.get("REPRO_SERVICE_LOAD_STEPS", "8,64").split(",")
    if step.strip()
)
#: Client-side thread cap per step (512 logical clients share 64 threads).
MAX_CLIENT_THREADS = 64

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _merge_into_bench(section: str, payload) -> None:
    """Update one section of ``BENCH_service.json``, keeping the others."""
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    if not isinstance(data, dict) or "benchmark" in data:
        # A pre-curve flat record: supersede it with the sectioned form.
        data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def run_cycle(client: ServiceClient) -> str:
    """One scripted FEC debug cycle; returns the top predicate text."""
    client.execute(client.bootstrap, max_rows=0)
    client.select_results(brush={"below": 0.0})
    client.zoom(max_points=0)
    client.select_inputs(brush={"below": 0.0})
    client.set_metric("too_low", threshold=0.0)
    report = client.debug(max_rows=1)
    client.apply(0, max_rows=0)
    client.undo(max_rows=0)
    return report["predicates"][0]["predicate"]


class TestServiceThroughput:
    def test_eight_concurrent_clients_closed_loop(self, fec_workload):
        db, __, __ = fec_workload
        catalog = DatasetCatalog()
        catalog.register("fec", db, bootstrap=_bootstrap())
        manager = SessionManager(catalog=catalog)

        # Single-session reference answer on the same shared database.
        session = DBWipesSession(db)
        session.execute(_bootstrap())
        session.select_results(Brush.below(0.0))
        session.zoom()
        session.select_inputs(Brush.below(0.0))
        session.set_metric("too_low", threshold=0.0)
        expected = session.debug().best.predicate.describe()

        with DBWipesServer(manager, port=0) as server:
            host, port = server.address

            def one_client(index: int) -> list[str]:
                with ServiceClient(
                    host, port, session=f"bench-{index}", timeout=600
                ) as client:
                    client.open("fec")
                    return [run_cycle(client) for __ in range(N_CYCLES)]

            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
                answers = list(pool.map(one_client, range(N_CLIENTS)))
            elapsed = time.perf_counter() - start

        # Correctness: every cycle of every client matches single-session mode.
        assert answers == [[expected] * N_CYCLES] * N_CLIENTS

        cache_stats = manager.preprocess_cache.stats()
        # All clients debug the same (table, sql, S, metric) identity: one
        # computation, everything else hits across sessions and cycles.
        assert cache_stats["hits"] > 0
        assert cache_stats["misses"] >= 1

        n_requests = N_CLIENTS * (1 + N_CYCLES * REQUESTS_PER_CYCLE)
        record = {
            "benchmark": "service_closed_loop",
            "n_clients": N_CLIENTS,
            "n_cycles_per_client": N_CYCLES,
            "n_requests": n_requests,
            "elapsed_seconds": elapsed,
            "requests_per_second": n_requests / elapsed,
            "debug_cycles_per_second": (N_CLIENTS * N_CYCLES) / elapsed,
            "preprocess_cache": cache_stats,
            "top_predicate": expected,
        }
        _merge_into_bench("closed_loop", record)
        print(
            f"\nservice throughput: {record['requests_per_second']:.0f} req/s, "
            f"{record['debug_cycles_per_second']:.1f} debug cycles/s, "
            f"cache hit rate {cache_stats['hit_rate']:.2f} "
            f"({cache_stats['hits']} hits / {cache_stats['misses']} misses) "
            f"-> {BENCH_PATH.name}"
        )


class TestSteppedLoadCurve:
    def test_stepped_load_curve(self, fec_workload):
        db, __, __ = fec_workload
        catalog = DatasetCatalog()
        catalog.register("fec", db, bootstrap=_bootstrap())
        manager = SessionManager(
            catalog=catalog, max_sessions=max(LOAD_STEPS) + 8
        )
        curve = []
        with DBWipesServer(manager, port=0) as server:
            host, port = server.address

            # Warm the shared preprocess cache once so every step
            # measures steady-state serving, not the first preprocess.
            with ServiceClient(host, port, session="warm", timeout=600) as c:
                c.open("fec")
                expected = run_cycle(c)

            for step in LOAD_STEPS:
                def one_client(index: int) -> str:
                    with ServiceClient(
                        host, port, session=f"load-{step}-{index}", timeout=600
                    ) as client:
                        client.open("fec")
                        return run_cycle(client)

                start = time.perf_counter()
                with ThreadPoolExecutor(
                    max_workers=min(step, MAX_CLIENT_THREADS)
                ) as pool:
                    answers = list(pool.map(one_client, range(step)))
                elapsed = time.perf_counter() - start

                assert answers == [expected] * step
                n_requests = step * (1 + REQUESTS_PER_CYCLE)
                curve.append(
                    {
                        "clients": step,
                        "n_requests": n_requests,
                        "elapsed_seconds": elapsed,
                        "requests_per_second": n_requests / elapsed,
                        "debug_cycles_per_second": step / elapsed,
                    }
                )

        _merge_into_bench(
            "load_curve",
            {
                "benchmark": "service_stepped_load",
                "steps": list(LOAD_STEPS),
                "max_client_threads": MAX_CLIENT_THREADS,
                "preprocess_cache": manager.preprocess_cache.stats(),
                "curve": curve,
            },
        )
        summary = ", ".join(
            f"{point['clients']}cl={point['requests_per_second']:.0f}req/s"
            for point in curve
        )
        print(f"\nservice load curve: {summary} -> {BENCH_PATH.name}")


def _bootstrap() -> str:
    from repro.data import walkthrough_query

    return walkthrough_query("MCCAIN")
