"""Closed-loop service throughput: K clients × M debug cycles.

The acceptance workload of the serving tier: 8 concurrent clients each
replay the scripted §3.2 FEC debug cycle (execute → brush S → zoom →
brush D' → metric → debug → apply → undo) against one server process.
Asserts correctness (every client sees the single-session ranked
answer) and records requests/sec plus shared preprocess-cache hit/miss
counts to ``BENCH_service.json`` at the repo root (uploaded as a CI
artifact).

A second benchmark sweeps a stepped load curve — one debug cycle per
client at each step of ``REPRO_SERVICE_LOAD_STEPS`` concurrent clients
(default ``8,64``; CI runs ``8,64,512``) — recording requests/sec at
each step so a throughput regression at high fan-in shows up as a bent
curve, not a single blended number.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.frontend import Brush, DBWipesSession
from repro.service import (
    AsyncDBWipesServer,
    DBWipesServer,
    DatasetCatalog,
    ServiceClient,
    SessionManager,
)

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))
N_CLIENTS = 8
N_CYCLES = 3 * SCALE
#: Wire requests issued per debug cycle (excluding the one-time open).
REQUESTS_PER_CYCLE = 8
#: The stepped load curve: concurrent-client counts, lightest first.
LOAD_STEPS = tuple(
    int(step)
    for step in os.environ.get("REPRO_SERVICE_LOAD_STEPS", "8,64").split(",")
    if step.strip()
)
#: Client-side thread cap per step (512 logical clients share 64 threads).
MAX_CLIENT_THREADS = 64

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _merge_into_bench(section: str, payload) -> None:
    """Update one section of ``BENCH_service.json``, keeping the others."""
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    if not isinstance(data, dict) or "benchmark" in data:
        # A pre-curve flat record: supersede it with the sectioned form.
        data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def run_cycle(client: ServiceClient) -> str:
    """One scripted FEC debug cycle; returns the top predicate text."""
    client.execute(client.bootstrap, max_rows=0)
    client.select_results(brush={"below": 0.0})
    client.zoom(max_points=0)
    client.select_inputs(brush={"below": 0.0})
    client.set_metric("too_low", threshold=0.0)
    report = client.debug(max_rows=1)
    client.apply(0, max_rows=0)
    client.undo(max_rows=0)
    return report["predicates"][0]["predicate"]


class TestServiceThroughput:
    def test_eight_concurrent_clients_closed_loop(self, fec_workload):
        db, __, __ = fec_workload
        catalog = DatasetCatalog()
        catalog.register("fec", db, bootstrap=_bootstrap())
        manager = SessionManager(catalog=catalog)

        # Single-session reference answer on the same shared database.
        session = DBWipesSession(db)
        session.execute(_bootstrap())
        session.select_results(Brush.below(0.0))
        session.zoom()
        session.select_inputs(Brush.below(0.0))
        session.set_metric("too_low", threshold=0.0)
        expected = session.debug().best.predicate.describe()

        with DBWipesServer(manager, port=0) as server:
            host, port = server.address

            def one_client(index: int) -> list[str]:
                with ServiceClient(
                    host, port, session=f"bench-{index}", timeout=600
                ) as client:
                    client.open("fec")
                    return [run_cycle(client) for __ in range(N_CYCLES)]

            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
                answers = list(pool.map(one_client, range(N_CLIENTS)))
            elapsed = time.perf_counter() - start

        # Correctness: every cycle of every client matches single-session mode.
        assert answers == [[expected] * N_CYCLES] * N_CLIENTS

        cache_stats = manager.preprocess_cache.stats()
        # All clients debug the same (table, sql, S, metric) identity: one
        # computation, everything else hits across sessions and cycles.
        assert cache_stats["hits"] > 0
        assert cache_stats["misses"] >= 1

        n_requests = N_CLIENTS * (1 + N_CYCLES * REQUESTS_PER_CYCLE)
        record = {
            "benchmark": "service_closed_loop",
            "n_clients": N_CLIENTS,
            "n_cycles_per_client": N_CYCLES,
            "n_requests": n_requests,
            "elapsed_seconds": elapsed,
            "requests_per_second": n_requests / elapsed,
            "debug_cycles_per_second": (N_CLIENTS * N_CYCLES) / elapsed,
            "preprocess_cache": cache_stats,
            "top_predicate": expected,
        }
        _merge_into_bench("closed_loop", record)
        print(
            f"\nservice throughput: {record['requests_per_second']:.0f} req/s, "
            f"{record['debug_cycles_per_second']:.1f} debug cycles/s, "
            f"cache hit rate {cache_stats['hit_rate']:.2f} "
            f"({cache_stats['hits']} hits / {cache_stats['misses']} misses) "
            f"-> {BENCH_PATH.name}"
        )


class TestSteppedLoadCurve:
    def test_stepped_load_curve(self, fec_workload):
        db, __, __ = fec_workload
        catalog = DatasetCatalog()
        catalog.register("fec", db, bootstrap=_bootstrap())
        manager = SessionManager(
            catalog=catalog, max_sessions=max(LOAD_STEPS) + 8
        )
        curve = []
        with DBWipesServer(manager, port=0) as server:
            host, port = server.address

            # Warm the shared preprocess cache once so every step
            # measures steady-state serving, not the first preprocess.
            with ServiceClient(host, port, session="warm", timeout=600) as c:
                c.open("fec")
                expected = run_cycle(c)

            for step in LOAD_STEPS:
                def one_client(index: int) -> str:
                    with ServiceClient(
                        host, port, session=f"load-{step}-{index}", timeout=600
                    ) as client:
                        client.open("fec")
                        return run_cycle(client)

                start = time.perf_counter()
                with ThreadPoolExecutor(
                    max_workers=min(step, MAX_CLIENT_THREADS)
                ) as pool:
                    answers = list(pool.map(one_client, range(step)))
                elapsed = time.perf_counter() - start

                assert answers == [expected] * step
                n_requests = step * (1 + REQUESTS_PER_CYCLE)
                curve.append(
                    {
                        "clients": step,
                        "n_requests": n_requests,
                        "elapsed_seconds": elapsed,
                        "requests_per_second": n_requests / elapsed,
                        "debug_cycles_per_second": step / elapsed,
                    }
                )

        _merge_into_bench(
            "load_curve",
            {
                "benchmark": "service_stepped_load",
                "steps": list(LOAD_STEPS),
                "max_client_threads": MAX_CLIENT_THREADS,
                "preprocess_cache": manager.preprocess_cache.stats(),
                "curve": curve,
            },
        )
        summary = ", ".join(
            f"{point['clients']}cl={point['requests_per_second']:.0f}req/s"
            for point in curve
        )
        print(f"\nservice load curve: {summary} -> {BENCH_PATH.name}")


#: Busy-aware retries per request on the admission-controlled gateway.
RETRY_LIMIT = 64


def open_with_retry(client: ServiceClient, dataset: str = "fec") -> dict:
    """``client.open`` via the ServerBusy-aware retry helper."""
    result = client.call_with_retry(
        "open", dataset=dataset, name=client.session, retries=RETRY_LIMIT
    )
    client.bootstrap = result.get("bootstrap")
    return result


def run_cycle_with_retry(client: ServiceClient) -> str:
    """``run_cycle`` where every request honors ``retry_after`` sheds."""

    def call(cmd: str, **args):
        return client.call_with_retry(cmd, retries=RETRY_LIMIT, **args)

    call("execute", sql=client.bootstrap, max_rows=0)
    call("select_results", brush={"below": 0.0})
    call("zoom", max_points=0)
    call("select_inputs", brush={"below": 0.0})
    call("set_metric", form="too_low", params={"threshold": 0.0})
    report = call("debug", max_rows=1)
    call("apply", index=0, max_rows=0)
    call("undo", max_rows=0)
    return report["predicates"][0]["predicate"]


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class TestAsyncVsThreadedLoadCurve:
    """The same stepped workload through both front ends.

    At every step of ``LOAD_STEPS`` logical clients, each client runs
    one FEC debug cycle through (a) the thread-per-connection server and
    (b) the admission-controlled asyncio gateway. The gateway bounds
    heavy-lane concurrency at ``max_inflight`` — on a GIL-bound workload
    the queue beats the thread pile-up, which is the point of PR 8.
    Every request must resolve (result, or ServerBusy retried to a
    result): a hang fails the benchmark, at 512 clients included.
    """

    #: Small in-flight bound: fastest under the GIL (see async_server).
    MAX_INFLIGHT = 2
    #: Queue depth covering the client-side thread cap: requests wait
    #: rather than shed, so shed-rate stays a signal, not the norm.
    MAX_QUEUE = MAX_CLIENT_THREADS + 8

    def _drive(self, label: str, server, shed_counter) -> tuple[str, list[dict]]:
        host, port = server.address
        with ServiceClient(host, port, session=f"warm-{label}", timeout=600) as c:
            open_with_retry(c)
            expected = run_cycle_with_retry(c)
        curve = []
        for step in LOAD_STEPS:
            shed_before = shed_counter()

            def one_client(index: int) -> tuple[str, float]:
                t0 = time.perf_counter()
                with ServiceClient(
                    host, port, session=f"{label}-{step}-{index}", timeout=600
                ) as client:
                    open_with_retry(client)
                    answer = run_cycle_with_retry(client)
                return answer, time.perf_counter() - t0

            start = time.perf_counter()
            with ThreadPoolExecutor(
                max_workers=min(step, MAX_CLIENT_THREADS)
            ) as pool:
                outcomes = list(pool.map(one_client, range(step)))
            elapsed = time.perf_counter() - start

            answers = [answer for answer, __ in outcomes]
            assert answers == [expected] * step  # zero hangs, zero drift
            latencies = sorted(seconds for __, seconds in outcomes)
            n_requests = step * (1 + REQUESTS_PER_CYCLE)
            curve.append(
                {
                    "clients": step,
                    "n_requests": n_requests,
                    "elapsed_seconds": elapsed,
                    "requests_per_second": n_requests / elapsed,
                    "debug_cycles_per_second": step / elapsed,
                    "cycle_p50_seconds": _percentile(latencies, 0.50),
                    "cycle_p99_seconds": _percentile(latencies, 0.99),
                    "shed_requests": shed_counter() - shed_before,
                    "shed_rate": (shed_counter() - shed_before)
                    / float(n_requests),
                }
            )
        return expected, curve

    def test_async_vs_threaded_load_curve(self, fec_workload):
        db, __, __ = fec_workload

        def make_manager() -> SessionManager:
            catalog = DatasetCatalog()
            catalog.register("fec", db, bootstrap=_bootstrap())
            return SessionManager(
                catalog=catalog, max_sessions=max(LOAD_STEPS) + 8
            )

        with DBWipesServer(make_manager(), port=0) as threaded:
            t_expected, threaded_curve = self._drive(
                "thr", threaded, lambda: 0
            )
        with AsyncDBWipesServer(
            make_manager(),
            port=0,
            max_inflight=self.MAX_INFLIGHT,
            max_queue=self.MAX_QUEUE,
        ) as gateway:
            a_expected, async_curve = self._drive(
                "gw", gateway, lambda: gateway.gateway_stats()["shed"]
            )
            final_stats = gateway.gateway_stats()
        assert a_expected == t_expected  # byte-identical ranked answer
        assert final_stats["inflight"] == 0 and final_stats["waiting"] == 0

        speedups = {
            str(t_point["clients"]): (
                a_point["requests_per_second"] / t_point["requests_per_second"]
            )
            for t_point, a_point in zip(threaded_curve, async_curve)
        }
        record = {
            "benchmark": "service_async_vs_threaded",
            "steps": list(LOAD_STEPS),
            "max_client_threads": MAX_CLIENT_THREADS,
            "gateway": {
                "max_inflight": self.MAX_INFLIGHT,
                "max_queue": self.MAX_QUEUE,
                "shed_total": final_stats["shed"],
            },
            "threaded": threaded_curve,
            "async": async_curve,
            "async_speedup": speedups,
            "top_predicate": t_expected,
        }
        _merge_into_bench("async_load_curve", record)
        summary = ", ".join(
            f"{clients}cl={speedup:.2f}x" for clients, speedup in speedups.items()
        )
        print(f"\nasync vs threaded speedup: {summary} -> {BENCH_PATH.name}")

        # The headline claim (async >= 2x threaded at 64 clients) is a
        # measured acceptance number, not a per-machine invariant: only
        # enforce it when the runner opts in (CI does; tier-1 at scale 1
        # on arbitrary hardware must not flake on it).
        if os.environ.get("REPRO_BENCH_ASSERT_ASYNC") == "1":
            gated = [s for c, s in speedups.items() if int(c) >= 64]
            assert gated, "no >=64-client step in REPRO_SERVICE_LOAD_STEPS"
            assert max(gated) >= 2.0, f"async speedup below 2x: {speedups}"


def _bootstrap() -> str:
    from repro.data import walkthrough_query

    return walkthrough_query("MCCAIN")
