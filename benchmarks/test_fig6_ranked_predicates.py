"""F6: Figure 6 — the ranked predicate list for the Intel sensor query.

Regenerates the panel: given the Figure-4 selection (high-stddev windows
S, >100°F tuples D', "too high" on stddev), the backend must return a
ranked list whose top entries (a) fully repair ε and (b) implicate the
physical failure signals (temperature / voltage / humidity / sensor id),
matching the figure's content and the DESIGN.md shape commitments.
"""

import numpy as np

from repro.core import RankedProvenance, TooHigh
from repro.data import explanation_quality


def test_fig6_ranked_predicate_panel(benchmark, intel_workload, intel_result,
                                     intel_selection):
    __, __, truth = intel_workload
    S, F, dprime = intel_selection
    metric = TooHigh(4.0)
    pipeline = RankedProvenance()

    report = benchmark(
        pipeline.debug, intel_result, S, metric,
        dprime_tids=dprime, agg_name="std_temp",
    )

    assert len(report) >= 3
    best = report.best
    assert best.relative_error_reduction > 0.95
    quality = explanation_quality(best.predicate, F, truth)
    assert quality.f1 > 0.9

    physical = {"temp", "voltage", "humidity", "sensorid"}
    mentioned = set()
    for ranked in report.top(8):
        mentioned |= ranked.predicate.columns()
    assert mentioned <= physical | {"minute", "hour", "epoch", "light"}
    assert mentioned & physical

    print("\nFigure 6 panel — ranked predicates for the Intel query:")
    print(report.to_text(max_rows=8))


def test_fig6_no_dprime_degrades_gracefully(benchmark, intel_workload,
                                            intel_result, intel_selection):
    """Without user examples the influence fallback must still explain."""
    __, __, truth = intel_workload
    S, F, __ = intel_selection
    pipeline = RankedProvenance()

    report = benchmark(
        pipeline.debug, intel_result, S, TooHigh(4.0), agg_name="std_temp"
    )

    assert len(report) > 0
    quality = explanation_quality(report.best.predicate, F, truth)
    assert quality.precision > 0.8
