"""A2 ablation: histogram tree induction vs the exact per-threshold
reference inside the Predicate Enumerator.

Runs the full enumerate-predicates stage (K candidate sets × 5 tree
strategies) on the intel workload (|F| ≈ 4050) twice — once with the
shared-``SplitIndex`` histogram kernels, once with the exact
per-threshold masking reference scoring the identical candidate
thresholds — asserts the outputs are answer-identical and the fast path
is ≥5× faster, and records the numbers to ``BENCH_tree.json`` at the
repo root (uploaded as a CI artifact next to ``BENCH_service.json``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import TooHigh
from repro.core.enumerator import DatasetEnumerator
from repro.core.predicates import PredicateEnumerator
from repro.core.preprocessor import Preprocessor
from repro.learn import DecisionTree, SplitIndex

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_tree.json"
MIN_SPEEDUP = 5.0


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def intel_stage(intel_result, intel_selection):
    """Preprocessed intel selection + candidate sets (not timed)."""
    S, F, dprime = intel_selection
    pre = Preprocessor().run(intel_result, S, TooHigh(4.0), agg_name="std_temp")
    candidates = DatasetEnumerator(seed=0).run(pre, dprime)
    return pre, candidates


def _drop_split_index(pre) -> None:
    """Forget memoized SplitIndexes so timings include the build."""
    for key in [k for k in pre._column_memo if k[0] == "split_index"]:
        del pre._column_memo[key]


def _rule_lines(candidate_rules) -> list[str]:
    return [
        f"{cr.candidate_index}|{cr.rule.predicate.describe()}|{cr.rule.source}"
        for cr in candidate_rules
    ]


class TestTreeInductionAblation:
    def test_hist_vs_exact_enumerate_predicates(self, intel_stage):
        pre, candidates = intel_stage
        f_size = len(pre.F)
        assert f_size > 3000  # the paper-scale selection, |F| ≈ 4050

        outputs: dict[str, list[str]] = {}
        seconds: dict[str, float] = {}
        for algorithm, repeats in (("exact", 2), ("hist", 3)):
            enumerator = PredicateEnumerator(tree_algorithm=algorithm)

            def run():
                _drop_split_index(pre)
                outputs[algorithm] = _rule_lines(enumerator.run(pre, candidates))

            seconds[algorithm] = _best_of(run, repeats)

        # Answer parity end-to-end: same rules for every candidate.
        assert outputs["hist"] == outputs["exact"]
        assert outputs["hist"]  # the stage actually produced predicates

        speedup = seconds["exact"] / seconds["hist"]

        # Single-fit micro ablation on the largest candidate set.
        labels = max(
            (candidate.label_mask(pre.F) for candidate in candidates),
            key=lambda mask: int(mask.sum()),
        )
        index = pre.split_index(features=list(pre.F.schema.names))
        fit_seconds: dict[str, float] = {}
        for algorithm, repeats in (("exact", 2), ("hist", 3)):
            tree = DecisionTree(max_depth=5, min_samples_leaf=2, algorithm=algorithm)
            fit_seconds[algorithm] = _best_of(
                lambda: tree.fit(pre.F, labels, split_index=index), repeats
            )
        fit_speedup = fit_seconds["exact"] / fit_seconds["hist"]

        payload = {
            "workload": "intel",
            "f_size": f_size,
            "n_candidates": len(candidates),
            "n_strategies": len(PredicateEnumerator().strategies),
            "n_rules": len(outputs["hist"]),
            "enumerate_predicates": {
                "exact_seconds": round(seconds["exact"], 4),
                "hist_seconds": round(seconds["hist"], 4),
                "speedup": round(speedup, 2),
            },
            "single_fit": {
                "exact_seconds": round(fit_seconds["exact"], 4),
                "hist_seconds": round(fit_seconds["hist"], 4),
                "speedup": round(fit_speedup, 2),
            },
        }
        BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

        print(
            f"\nA2: |F|={f_size}, {len(candidates)} candidates x "
            f"{payload['n_strategies']} strategies: "
            f"exact {seconds['exact'] * 1000:.0f} ms, "
            f"hist {seconds['hist'] * 1000:.0f} ms ({speedup:.1f}x); "
            f"single fit {fit_speedup:.1f}x -> {BENCH_PATH.name}"
        )
        assert speedup >= MIN_SPEEDUP

    def test_shared_index_is_memoized_across_strategies(self, intel_stage):
        pre, candidates = intel_stage
        _drop_split_index(pre)
        PredicateEnumerator().run(pre, candidates)
        keys = [k for k in pre._column_memo if k[0] == "split_index"]
        assert len(keys) == 1  # K x S fits shared one index
