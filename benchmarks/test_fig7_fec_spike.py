"""F7: Figure 7 — McCain's daily donation totals and the negative spike.

Regenerates the chart's series and the §3.2 walkthrough outcome:

* the daily series shows event-correlated positive spikes and one
  negative dip around the anomaly day;
* debugging the dip surfaces the ``memo = 'REATTRIBUTION TO SPOUSE'``
  predicate among the top entries;
* applying it removes (essentially all of) the negative mass.
"""

import numpy as np

from repro.data import REATTRIBUTION_MEMO, walkthrough_query
from repro.frontend import Brush, DBWipesSession


def _run_daily_totals(db):
    return db.sql(walkthrough_query("MCCAIN"))


def test_fig7_daily_series_shape(benchmark, fec_workload):
    db, __, truth = fec_workload
    result = benchmark(_run_daily_totals, db)

    totals = np.asarray(result.column("total"))
    days = np.asarray(result.column("day"))
    assert totals.min() < 0, "the negative spike must be visible"
    negative_days = days[totals < 0]
    assert len(negative_days) <= 10, "the dip is localized"
    assert 490 <= negative_days.mean() <= 510, "dip sits around day 500"
    # Positive spikes exist too (campaign events).
    assert totals.max() > 4 * float(np.median(totals))

    print(f"\nFigure 7 series: {result.num_rows} days, "
          f"min={totals.min():,.0f} on days {sorted(negative_days.tolist())}, "
          f"max={totals.max():,.0f}")


def test_fig7_debug_and_clean_walkthrough(benchmark, fec_workload):
    db, __, truth = fec_workload

    def walkthrough():
        session = DBWipesSession(db)
        session.execute(walkthrough_query("MCCAIN"))
        session.select_results(Brush.below(0.0))
        session.zoom()
        session.select_inputs(Brush.below(0.0))
        session.set_metric("too_low", threshold=0.0)
        report = session.debug()
        return session, report

    session, report = benchmark(walkthrough)

    top = report.top(5)
    memo_entries = [
        r for r in top if REATTRIBUTION_MEMO in r.predicate.to_sql()
    ]
    assert memo_entries, "the memo predicate must rank in the top 5"
    assert memo_entries[0].relative_error_reduction > 0.95

    totals_before = np.asarray(session.result.column("total"))
    negative_before = float(np.minimum(totals_before, 0).sum())
    memo_rank = next(
        i for i, r in enumerate(report)
        if REATTRIBUTION_MEMO in r.predicate.to_sql()
    )
    result = session.apply_predicate(memo_rank)
    totals_after = np.asarray(result.column("total"))
    negative_after = float(np.minimum(totals_after, 0).sum())
    assert negative_after == 0.0, "clicking the memo predicate removes the dip"

    print(f"\nFigure 7 walkthrough: negative mass {negative_before:,.0f} -> "
          f"{negative_after:,.0f} after one click")
