"""A3 ablation: the batched mask-and-score engine vs the per-rule
reference across the Ranker + Merger tier.

Scales the intel workload 1×/10×/50× (rows), runs the rank+merge stage
with the per-rule reference (``algorithm="per_rule"``: one mask
evaluation per rule per table, one grouped Δε pass per rule, a second
mask evaluation in dedupe, O(n²) pair rescans in the merger) and with
the batched engine (``algorithm="batch"``: distinct clauses evaluated
once, bit-packed conjunctions, digest-deduped one-pass grouped Δε,
popcount confusion, cached merge pairs), and asserts the ranked output
is byte-identical — order, scores, descriptions.

Timings are recorded two ways, matching how the stage is actually paid
for in production:

* **cold** — first debug of a selection: the engine and Δε memos are
  empty and must be built;
* **cycle total** — ``CYCLES`` debug cycles against one (cached)
  ``PreprocessResult``, the deployed shape of the serving tier: PR 2's
  closed-loop benchmark measured a 0.96 preprocess-cache hit rate, so
  nearly every rank+merge in service mode runs against warm memos. The
  per-rule reference has no memo to warm — re-scoring from scratch per
  cycle *is* the pre-PR behavior being replaced.

Results land in ``BENCH_rank.json`` (uploaded as a CI artifact next to
``BENCH_service.json`` / ``BENCH_tree.json``). The acceptance gate is
the 10× workload: cycle-total speedup ≥ 5×.

Scale selection is env-driven: the default (``1``) is the tier-1 smoke
— every PR runs the batch path end-to-end with the parity assertions —
and ``REPRO_RANK_BENCH_SCALES=1,10,50`` is the full gated ablation.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    DatasetEnumerator,
    PredicateEnumerator,
    PredicateRanker,
    Preprocessor,
    RankerWeights,
    TooHigh,
)
from repro.core.merger import PredicateMerger
from repro.data import IntelConfig, generate_intel
from repro.db import Database

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_rank.json"
MIN_SPEEDUP = 5.0
#: Debug cycles per measurement (the §3 demo loop debugs repeatedly and
#: the service shares one PreprocessResult across sessions; 6 is far
#: below the ~24 warm evaluations per miss the PR 2 benchmark implies).
CYCLES = 6

SCALES = tuple(
    int(scale)
    for scale in os.environ.get("REPRO_RANK_BENCH_SCALES", "1").split(",")
    if scale.strip()
)


def _workload(scale: int):
    """The intel debug stage at ``scale``× rows, ready to rank."""
    table, __ = generate_intel(
        IntelConfig(
            n_sensors=54,
            duration_minutes=720 * scale,
            interval_minutes=2.0,
            failing_sensors=(15, 18),
            failure_onset_frac=0.7,
        )
    )
    db = Database()
    db.register(table)
    result = db.sql(
        "SELECT minute / 30 AS w, avg(temp) AS avg_temp, "
        "stddev(temp) AS std_temp FROM readings GROUP BY minute / 30 ORDER BY w"
    )
    std = np.asarray(result.column("std_temp"))
    cutoff = 4 * float(np.median(std))
    S = [i for i in range(result.num_rows) if std[i] > cutoff]
    F = result.inputs_for(S)
    dprime = np.asarray(F.tids)[np.asarray(F.column("temp")) > 100.0]
    pre = Preprocessor().run(result, S, TooHigh(4.0), agg_name="std_temp")
    candidates = DatasetEnumerator(seed=0).run(pre, dprime)
    rules = PredicateEnumerator().run(pre, candidates)
    # The enumerator warms the shared SplitIndex exactly as a real debug
    # cycle would before the rank stage begins.
    return pre, candidates, rules


def _drop_stage_memos(pre) -> None:
    """Forget the engine + Δε memos so a timing starts cold."""
    for key in [k for k in pre._column_memo if k[0] == "mask_engine"]:
        del pre._column_memo[key]
    pre.segments.memo.clear()


def _lines(ranked) -> list[str]:
    return [
        "|".join(
            (
                entry.predicate.describe(),
                entry.predicate.to_sql(),
                repr(entry.score),
                repr(entry.epsilon_before),
                repr(entry.epsilon_after),
                repr(entry.accuracy),
                str(entry.n_matched),
                entry.candidate_origin,
                entry.source,
            )
        )
        for entry in ranked
    ]


def _measure(pre, candidates, rules, algorithm: str, repeats: int):
    """Best-of cold and ``CYCLES``-total stage times, plus the output."""
    ranker = PredicateRanker(algorithm=algorithm)
    merger = PredicateMerger(weights=RankerWeights(), algorithm=algorithm)

    def stage():
        ranked = ranker.run(pre, candidates, rules)
        return merger.run(pre, candidates, list(ranked))

    best_cold = float("inf")
    best_total = float("inf")
    merged = None
    for __ in range(repeats):
        _drop_stage_memos(pre)
        start = time.perf_counter()
        merged = stage()
        cold = time.perf_counter() - start
        total = cold
        for __ in range(CYCLES - 1):
            start = time.perf_counter()
            merged = stage()
            total += time.perf_counter() - start
        best_cold = min(best_cold, cold)
        best_total = min(best_total, total)
    return best_cold, best_total, _lines(merged)


class TestRankBatchAblation:
    def test_batched_rank_and_merge_vs_per_rule_reference(self):
        payload: dict = {
            "workload": "intel",
            "cycles": CYCLES,
            "min_speedup": MIN_SPEEDUP,
            "gate_scale": 10,
            "scales": {},
        }
        speedup_at_10 = None
        for scale in SCALES:
            pre, candidates, rules = _workload(scale)
            repeats = 3 if scale < 50 else 2
            results = {}
            for algorithm in ("per_rule", "batch"):
                results[algorithm] = _measure(
                    pre, candidates, rules, algorithm, repeats
                )
            cold_ref, total_ref, lines_ref = results["per_rule"]
            cold_batch, total_batch, lines_batch = results["batch"]

            # Byte-identical ranked output: order, scores, descriptions.
            assert lines_batch == lines_ref, f"output diverged at {scale}x"
            assert lines_batch, f"nothing ranked at {scale}x"

            cold_speedup = cold_ref / cold_batch
            total_speedup = total_ref / total_batch
            payload["scales"][str(scale)] = {
                "f_size": len(pre.F),
                "n_rules": len(rules),
                "n_ranked": len(lines_batch),
                "per_rule": {
                    "cold_ms": round(cold_ref * 1000, 3),
                    "cycle_total_ms": round(total_ref * 1000, 3),
                },
                "batch": {
                    "cold_ms": round(cold_batch * 1000, 3),
                    "cycle_total_ms": round(total_batch * 1000, 3),
                },
                "cold_speedup": round(cold_speedup, 2),
                "cycle_speedup": round(total_speedup, 2),
            }
            print(
                f"\nA3 {scale}x: |F|={len(pre.F)}, {len(rules)} rules: "
                f"per-rule {total_ref * 1000:.1f} ms vs batch "
                f"{total_batch * 1000:.1f} ms over {CYCLES} cycles "
                f"({total_speedup:.1f}x; cold {cold_speedup:.1f}x)"
            )
            if scale == 10:
                speedup_at_10 = total_speedup
        BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"-> {BENCH_PATH.name}")
        if speedup_at_10 is not None:
            assert speedup_at_10 >= MIN_SPEEDUP
        elif 10 in SCALES:  # pragma: no cover - defensive
            pytest.fail("10x scale ran but recorded no speedup")
