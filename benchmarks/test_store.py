"""Durable storage tier benchmarks → ``BENCH_store.json``.

Three questions, each answered across dataset scales (the Intel
workload at 1× / 10× / 50× rows via ``REPRO_STORE_BENCH_SCALES``):

* **open latency** — reopening a persisted table reads manifests and
  maps column bytes lazily, so it must be far cheaper than regenerating
  the dataset (the whole point of warm restarts);
* **cold vs warm restart** — the first ``debug()`` of a freshly
  restarted process: cold pays dataset build + preprocess compute, warm
  pays a manifest reopen + one artifact load. The answers must be
  byte-identical; the speedup is the durability payoff on record;
* **mmap overhead** — a warm in-cache debug cycle over a memory-mapped
  table vs the in-memory reference must stay within a small constant
  factor (the lazy gathers hit the page cache, not the disk).

Results merge into ``BENCH_store.json`` at the repo root (uploaded as
a CI artifact).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.artifacts import ArtifactStore
from repro.core.preprocessor import PreprocessCache
from repro.data import generate_intel, intel_at_scale
from repro.db import Database, Table
from repro.frontend import Brush, DBWipesSession
from repro.service.cache import DatasetCatalog

SCALES = tuple(
    int(s)
    for s in os.environ.get("REPRO_STORE_BENCH_SCALES", "1,10,50").split(",")
    if s.strip()
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

INTEL_SQL = (
    "SELECT minute / 30 AS window, avg(temp) AS avg_temp, "
    "stddev(temp) AS std_temp FROM readings GROUP BY minute / 30 "
    "ORDER BY window"
)


def _merge_into_bench(section: str, payload) -> None:
    """Update one section of ``BENCH_store.json``, keeping the others."""
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    if not isinstance(data, dict):
        data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _intel_table(scale: int) -> Table:
    table, __ = generate_intel(intel_at_scale(scale, failure_onset_frac=0.7))
    return table


def _debug_cycle(db: Database, preprocess_cache=None) -> tuple[list[str], float]:
    """One scripted Figure-4 debug cycle; returns (canonical lines, secs)."""
    start = time.perf_counter()
    session = DBWipesSession(db, preprocess_cache=preprocess_cache)
    session.execute(INTEL_SQL)
    session.select_results(Brush.above(7.0), y="std_temp")
    session.zoom()
    session.select_inputs(Brush.above(100.0))
    session.set_metric("too_high")
    report = session.debug()
    seconds = time.perf_counter() - start
    lines = [
        "|".join(
            (
                ranked.predicate.describe(),
                repr(ranked.score),
                repr(ranked.epsilon_after),
            )
        )
        for ranked in report
    ]
    assert lines
    return lines, seconds


class TestOpenLatency:
    def test_open_is_cheaper_than_generate(self, tmp_path):
        rows = []
        for scale in SCALES:
            t0 = time.perf_counter()
            table = _intel_table(scale)
            generate_seconds = time.perf_counter() - t0

            t0 = time.perf_counter()
            table.save(tmp_path / f"intel-{scale}x")
            save_seconds = time.perf_counter() - t0

            t0 = time.perf_counter()
            reopened = Table.open(tmp_path / f"intel-{scale}x")
            open_seconds = time.perf_counter() - t0
            assert reopened.num_rows == table.num_rows

            rows.append(
                {
                    "scale": scale,
                    "rows": table.num_rows,
                    "generate_seconds": round(generate_seconds, 6),
                    "save_seconds": round(save_seconds, 6),
                    "open_seconds": round(open_seconds, 6),
                }
            )
        # Lazy opens read one manifest regardless of size: at the
        # largest scale the reopen must beat regeneration outright.
        largest = rows[-1]
        assert largest["open_seconds"] < largest["generate_seconds"]
        _merge_into_bench("open_latency", {"scales": rows})


class TestWarmRestart:
    def _catalog(self, data_dir, scale: int) -> DatasetCatalog:
        catalog = DatasetCatalog(data_dir=data_dir)

        def build() -> Database:
            db = Database()
            db.register(_intel_table(scale))
            return db

        catalog.register("intel", build)
        return catalog

    def test_restarted_first_debug_is_warm_and_identical(self, tmp_path):
        rows = []
        for scale in SCALES:
            data_dir = tmp_path / f"{scale}x"

            # Cold boot: build + persist the dataset, compute + persist
            # the preprocess artifact, answer the first debug().
            t0 = time.perf_counter()
            catalog = self._catalog(data_dir, scale)
            db = catalog.get("intel")
            cache = PreprocessCache(disk=ArtifactStore(data_dir / "preprocess"))
            cold_lines, __ = _debug_cycle(db, preprocess_cache=cache)
            cold_seconds = time.perf_counter() - t0
            assert cache.stats()["disk_writes"] >= 1

            # Restart: fresh process state, same data dir. The first
            # debug must come back byte-identical without recomputing.
            t0 = time.perf_counter()
            restarted = DatasetCatalog(data_dir=data_dir)
            db = restarted.get("intel")
            cache = PreprocessCache(disk=ArtifactStore(data_dir / "preprocess"))
            warm_lines, __ = _debug_cycle(db, preprocess_cache=cache)
            warm_seconds = time.perf_counter() - t0
            stats = cache.stats()

            assert warm_lines == cold_lines
            assert stats["disk_hits"] >= 1 and stats["disk_writes"] == 0
            rows.append(
                {
                    "scale": scale,
                    "rows": db.table("readings").num_rows,
                    "cold_first_debug_seconds": round(cold_seconds, 6),
                    "warm_first_debug_seconds": round(warm_seconds, 6),
                    "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 3),
                    "disk_hits": stats["disk_hits"],
                }
            )
        # Warmness must be measurable, not incidental: at the largest
        # scale the restarted first debug beats the cold one outright.
        assert rows[-1]["warm_first_debug_seconds"] < rows[-1][
            "cold_first_debug_seconds"
        ]
        _merge_into_bench("warm_restart", {"scales": rows})


class TestMmapOverhead:
    #: Warm mmap cycles may cost at most this factor over in-memory.
    BOUND = 3.0
    REPEATS = 3

    def test_warm_cycle_overhead_is_bounded(self, tmp_path):
        scale = SCALES[0]
        table = _intel_table(scale)
        mem_db = Database()
        mem_db.register(table)
        mmap_db = mem_db.save(tmp_path / "intel")

        def median_cycle(db: Database) -> tuple[list[str], float]:
            lines, __ = _debug_cycle(db)  # warm the page/split caches
            timings = []
            for __ in range(self.REPEATS):
                again, seconds = _debug_cycle(db)
                assert again == lines
                timings.append(seconds)
            timings.sort()
            return lines, timings[len(timings) // 2]

        mem_lines, mem_seconds = median_cycle(mem_db)
        mmap_lines, mmap_seconds = median_cycle(mmap_db)
        assert mmap_lines == mem_lines  # parity, then performance
        ratio = mmap_seconds / max(mem_seconds, 1e-9)
        assert ratio < self.BOUND, (
            f"mmap warm cycle {ratio:.2f}× in-memory (bound {self.BOUND}×)"
        )
        _merge_into_bench(
            "mmap_overhead",
            {
                "scale": scale,
                "rows": table.num_rows,
                "in_memory_seconds": round(mem_seconds, 6),
                "mmap_seconds": round(mmap_seconds, 6),
                "ratio": round(ratio, 3),
                "bound": self.BOUND,
            },
        )
