"""Telemetry overhead: warm ``debug()`` with instrumentation on vs off.

The observability contract is *always-on-cheap*: spans, stage
histograms, and request counters stay enabled in production, so their
cost must be provably small. At each workload scale of
``REPRO_OBS_BENCH_SCALES`` (default ``1`` — the tier-1 smoke; CI runs
``1,10``) this benchmark times warm partitioned ``debug()`` calls with
the kill switch on and off, **interleaved** A/B so clock drift and
cache-warming cancel, and asserts the median enabled run is within 5%
of the median disabled run.

The partitioned backend is used deliberately: it exercises the densest
instrumentation (per-stage spans *and* per-partition block timing), so
the bound it proves covers the worst case.

Results land in ``BENCH_obs.json`` at the repo root (a CI artifact),
one section per scale.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import PipelineConfig
from repro.data import IntelConfig, generate_intel
from repro.db import Database
from repro.frontend import Brush, DBWipesSession
from repro.obs import set_enabled, tracer

SCALES = tuple(
    int(scale)
    for scale in os.environ.get("REPRO_OBS_BENCH_SCALES", "1").split(",")
    if scale.strip()
)
#: A/B rounds per scale; medians over this many samples per arm.
N_ROUNDS = 5
#: The acceptance bound: enabled vs disabled warm-debug medians.
MAX_OVERHEAD_PCT = 5.0
BASE_MINUTES = 240

BOOTSTRAP = (
    "SELECT minute / 30 AS w, avg(temp) AS avg_temp, "
    "stddev(temp) AS std_temp FROM readings GROUP BY minute / 30 ORDER BY w"
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _intel_session(scale: int) -> DBWipesSession:
    table, __ = generate_intel(
        IntelConfig(
            n_sensors=54,
            duration_minutes=BASE_MINUTES * scale,
            interval_minutes=2.0,
            failing_sensors=(15, 18),
            failure_onset_frac=0.7,
            seed=100,
        )
    )
    db = Database()
    db.register(table)
    session = DBWipesSession(
        db, PipelineConfig(backend="partitioned", n_partitions=4)
    )
    result = session.execute(BOOTSTRAP)
    std = np.asarray(result.column("std_temp"), dtype=float)
    cutoff = 4.0 * float(np.median(std[np.isfinite(std)]))
    session.select_results(Brush.above(cutoff), y="std_temp")
    session.set_metric("too_high")
    return session


def _merge_into_bench(section: str, payload) -> None:
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    if not isinstance(data, dict):
        data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


class TestObsOverhead:
    @pytest.mark.parametrize("scale", SCALES)
    def test_warm_debug_overhead_within_bound(self, scale):
        session = _intel_session(scale)
        samples: dict[bool, list[float]] = {True: [], False: []}
        try:
            # Warm both arms once: the first debug preprocesses and
            # fills the cache; the first disabled debug absorbs any
            # flag-flip effects. Neither is timed.
            for enabled in (True, False):
                set_enabled(enabled)
                session.debug()
            for __ in range(N_ROUNDS):
                for enabled in (False, True):  # interleaved A/B
                    set_enabled(enabled)
                    start = time.perf_counter()
                    session.debug()
                    samples[enabled].append(time.perf_counter() - start)
        finally:
            set_enabled(True)

        # One warm instrumented debug() worth of spans, for the record.
        with tracer().span("bench.root") as root:
            session.debug()
        spans_per_debug = len(tracer().spans(root.trace_id)) - 1

        enabled_median = float(np.median(samples[True]))
        disabled_median = float(np.median(samples[False]))
        overhead_pct = 100.0 * (enabled_median / disabled_median - 1.0)

        section = {
            "benchmark": "obs_overhead",
            "scale": scale,
            "rows": 54 * (BASE_MINUTES * scale) // 2,
            "n_rounds": N_ROUNDS,
            "backend": "partitioned",
            "n_partitions": 4,
            "spans_per_debug": spans_per_debug,
            "enabled_seconds_median": enabled_median,
            "disabled_seconds_median": disabled_median,
            "enabled_seconds": samples[True],
            "disabled_seconds": samples[False],
            "overhead_pct": overhead_pct,
            "max_overhead_pct": MAX_OVERHEAD_PCT,
        }
        _merge_into_bench(f"overhead_scale_{scale}x", section)
        print(
            f"\nobs overhead {scale}x: enabled={enabled_median:.4f}s, "
            f"disabled={disabled_median:.4f}s, overhead={overhead_pct:+.2f}% "
            f"({spans_per_debug} spans/debug) -> {BENCH_PATH.name}"
        )
        assert overhead_pct <= MAX_OVERHEAD_PCT, (
            f"instrumentation costs {overhead_pct:.2f}% on warm debug() "
            f"at {scale}x (bound: {MAX_OVERHEAD_PCT}%)"
        )
