"""Chaos benchmark: kill a worker under concurrent debug load.

The fault-tolerance acceptance workload: ``REPRO_CHAOS_CLIENTS``
clients (CI runs 64) each drive their own session through the scripted
toy debug cycle against a 2-worker routed server with journaling
enabled, while the dataset's primary worker is SIGKILLed mid-load via
the deterministic :class:`FaultPlan` harness. The router replays each
session's journal on the replica, so the measured questions are:

* how long does one staged session take to get its first post-kill
  ``debug`` answer (recovery wall-clock, journal replay included);
* how many requests succeeded first-try vs were retried by the client
  vs failed outright — the run asserts **100% eventual success** and
  byte-identical answers, crash or no crash.

Results land in ``BENCH_chaos.json`` at the repo root (a CI artifact).
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.db import Database, Table
from repro.service import (
    DBWipesServer,
    DatasetCatalog,
    FaultPlan,
    ServiceClient,
)
from repro.service import faults

N_CLIENTS = int(os.environ.get("REPRO_CHAOS_CLIENTS", "16"))
MAX_CLIENT_THREADS = 32
#: Crash-aware retries per request (the router usually heals first).
RETRY_LIMIT = 16

TOY_SQL = "SELECT g, avg(v) AS avg_v FROM toy GROUP BY g ORDER BY g"

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"


def chaos_catalog() -> DatasetCatalog:
    """Module-level so forked worker processes can reconstruct it."""

    def build() -> Database:
        rng = np.random.default_rng(7)
        n_groups, per = 6, 30
        g = np.repeat(np.arange(n_groups), per)
        v = rng.normal(1.0, 0.1, n_groups * per)
        tag = np.array(["ok"] * (n_groups * per), dtype=object)
        bad = (g == 3) & (np.arange(n_groups * per) % per < 8)
        v[bad] += 100.0
        tag[bad] = "bad"
        db = Database()
        db.register(Table.from_columns({"g": g, "v": v, "tag": tag}, name="toy"))
        return db

    catalog = DatasetCatalog()
    catalog.register("toy", build, bootstrap=TOY_SQL)
    return catalog


def _merge_into_bench(section: str, payload) -> None:
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    if not isinstance(data, dict):
        data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _canonical_report(report: dict) -> str:
    report = dict(report)
    report["timings"] = None
    return json.dumps(report, sort_keys=True)


def _chaos_cycle(client: ServiceClient, sleeps: list[float]) -> str:
    """One full debug cycle where every request survives crash-class
    errors via ``call_with_retry``; returns the canonical report."""

    def call(cmd: str, **args):
        return client.call_with_retry(
            cmd,
            retries=RETRY_LIMIT,
            sleep=lambda s: (sleeps.append(s), time.sleep(s)),
            **args,
        )

    call("open", dataset="toy", name=client.session)
    call("execute", sql=TOY_SQL, max_rows=None)
    call("select_results", brush={"above": 5.0})
    call("zoom")
    call("select_inputs", brush={"above": 50.0})
    call("set_metric", form="too_high", params={"threshold": 2.0})
    return _canonical_report(call("debug"))


class TestChaosKillWorker:
    def test_kill_primary_under_load(self, tmp_path_factory, monkeypatch):
        data_dir = tmp_path_factory.mktemp("chaos-data")
        monkeypatch.setenv("REPRO_DATA_DIR", str(data_dir))
        faults.clear()
        try:
            self._run()
        finally:
            faults.clear()

    def _run(self) -> None:
        with DBWipesServer(
            port=0, workers=2, catalog_factory=chaos_catalog
        ) as srv:
            host, port = srv.address
            primary = int(srv.dispatcher.ring.node_for("toy"))

            # The no-fault reference answer, and a staged probe session
            # whose first post-kill debug times the recovery path.
            with ServiceClient(host, port, session="ref", timeout=600) as c:
                expected = _chaos_cycle(c, [])
            probe = ServiceClient(host, port, session="probe", timeout=600)
            with probe:
                assert _chaos_cycle(probe, []) == expected

                started = threading.Event()
                release = threading.Event()

                def one_client(index: int) -> tuple[str, int]:
                    if index == 0:
                        started.set()
                    release.wait(timeout=60)
                    sleeps: list[float] = []
                    with ServiceClient(
                        host, port, session=f"chaos-{index}", timeout=600
                    ) as client:
                        answer = _chaos_cycle(client, sleeps)
                    return answer, len(sleeps)

                load_start = time.perf_counter()
                with ThreadPoolExecutor(
                    max_workers=min(N_CLIENTS, MAX_CLIENT_THREADS)
                ) as pool:
                    futures = [
                        pool.submit(one_client, i) for i in range(N_CLIENTS)
                    ]
                    started.wait(timeout=60)
                    release.set()
                    # Let the herd hit the primary, then kill it cold on
                    # its next request. One shot, deterministic.
                    time.sleep(0.2)
                    faults.install(
                        FaultPlan(kill_worker=primary, kill_on_request=1)
                    )
                    kill_armed = time.perf_counter()
                    probe_answer = _chaos_cycle(probe, [])
                    recovery_seconds = time.perf_counter() - kill_armed
                    outcomes = [f.result(timeout=600) for f in futures]
                load_elapsed = time.perf_counter() - load_start

            answers = [answer for answer, __ in outcomes]
            retried = sum(1 for __, n in outcomes if n > 0)
            plan = faults.active_plan()
            assert plan is not None and plan.describe()["kill"]["fired"]

            # 100% eventual success, byte-identical to the no-fault run.
            assert probe_answer == expected
            assert answers == [expected] * N_CLIENTS

            with ServiceClient(host, port, timeout=600) as c:
                merged = c.metrics()["merged"]
                pool_stats = srv.dispatcher.pool.stats()
            failovers = sum(
                point["value"]
                for point in merged["metrics"]
                if point["name"] == "dbwipes_failovers_total"
            )
            recovered = sum(
                point["value"]
                for point in merged["metrics"]
                if point["name"] == "dbwipes_sessions_recovered_total"
            )
            assert failovers >= 1
            assert pool_stats[primary]["restarts"] >= 1

        record = {
            "benchmark": "chaos_kill_primary",
            "n_clients": N_CLIENTS,
            "workers": 2,
            "killed_worker": primary,
            "recovery_seconds": recovery_seconds,
            "load_elapsed_seconds": load_elapsed,
            "succeeded": len(answers),
            "succeeded_first_try": N_CLIENTS - retried,
            "retried_to_success": retried,
            "failed": 0,
            "eventual_success_rate": 1.0,
            "router_failovers": failovers,
            "sessions_recovered": recovered,
            "worker_restarts": [s["restarts"] for s in pool_stats],
        }
        _merge_into_bench("kill_primary", record)
        print(
            f"\nchaos: killed worker {primary} under {N_CLIENTS}-client load, "
            f"recovered in {recovery_seconds:.3f}s, "
            f"{record['succeeded_first_try']} first-try + {retried} retried "
            f"= 100% eventual success "
            f"({failovers:.0f} failovers, {recovered:.0f} replays) "
            f"-> {BENCH_PATH.name}"
        )
