"""Custom error metrics and baseline comparison.

The paper's limitation 1: pre-defined ranking criteria often miss what
the user actually cares about. Here the workload contains *two* kinds of
unusual values:

* a clustered set of *moderately* shifted rows sharing a hidden
  attribute description — the real data bug the user wants explained;
* scattered *extreme* but legitimate outliers — decoys that value-based
  criteria chase.

We (a) define a custom ErrorMetric subclass, (b) run DBWipes, and
(c) show that the pre-defined "largest inputs first" criterion ranks the
decoys above the bug while DBWipes' predicate pins the bug exactly.

Run:  python examples/custom_error_metric.py
"""

import numpy as np

from repro.baselines import predefined_criteria_explanation
from repro.core import ErrorMetric, PipelineConfig, Preprocessor, RankedProvenance
from repro.data import (
    SyntheticConfig,
    dirty_group_rows,
    explanation_quality,
    generate_synthetic,
    tid_set_quality,
)
from repro.db import Database


class BandExcess(ErrorMetric):
    """ε for 'values should sit inside [lo, hi]' — a two-sided band.

    A custom metric only needs ``per_value_error``; combine semantics,
    NaN handling, and the fast influence path come from the base class.
    """

    form_id = "band_excess"
    direction = +1

    def __init__(self, lo: float, hi: float, combine: str = "max"):
        super().__init__(combine)
        self.lo = float(lo)
        self.hi = float(hi)

    def per_value_error(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            above = np.maximum(values - self.hi, 0.0)
            below = np.maximum(self.lo - values, 0.0)
        return self._zero_nan(values, above + below)

    def describe(self) -> str:
        return f"values should lie in [{self.lo:g}, {self.hi:g}]"


def main() -> None:
    table, truth = generate_synthetic(
        SyntheticConfig(
            n_rows=6000,
            shift_stds=10.0,
            legit_outlier_rate=0.01,   # decoys: individually extreme rows
            legit_outlier_stds=25.0,
            predicate_kind="categorical",  # broad match: visibly shifts groups
            seed=13,
        )
    )
    print(f"Workload: {len(table)} rows, {truth.size} corrupted "
          f"({truth.description})\n")

    db = Database()
    db.register(table)
    result = db.sql("SELECT grp, avg(measure) AS m FROM facts GROUP BY grp "
                    "ORDER BY grp")

    dirty = set(dirty_group_rows(table, truth).tolist())
    S = [i for i in range(result.num_rows) if result.row(i)[0] in dirty]
    values = np.asarray(result.column("m"))
    clean_values = np.delete(values, S)
    metric = BandExcess(float(clean_values.min()), float(clean_values.max()))
    print(f"Custom metric: {metric.describe()}")
    print(f"epsilon(S) = {metric(values[S]):.3f}\n")

    F = result.inputs_for(S)
    dprime = np.asarray(F.tids)[truth.label_mask(F)]

    config = PipelineConfig(feature_columns=("a", "b", "x", "y"))
    report = RankedProvenance(config).debug(result, S, metric,
                                            dprime_tids=dprime)
    print(report.to_text(max_rows=5))
    print()

    best = report.best
    dbwipes_quality = explanation_quality(best.predicate, F, truth)
    print(f"DBWipes top predicate:   {best.predicate.describe()}")
    print(f"  vs truth: precision={dbwipes_quality.precision:.2f} "
          f"recall={dbwipes_quality.recall:.2f} f1={dbwipes_quality.f1:.2f}\n")

    # The pre-defined criterion: largest inputs first, top-k cut at |truth∩F|.
    pre = Preprocessor().run(result, S, metric)
    baseline = predefined_criteria_explanation(pre)
    k = int(truth.label_mask(F).sum())
    baseline_quality = tid_set_quality(baseline.top(k), F, truth)
    print(f"Pre-defined criterion (top-{k} largest values):")
    print(f"  vs truth: precision={baseline_quality.precision:.2f} "
          f"recall={baseline_quality.recall:.2f} f1={baseline_quality.f1:.2f}")
    print()
    if dbwipes_quality.f1 > baseline_quality.f1:
        print("DBWipes' learned predicate beats the fixed criterion — the "
              "decoy outliers fooled the value ranking but not the "
              "description learner.")


if __name__ == "__main__":
    main()
