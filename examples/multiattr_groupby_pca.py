"""Multi-attribute group-bys: pick-two-axes and PCA projection.

Paper §2.2.1 (2): with a multi-attribute GROUP BY the user picks two
group-by attributes to plot against each other; the authors were also
"investigating additional methods ... such as plotting the two largest
principal components against each other". Both are implemented here.

Run:  python examples/multiattr_groupby_pca.py
"""

import numpy as np

from repro import Database, DBWipesSession
from repro.data import IntelConfig, generate_intel
from repro.frontend import Brush, ascii_scatter, from_result, pca_projection


def main() -> None:
    table, truth = generate_intel(
        IntelConfig(n_sensors=24, duration_minutes=480, interval_minutes=4.0,
                    failing_sensors=(7,), failure_onset_frac=0.5)
    )
    db = Database()
    db.register(table)
    session = DBWipesSession(db)

    # A two-attribute group-by: per (sensor, hour) average temperature.
    session.execute(
        "SELECT sensorid, hour, avg(temp) AS m, avg(voltage) AS v "
        "FROM readings GROUP BY sensorid, hour ORDER BY sensorid, hour"
    )
    result = session.result
    print(f"{result.num_rows} (sensor, hour) groups\n")

    # Option 1: pick two group-by attributes to plot against each other.
    scatter = from_result(result, x="sensorid", y="hour")
    print(ascii_scatter(scatter, height=10,
                        title="Group keys: sensorid vs hour"))
    print()

    # Option 2: plot a key against the aggregate and brush anomalies.
    hot = session.select_results(Brush.above(90.0), x="sensorid", y="m")
    sensors = sorted({result.row(r)[0] for r in hot})
    print(f"Groups averaging above 90 degrees all come from sensors: "
          f"{sensors}")
    assert sensors == [7], "expected exactly the failing sensor"
    print()

    # Option 3 (the paper's 'investigating' idea): PCA projection of the
    # multi-attribute group keys + aggregates.
    projected = pca_projection(result, ["sensorid", "hour", "m", "v"])
    failing_groups = np.asarray(
        [i for i in range(result.num_rows) if result.row(i)[0] == 7
         and result.row(i)[2] > 90],
        dtype=np.int64,
    )
    print(ascii_scatter(projected, height=12, highlight_keys=failing_groups,
                        title="PCA projection (failing sensor's groups "
                              "highlighted)"))
    print()
    print("The failing sensor's post-onset groups separate cleanly in "
          "PC space — exactly why the authors wanted this projection.")


if __name__ == "__main__":
    main()
