"""The Intel Lab walkthrough: Figures 4 and 6 of the paper.

A 54-node sensor deployment reports temperature about twice a minute.
Two motes' batteries die; their readings climb past 100°F with huge
variance. The analyst:

1. plots avg/stddev of temperature per 30-minute window (Figure 4 left),
2. brushes the windows with suspiciously high standard deviation,
3. zooms in to the raw tuples and brushes readings above 100°F
   (Figure 4 right),
4. picks "values are too high" for the stddev aggregate (Figure 5),
5. receives the ranked predicate list (Figure 6), and
6. clicks the top predicate to clean the query.

Run:  python examples/intel_sensor_walkthrough.py
"""

import numpy as np

from repro import Database, DBWipesSession
from repro.data import IntelConfig, generate_intel
from repro.frontend import Brush, ascii_scatter


def main() -> None:
    table, truth = generate_intel(
        IntelConfig(
            n_sensors=54,
            duration_minutes=720,
            interval_minutes=2.0,
            failing_sensors=(15, 18),
            failure_onset_frac=0.7,
        )
    )
    print(f"Generated {len(table)} sensor readings "
          f"({truth.size} from failing motes)")
    print(f"Ground truth: {truth.description}\n")

    db = Database()
    db.register(table)
    session = DBWipesSession(db)

    # -- Figure 4 (left): averages and deviations per window --------------
    session.execute(
        "SELECT minute / 30 AS window, avg(temp) AS avg_temp, "
        "stddev(temp) AS std_temp FROM readings "
        "GROUP BY minute / 30 ORDER BY window"
    )
    print(session.render(y="std_temp", height=12))
    print()

    std = np.asarray(session.result.column("std_temp"))
    cutoff = 4 * float(np.median(std))
    selected = session.select_results(Brush.above(cutoff), y="std_temp")
    print(f"Brushed {len(selected)} windows with stddev above {cutoff:.1f}: "
          f"{list(selected)}\n")

    # -- Figure 4 (right): zoom to the raw tuples -------------------------
    zoomed = session.zoom()
    print(ascii_scatter(zoomed, height=12,
                        highlight_keys=zoomed.keys[zoomed.y > 100.0],
                        title="Zoom: per-tuple temperature in the "
                              "selected windows"))
    print()
    dprime = session.select_inputs(Brush.above(100.0))
    print(f"Brushed {len(dprime)} tuples above 100 degrees as D'\n")

    # -- Figure 5: the error form -----------------------------------------
    print("Error metric options offered for stddev:")
    for option in session.error_form("std_temp"):
        print(f"  [{option.form_id}] {option.label}  defaults={option.defaults}")
    session.set_metric("too_high", agg_name="std_temp")
    print()

    # -- Figure 6: the ranked predicates ----------------------------------
    report = session.debug()
    print(report.to_text(max_rows=8))
    print()

    # How close is the top predicate to the (normally unknowable) truth?
    F = session.result.inputs_for(list(selected))
    from repro.data import explanation_quality

    quality = explanation_quality(report.best.predicate, F, truth)
    print(f"Top predicate vs ground truth: precision={quality.precision:.2f} "
          f"recall={quality.recall:.2f} f1={quality.f1:.2f}\n")

    # -- Clean as you query ------------------------------------------------
    result = session.apply_predicate(0)
    new_std = np.asarray(result.column("std_temp"))
    print(f"After clicking the top predicate, max window stddev fell from "
          f"{std.max():.1f} to {np.nanmax(new_std):.1f}")
    print("Rewritten query:")
    print(" ", session.current_sql())


if __name__ == "__main__":
    main()
