"""The §3.2 FEC walkthrough, replayed over a live service socket.

Boots a :class:`~repro.service.server.DBWipesServer` on an ephemeral
port, connects a :class:`~repro.service.client.ServiceClient` over real
TCP, and drives the paper's campaign-donation story end to end:

1. run the bootstrap query (daily MCCAIN totals) — a negative spike
   stands out;
2. brush the negative days (S), zoom, brush the negative donations (D');
3. pick the "values are too low" metric with threshold 0;
4. debug — the ranked list implicates the REATTRIBUTION memo;
5. click the memo predicate — the spike disappears;
6. undo/redo to show cleanings are reversible.

Exits non-zero if any step misbehaves, so CI can gate on it.

Run with:  PYTHONPATH=src python examples/service_walkthrough.py
"""

from __future__ import annotations

import sys

from repro.data import REATTRIBUTION_MEMO
from repro.service import DBWipesServer, ServiceClient


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAILED: {message}")
        sys.exit(1)
    print(f"  ok: {message}")


def main() -> int:
    print("booting the DBWipes service ...")
    with DBWipesServer(port=0) as server:
        host, port = server.address
        print(f"listening on {host}:{port}; connecting a client")
        with ServiceClient(host, port, session="attendee-1", timeout=300) as client:
            pong = client.ping()
            check(pong["pong"] is True, "server answers ping")

            opened = client.open("fec")
            bootstrap = opened["bootstrap"]
            check(bool(bootstrap), "open returns the bootstrap query")
            print(f"\n§3.2: {bootstrap}")

            result = client.execute(bootstrap, max_rows=0)
            check(result["num_rows"] > 0, "bootstrap query returns daily totals")

            totals = [row[1] for row in client.result(max_rows=None)["rows"]]
            negative_days = [t for t in totals if t is not None and t < 0]
            check(len(negative_days) > 0, "a negative spike exists in the totals")

            selected = client.select_results(brush={"below": 0.0})
            check(len(selected) > 0, f"brushed {len(selected)} suspicious days as S")

            scatter = client.zoom()
            check(scatter["n"] > 0, f"zoomed into {scatter['n']} input tuples")

            dprime = client.select_inputs(brush={"below": 0.0})
            check(len(dprime) > 0, f"brushed {len(dprime)} negative donations as D'")

            forms = [o["form_id"] for o in client.error_form()]
            check("too_low" in forms, f"error form offers too_low (got {forms})")
            metric = client.set_metric("too_low", threshold=0.0)
            print(f"  metric: {metric}")

            report = client.debug()
            check(report["n_predicates"] > 0, "debug returned ranked predicates")
            top_predicates = [p["predicate"] for p in report["predicates"][:3]]
            print("  top ranked predicates:")
            for rank, predicate in enumerate(top_predicates, start=1):
                print(f"    {rank}. {predicate}")
            memo_rank = next(
                (
                    i
                    for i, p in enumerate(report["predicates"])
                    if REATTRIBUTION_MEMO in p["predicate"]
                ),
                None,
            )
            check(
                memo_rank is not None and memo_rank < 3,
                f"the {REATTRIBUTION_MEMO!r} memo ranks in the top 3",
            )

            applied = client.apply(memo_rank)
            cleaned = [
                row[1]
                for row in applied["result"]["rows"]
                if row[1] is not None
            ]
            check(min(cleaned) >= 0, "applying the memo predicate removes the spike")
            print(f"  cleaned query: {applied['sql']}")

            undone = client.undo()
            check("NOT" not in undone["sql"], "undo restores the original query")
            redone = client.redo()
            check("NOT" in redone["sql"], "redo re-applies the cleaning")

            stats = client.stats()
            print(f"\nserver stats: {stats}")
    print("walkthrough complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
