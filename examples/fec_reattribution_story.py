"""The data journalist's story (paper §3.2, Figure 7).

A journalist plots McCain's total donations per day and sees a strange
*negative* spike around day 500. Instead of manually inspecting every
donation, she highlights the dip, zooms, brushes the negative donations,
picks "values are too low", and clicks debug!. The top predicates include
``memo = 'REATTRIBUTION TO SPOUSE'`` — a technique to hide donations from
high-profile individuals by attributing them to a spouse. Clicking it
removes the negative value from the chart.

Run:  python examples/fec_reattribution_story.py
"""

import numpy as np

from repro import Database, DBWipesSession
from repro.data import FECConfig, generate_fec, walkthrough_query
from repro.frontend import Brush


def main() -> None:
    table, truth = generate_fec(FECConfig())
    print(f"Generated {len(table)} contributions; ground truth: "
          f"{truth.description}\n")

    db = Database()
    db.register(table)
    session = DBWipesSession(db)

    # -- Figure 7: daily totals with the negative spike --------------------
    session.execute(walkthrough_query("MCCAIN"))
    print(session.render(height=14))
    print()

    totals = np.asarray(session.result.column("total"))
    negative_mass = float(np.minimum(totals, 0).sum())
    print(f"Total negative mass in the chart: {negative_mass:,.0f}\n")

    # -- Highlight the dip, zoom, brush the negative donations -------------
    selected = session.select_results(Brush.below(0.0))
    days = [session.result.row(r)[0] for r in selected]
    print(f"Brushed the dip: days {days}")

    zoomed = session.zoom()
    print(f"Zoomed into {len(zoomed)} donations around those days")
    dprime = session.select_inputs(Brush.below(0.0))
    print(f"Brushed {len(dprime)} negative donations as D'\n")

    # -- Debug! -------------------------------------------------------------
    session.set_metric("too_low", threshold=0.0)
    report = session.debug()
    print(report.to_text(max_rows=6))
    print()

    # Find the memo predicate in the ranked list (the story's punchline).
    memo_rank = next(
        (i for i, r in enumerate(report)
         if "REATTRIBUTION TO SPOUSE" in r.predicate.to_sql()),
        None,
    )
    assert memo_rank is not None, "memo predicate missing from the report"
    print(f"The REATTRIBUTION TO SPOUSE predicate ranks #{memo_rank + 1}\n")

    # -- Click it: the negative value disappears ----------------------------
    result = session.apply_predicate(memo_rank)
    totals_after = np.asarray(result.column("total"))
    negative_after = float(np.minimum(totals_after, 0).sum())
    print(f"Negative mass after cleaning: {negative_after:,.0f} "
          f"(was {negative_mass:,.0f})")
    print()
    print(session.render(height=14))
    print()
    print("The query form now shows:")
    print(" ", session.current_sql())


if __name__ == "__main__":
    main()
