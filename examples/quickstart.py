"""Quickstart: the full DBWipes loop in ~40 lines.

A tiny sensor table contains one obviously broken reading. We run an
aggregate query, notice the bad window, ask DBWipes *why*, and clean it
— all programmatically.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Database, DBWipesSession
from repro.frontend import Brush


def main() -> None:
    # 1. Build a database. Sensor 2 emits two wildly wrong readings
    #    (tids 3 and 8) inside the second half-hour window.
    db = Database()
    db.create_table(
        "sensors",
        {
            "sensorid": [1, 1, 2, 2, 2, 3, 3, 1, 2, 3],
            "time": [0, 35, 2, 31, 62, 5, 40, 65, 33, 68],
            "temp": [20.0, 21.0, 22.0, 120.0, 23.0, 19.5, 20.5, 22.5, 118.0, 20.0],
        },
        types={"sensorid": "int", "time": "int", "temp": "float"},
    )

    session = DBWipesSession(db)

    # 2. Execute an aggregate query: average temperature per 30-min window.
    result = session.execute(
        "SELECT time / 30 AS window, avg(temp) AS avg_temp "
        "FROM sensors GROUP BY time / 30 ORDER BY window"
    )
    print("Query results:")
    print(result.to_text())
    print()
    print(session.render(height=10))
    print()

    # 3. Brush the suspicious result (the window averaging 54 degrees).
    selected = session.select_results(Brush.above(40.0))
    print(f"Selected suspicious windows S = {list(selected)}")

    # 4. Zoom in to the raw tuples and brush the outlier readings (D').
    zoomed = session.zoom()
    print(f"Zoomed into {len(zoomed)} input tuples")
    dprime = session.select_inputs(Brush.above(100.0))
    print(f"Selected suspicious inputs D' = {list(dprime)}")

    # 5. Pick an error metric from the generated form and debug.
    for option in session.error_form():
        print(f"  error form option: {option.form_id:10s} {option.label}")
    session.set_metric("too_high", threshold=25.0)
    report = session.debug()
    print()
    print(report.to_text())
    print()

    # 6. Click the top predicate: the query is rewritten and re-executed.
    cleaned = session.apply_predicate(0)
    print("After cleaning:")
    print(cleaned.to_text())
    print()
    print("The query form now shows:")
    print(" ", session.current_sql())

    new_max = float(np.asarray(cleaned.column("avg_temp")).max())
    assert new_max < 30.0, "cleaning failed to remove the anomaly"
    print(f"\nMax window average dropped to {new_max:.1f} — anomaly explained "
          "and removed.")


if __name__ == "__main__":
    main()
