"""Synthetic Intel Lab sensor dataset.

The real trace (http://db.csail.mit.edu/labdata/labdata.html) holds 2.3
million readings from 54 motes over a month: temperature, humidity,
light, and battery voltage about twice a minute. Its famous failure mode
— which the DBWipes walkthrough (Figure 4/6) leans on — is that motes
with dying batteries report wildly inflated temperatures (>100°F) with
high variance, while their voltage sags below ~2.4V.

This generator reproduces that shape deterministically:

* diurnal temperature sinusoid per sensor plus Gaussian noise;
* humidity anti-correlated with temperature; light following a daylight
  curve; voltage decaying slowly from ~2.9V;
* configured *failing sensors* whose voltage collapses after an onset
  time and whose temperature readings climb into the 100–140 range with
  inflated variance.

Ground truth: the tids of all post-onset readings from failing sensors;
hidden predicate: ``sensorid IN failing AND temp > 100``-ish (we record
the sensor-id predicate, which is the cleanest human description).
"""

from __future__ import annotations


from dataclasses import dataclass

import numpy as np

from ..db.predicate import NumericClause, Predicate
from ..db.table import Table
from .anomalies import GroundTruth
from .rng import make_rng

#: 30-minute windows, matching the paper's example query.
WINDOW_MINUTES = 30


@dataclass(frozen=True)
class IntelConfig:
    """Knobs of the synthetic Intel Lab generator."""

    n_sensors: int = 54
    #: Total simulated duration in minutes (a month = 43200).
    duration_minutes: int = 720
    #: Minutes between consecutive readings of one sensor (paper: ~0.5).
    interval_minutes: float = 2.0
    #: Sensor ids that fail (1-based like the real deployment).
    failing_sensors: tuple[int, ...] = (15, 18)
    #: Fraction of the duration at which failures begin.
    failure_onset_frac: float = 0.5
    #: Mean indoor temperature in °F and diurnal swing.
    base_temp: float = 68.0
    diurnal_swing: float = 6.0
    noise_std: float = 1.2
    #: Failure plateau: readings climb from ~100 to this peak.
    failure_peak_temp: float = 140.0
    failure_noise_std: float = 8.0
    healthy_voltage: float = 2.9
    failure_voltage: float = 2.25
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_sensors < 1:
            raise ValueError("n_sensors must be >= 1")
        for sensor in self.failing_sensors:
            if not 1 <= sensor <= self.n_sensors:
                raise ValueError(f"failing sensor {sensor} out of range")


def generate_intel(config: IntelConfig | None = None) -> tuple[Table, GroundTruth]:
    """Generate the synthetic sensor table and its ground truth.

    Columns: ``sensorid`` (INT, 1-based), ``epoch`` (INT, per-sensor
    reading index), ``minute`` (INT since start), ``hour`` (INT),
    ``temp``, ``humidity``, ``light``, ``voltage`` (FLOAT).
    """
    config = config or IntelConfig()
    rng = make_rng(config.seed)
    readings_per_sensor = int(config.duration_minutes / config.interval_minutes)
    n = config.n_sensors * readings_per_sensor
    onset_minute = config.duration_minutes * config.failure_onset_frac

    sensorid = np.repeat(
        np.arange(1, config.n_sensors + 1, dtype=np.int64), readings_per_sensor
    )
    epoch = np.tile(np.arange(readings_per_sensor, dtype=np.int64), config.n_sensors)
    minute = (epoch * config.interval_minutes).astype(np.int64)
    hour = minute // 60

    # Per-sensor personality: a fixed offset and diurnal phase.
    offsets = rng.normal(0.0, 1.5, config.n_sensors)[sensorid - 1]
    phases = rng.uniform(0, 2 * np.pi, config.n_sensors)[sensorid - 1]
    day_angle = 2 * np.pi * (minute % 1440) / 1440.0
    temp = (
        config.base_temp
        + offsets
        + config.diurnal_swing * np.sin(day_angle - np.pi / 2 + phases * 0.05)
        + rng.normal(0, config.noise_std, n)
    )
    humidity = 45.0 - 0.6 * (temp - config.base_temp) + rng.normal(0, 2.0, n)
    light = np.maximum(
        0.0,
        420.0 * np.maximum(np.sin(day_angle - np.pi / 2), 0.0)
        + rng.normal(0, 30.0, n),
    )
    voltage = (
        config.healthy_voltage
        - 0.1 * (minute / max(config.duration_minutes, 1))
        + rng.normal(0, 0.01, n)
    )

    failing = np.isin(sensorid, np.asarray(config.failing_sensors, dtype=np.int64))
    after_onset = minute >= onset_minute
    broken = failing & after_onset
    if broken.any():
        span = max(config.duration_minutes - onset_minute, 1.0)
        progress = np.clip((minute[broken] - onset_minute) / span, 0.0, 1.0)
        temp[broken] = (
            100.0
            + (config.failure_peak_temp - 100.0) * progress
            + rng.normal(0, config.failure_noise_std, int(broken.sum()))
        )
        humidity[broken] = np.maximum(
            rng.normal(2.0, 1.5, int(broken.sum())), -5.0
        )
        voltage[broken] = config.failure_voltage + rng.normal(
            0, 0.03, int(broken.sum())
        )

    table = Table.from_columns(
        {
            "sensorid": sensorid,
            "epoch": epoch,
            "minute": minute,
            "hour": hour,
            "temp": temp,
            "humidity": humidity,
            "light": light,
            "voltage": voltage,
        },
        types={
            "sensorid": "int",
            "epoch": "int",
            "minute": "int",
            "hour": "int",
            "temp": "float",
            "humidity": "float",
            "light": "float",
            "voltage": "float",
        },
        name="readings",
    )
    truth_tids = np.asarray(table.tids)[broken]
    truth_predicate = Predicate(
        [
            NumericClause(
                "sensorid",
                float(min(config.failing_sensors, default=0)),
                float(max(config.failing_sensors, default=0)),
                True,
                True,
            )
        ]
    ) if len(config.failing_sensors) == 1 else None
    truth = GroundTruth(
        tids=truth_tids,
        description=(
            f"sensors {sorted(config.failing_sensors)} fail after minute "
            f"{onset_minute:.0f}: temp climbs past 100F, voltage drops to "
            f"{config.failure_voltage}V"
        ),
        predicate=truth_predicate,
    )
    return table, truth


def intel_at_scale(scale: int = 1, **overrides) -> IntelConfig:
    """An :class:`IntelConfig` sized to ``scale ×`` the default rows.

    Scaling stretches the simulated duration — more readings per sensor
    — rather than adding sensors, so group cardinality (and with it the
    ``debug()`` search space) stays that of the 54-node deployment
    while the data *volume* grows linearly. The storage benchmarks use
    this to size their 1× / 10× / 50× tables; ``overrides`` pass
    through to :class:`IntelConfig`.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    overrides.setdefault(
        "duration_minutes", IntelConfig.duration_minutes * int(scale)
    )
    return IntelConfig(**overrides)


#: The walkthrough query of Figure 4 (left panel): per-window avg + stddev.
WALKTHROUGH_QUERY = (
    "SELECT minute / 30 AS window, avg(temp) AS avg_temp, "
    "stddev(temp) AS std_temp FROM readings GROUP BY minute / 30 "
    "ORDER BY window"
)
