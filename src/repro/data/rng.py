"""Seeded randomness helpers shared by the dataset generators."""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator) -> np.random.Generator:
    """A :class:`numpy.random.Generator` from a seed (pass-through if already one)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def choice_weighted(
    rng: np.random.Generator, values: list, weights: list[float], size: int
) -> np.ndarray:
    """Sample ``size`` values with the given relative weights."""
    probabilities = np.asarray(weights, dtype=np.float64)
    probabilities = probabilities / probabilities.sum()
    picks = rng.choice(len(values), size=size, p=probabilities)
    out = np.empty(size, dtype=object)
    for i, pick in enumerate(picks):
        out[i] = values[pick]
    return out
