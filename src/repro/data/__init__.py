"""``repro.data`` — synthetic stand-ins for the demo's datasets.

See DESIGN.md for the substitution rationale: the real FEC dump and
Intel Lab trace are unavailable offline, so seeded generators reproduce
the statistical shapes the walkthrough depends on — with ground-truth
labels the real data never had.
"""

from .anomalies import GroundTruth, explanation_quality, tid_set_quality
from .fec import REATTRIBUTION_MEMO, FECConfig, generate_fec, walkthrough_query
from .intel import (
    WALKTHROUGH_QUERY,
    WINDOW_MINUTES,
    IntelConfig,
    generate_intel,
    intel_at_scale,
)
from .synthetic import SyntheticConfig, dirty_group_rows, generate_synthetic

__all__ = [
    "FECConfig",
    "GroundTruth",
    "IntelConfig",
    "REATTRIBUTION_MEMO",
    "SyntheticConfig",
    "WALKTHROUGH_QUERY",
    "WINDOW_MINUTES",
    "dirty_group_rows",
    "explanation_quality",
    "generate_fec",
    "generate_intel",
    "generate_synthetic",
    "intel_at_scale",
    "tid_set_quality",
    "walkthrough_query",
]
