"""Ground truth containers and explanation-quality evaluation.

The original demo ran on real datasets with *plausible* but unlabeled
anomalies. Our synthetic substitutes inject anomalies deliberately, so
every generated table ships a :class:`GroundTruth`: the exact tids of
the corrupted tuples and, when one exists, the hidden predicate that
characterizes them. That turns the demo's qualitative story into the
measurable precision/recall evaluation of the Q1 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.predicate import Predicate
from ..db.table import Table
from ..learn.metrics import Confusion, confusion


@dataclass(frozen=True)
class GroundTruth:
    """The injected anomaly: its tuples and its hidden description."""

    tids: np.ndarray
    description: str
    predicate: Predicate | None = None

    @property
    def size(self) -> int:
        """Number of injected anomalous tuples."""
        return len(self.tids)

    def label_mask(self, table: Table) -> np.ndarray:
        """Boolean labels over ``table``: True where the row is anomalous."""
        tid_set = set(int(t) for t in self.tids)
        table_tids = np.asarray(table.tids)
        return np.fromiter(
            (int(t) in tid_set for t in table_tids),
            dtype=bool,
            count=len(table_tids),
        )


def explanation_quality(
    predicate: Predicate, table: Table, truth: GroundTruth
) -> Confusion:
    """Confusion counts of a predicate explanation against the ground truth.

    Evaluated over ``table`` (typically F, the provenance of the selected
    results): a perfect explanation matches exactly the injected tuples.
    """
    labels = truth.label_mask(table)
    predicted = predicate.mask(table)
    return confusion(labels, predicted)


def tid_set_quality(tids: np.ndarray, table: Table, truth: GroundTruth) -> Confusion:
    """Confusion counts of a raw tid-set explanation (for tuple-level baselines)."""
    predicted_set = set(int(t) for t in np.asarray(tids).ravel())
    table_tids = np.asarray(table.tids)
    predicted = np.fromiter(
        (int(t) in predicted_set for t in table_tids),
        dtype=bool,
        count=len(table_tids),
    )
    labels = truth.label_mask(table)
    return confusion(labels, predicted)
