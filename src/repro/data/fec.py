"""Synthetic FEC presidential campaign contributions dataset.

The demo used the real 2012 FEC dump (and the §3.2 walkthrough, the 2008
cycle). That data is unavailable offline, so this generator reproduces
the statistical shape the walkthrough depends on:

* per-day donation counts with a baseline rate plus event spikes
  ("each contribution spike correlates with a major campaign event");
* lognormal donation amounts clipped to the legal individual limit;
* realistic categorical attributes (state, city, occupation, memo);
* the anomaly: a burst of **negative** donations around a configurable
  day (~500 in the story), all carrying the memo
  ``REATTRIBUTION TO SPOUSE``, attributed to one candidate.

Ground truth: the tids of the reattribution rows; hidden predicate:
``memo = 'REATTRIBUTION TO SPOUSE'`` — exactly the predicate the data
journalist clicks in the walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.predicate import CategoricalClause, Predicate
from ..db.table import Table
from .anomalies import GroundTruth
from .rng import choice_weighted, make_rng

REATTRIBUTION_MEMO = "REATTRIBUTION TO SPOUSE"

_STATES = ["CA", "NY", "TX", "FL", "MA", "IL", "WA", "VA", "OH", "PA"]
_CITIES = {
    "CA": ["LOS ANGELES", "SAN FRANCISCO", "SAN DIEGO"],
    "NY": ["NEW YORK", "BUFFALO", "ALBANY"],
    "TX": ["HOUSTON", "AUSTIN", "DALLAS"],
    "FL": ["MIAMI", "TAMPA", "ORLANDO"],
    "MA": ["BOSTON", "CAMBRIDGE", "WORCESTER"],
    "IL": ["CHICAGO", "SPRINGFIELD", "EVANSTON"],
    "WA": ["SEATTLE", "SPOKANE", "TACOMA"],
    "VA": ["ARLINGTON", "RICHMOND", "NORFOLK"],
    "OH": ["COLUMBUS", "CLEVELAND", "CINCINNATI"],
    "PA": ["PHILADELPHIA", "PITTSBURGH", "HARRISBURG"],
}
_OCCUPATIONS = [
    "RETIRED", "ATTORNEY", "PHYSICIAN", "ENGINEER", "TEACHER", "HOMEMAKER",
    "CONSULTANT", "EXECUTIVE", "PROFESSOR", "NOT EMPLOYED", "CEO", "STUDENT",
]
_OCCUPATION_WEIGHTS = [20, 10, 8, 7, 7, 6, 5, 4, 4, 3, 2, 6]
_BENIGN_MEMOS = ["", "", "", "", "", "", "", "", "GENERAL", "PRIMARY"]


@dataclass(frozen=True)
class FECConfig:
    """Knobs of the synthetic contributions generator."""

    candidates: tuple[str, ...] = ("OBAMA", "MCCAIN")
    n_days: int = 600
    #: Mean donations per candidate per day at baseline.
    base_rate: float = 30.0
    #: (day, multiplier) campaign-event spikes applied to every candidate.
    events: tuple[tuple[int, float], ...] = (
        (120, 4.0), (260, 3.0), (380, 5.0), (470, 3.5), (560, 6.0),
    )
    #: Lognormal amount parameters and the legal per-donor cap.
    amount_mu: float = 4.6
    amount_sigma: float = 1.1
    amount_cap: float = 2300.0
    #: The anomaly: candidate, center day, spread, row count, amounts.
    anomaly_candidate: str = "MCCAIN"
    anomaly_day: int = 500
    anomaly_spread: int = 3
    anomaly_count: int = 80
    anomaly_amount_lo: float = -2300.0
    anomaly_amount_hi: float = -500.0
    seed: int = 11

    def __post_init__(self) -> None:
        if self.anomaly_candidate not in self.candidates:
            raise ValueError("anomaly_candidate must be one of candidates")
        if not 0 <= self.anomaly_day < self.n_days:
            raise ValueError("anomaly_day out of range")


def generate_fec(config: FECConfig | None = None) -> tuple[Table, GroundTruth]:
    """Generate the contributions table and its ground truth.

    Columns: ``candidate`` (STR), ``amount`` (FLOAT, negative for the
    injected reattributions), ``day`` (INT since campaign start),
    ``state``, ``city``, ``occupation``, ``memo`` (STR).
    """
    config = config or FECConfig()
    rng = make_rng(config.seed)

    day_rates = np.full(config.n_days, config.base_rate, dtype=np.float64)
    for event_day, multiplier in config.events:
        if 0 <= event_day < config.n_days:
            window = slice(max(event_day - 2, 0), min(event_day + 3, config.n_days))
            day_rates[window] *= multiplier

    candidates: list[str] = []
    amounts: list[float] = []
    days: list[int] = []
    for candidate in config.candidates:
        # Candidate-specific popularity wiggle so the series differ.
        wiggle = 0.7 + 0.6 * rng.random(config.n_days)
        counts = rng.poisson(day_rates * wiggle)
        for day, count in enumerate(counts):
            if count == 0:
                continue
            raw = rng.lognormal(config.amount_mu, config.amount_sigma, count)
            raw = np.minimum(raw, config.amount_cap)
            raw = np.maximum(raw, 5.0)
            amounts.extend(float(a) for a in np.round(raw, 2))
            days.extend([day] * int(count))
            candidates.extend([candidate] * int(count))

    n_normal = len(amounts)
    state_arr = choice_weighted(
        rng, _STATES, [10, 9, 8, 7, 6, 6, 5, 4, 4, 4], n_normal
    )
    city_arr = np.empty(n_normal, dtype=object)
    for i in range(n_normal):
        options = _CITIES[state_arr[i]]
        city_arr[i] = options[int(rng.integers(len(options)))]
    occupation_arr = choice_weighted(rng, _OCCUPATIONS, _OCCUPATION_WEIGHTS, n_normal)
    memo_arr = choice_weighted(rng, _BENIGN_MEMOS, [1.0] * len(_BENIGN_MEMOS), n_normal)

    # Inject the reattribution burst.
    anomaly_days = rng.integers(
        config.anomaly_day - config.anomaly_spread,
        config.anomaly_day + config.anomaly_spread + 1,
        config.anomaly_count,
    )
    anomaly_amounts = np.round(
        rng.uniform(config.anomaly_amount_lo, config.anomaly_amount_hi,
                    config.anomaly_count),
        2,
    )
    anomaly_states = choice_weighted(
        rng, _STATES, [10, 9, 8, 7, 6, 6, 5, 4, 4, 4], config.anomaly_count
    )
    anomaly_cities = np.empty(config.anomaly_count, dtype=object)
    for i in range(config.anomaly_count):
        options = _CITIES[anomaly_states[i]]
        anomaly_cities[i] = options[int(rng.integers(len(options)))]
    anomaly_occupations = choice_weighted(
        rng, ["CEO", "EXECUTIVE", "HOMEMAKER"], [5, 3, 4], config.anomaly_count
    )

    candidates.extend([config.anomaly_candidate] * config.anomaly_count)
    amounts.extend(float(a) for a in anomaly_amounts)
    days.extend(int(d) for d in anomaly_days)
    all_states = np.concatenate([state_arr, anomaly_states])
    all_cities = np.concatenate([city_arr, anomaly_cities])
    all_occupations = np.concatenate([occupation_arr, anomaly_occupations])
    all_memos = np.concatenate(
        [memo_arr, np.array([REATTRIBUTION_MEMO] * config.anomaly_count, dtype=object)]
    )

    table = Table.from_columns(
        {
            "candidate": candidates,
            "amount": amounts,
            "day": days,
            "state": list(all_states),
            "city": list(all_cities),
            "occupation": list(all_occupations),
            "memo": list(all_memos),
        },
        types={
            "candidate": "str",
            "amount": "float",
            "day": "int",
            "state": "str",
            "city": "str",
            "occupation": "str",
            "memo": "str",
        },
        name="contributions",
    )
    truth_tids = np.asarray(table.tids)[n_normal:]
    truth = GroundTruth(
        tids=truth_tids,
        description=(
            f"{config.anomaly_count} negative donations to "
            f"{config.anomaly_candidate} around day {config.anomaly_day} "
            f"with memo {REATTRIBUTION_MEMO!r}"
        ),
        predicate=Predicate(
            [CategoricalClause("memo", frozenset([REATTRIBUTION_MEMO]))]
        ),
    )
    return table, truth


#: The walkthrough query of Figure 7: daily totals for one candidate.
def walkthrough_query(candidate: str = "MCCAIN") -> str:
    """The Figure 7 query: total received donations per day for a candidate."""
    return (
        f"SELECT day, sum(amount) AS total FROM contributions "
        f"WHERE candidate = '{candidate}' GROUP BY day ORDER BY day"
    )
