"""Parametric clustered-anomaly workloads for quantitative evaluation.

The paper's introduction motivates ranked provenance with "a set of
moderately high values that are clustered together" — anomalies that
share a compact attribute description. This generator produces such
workloads with a *hidden predicate* chosen at random, so the Q1/Q2/A2
benchmarks can sweep sizes and difficulty while measuring explanation
precision/recall exactly.

Shape: a fact table with one group key, several categorical and numeric
descriptive attributes, and one measure. Rows matching the hidden
predicate (restricted to a subset of groups) get their measure shifted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.predicate import CategoricalClause, NumericClause, Predicate
from ..db.table import Table
from .anomalies import GroundTruth
from .rng import make_rng


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the clustered-anomaly generator."""

    n_rows: int = 5000
    n_groups: int = 40
    #: Distinct values per categorical attribute (a, b).
    cat_cardinality: int = 8
    #: Baseline measure distribution.
    measure_mean: float = 50.0
    measure_std: float = 5.0
    #: How far the anomalous cluster's measure is shifted (in stds).
    shift_stds: float = 10.0
    #: Number of groups whose tuples can be corrupted.
    n_dirty_groups: int = 4
    #: Fraction of hidden-predicate matches inside dirty groups corrupted.
    corruption_rate: float = 0.9
    #: Hidden predicate shape: "categorical", "numeric", or "conjunction".
    predicate_kind: str = "conjunction"
    #: Fraction of *legitimate* rows given individually extreme values.
    #: These model the paper's limitation-1 scenario: the user cares about
    #: a clustered set of moderately high values, while isolated extreme
    #: values are legitimate — pre-defined "largest inputs" criteria chase
    #: the wrong tuples.
    legit_outlier_rate: float = 0.0
    #: How extreme the legitimate outliers are (in stds; should exceed
    #: ``shift_stds`` to fool value-based rankings).
    legit_outlier_stds: float = 20.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.predicate_kind not in ("categorical", "numeric", "conjunction"):
            raise ValueError("predicate_kind must be categorical|numeric|conjunction")
        if not 0 < self.corruption_rate <= 1:
            raise ValueError("corruption_rate must be in (0, 1]")


def generate_synthetic(
    config: SyntheticConfig | None = None,
) -> tuple[Table, GroundTruth]:
    """Generate the workload table and its ground truth.

    Columns: ``grp`` (INT group key), ``a`` and ``b`` (STR categorical),
    ``x`` and ``y`` (FLOAT numeric descriptors), ``measure`` (FLOAT, the
    aggregated column).
    """
    config = config or SyntheticConfig()
    rng = make_rng(config.seed)
    n = config.n_rows

    grp = rng.integers(0, config.n_groups, n).astype(np.int64)
    cat_values = [f"v{i}" for i in range(config.cat_cardinality)]
    a = np.array([cat_values[i] for i in rng.integers(0, config.cat_cardinality, n)],
                 dtype=object)
    b = np.array([cat_values[i] for i in rng.integers(0, config.cat_cardinality, n)],
                 dtype=object)
    x = rng.uniform(0.0, 100.0, n)
    y = rng.normal(0.0, 1.0, n)
    measure = rng.normal(config.measure_mean, config.measure_std, n)

    hidden, match_mask = _hidden_predicate(config, rng, a, b, x)
    dirty_groups = rng.choice(config.n_groups, config.n_dirty_groups, replace=False)
    in_dirty_group = np.isin(grp, dirty_groups)
    corrupt = match_mask & in_dirty_group
    corrupt &= rng.random(n) < config.corruption_rate
    measure = measure + np.where(
        corrupt, config.shift_stds * config.measure_std, 0.0
    )
    if config.legit_outlier_rate > 0:
        legit = (~corrupt) & (rng.random(n) < config.legit_outlier_rate)
        measure = measure + np.where(
            legit, config.legit_outlier_stds * config.measure_std, 0.0
        )

    table = Table.from_columns(
        {
            "grp": grp,
            "a": list(a),
            "b": list(b),
            "x": x,
            "y": y,
            "measure": measure,
        },
        types={"grp": "int", "a": "str", "b": "str", "x": "float",
               "y": "float", "measure": "float"},
        name="facts",
    )
    truth = GroundTruth(
        tids=np.asarray(table.tids)[corrupt],
        description=(
            f"rows matching {hidden.describe()} in groups "
            f"{sorted(int(g) for g in dirty_groups)} shifted by "
            f"{config.shift_stds} stds"
        ),
        predicate=hidden,
    )
    return table, truth


def dirty_group_rows(table: Table, truth: GroundTruth) -> np.ndarray:
    """Group keys (``grp`` values) containing at least one anomalous row."""
    mask = truth.label_mask(table)
    return np.unique(np.asarray(table.column("grp"))[mask])


def _hidden_predicate(
    config: SyntheticConfig,
    rng: np.random.Generator,
    a: np.ndarray,
    b: np.ndarray,
    x: np.ndarray,
) -> tuple[Predicate, np.ndarray]:
    cat_values = sorted({v for v in a})
    pick_a = cat_values[int(rng.integers(len(cat_values)))]
    lo = float(rng.uniform(10, 50))
    hi = lo + float(rng.uniform(15, 35))
    if config.predicate_kind == "categorical":
        predicate = Predicate([CategoricalClause("a", frozenset([pick_a]))])
    elif config.predicate_kind == "numeric":
        predicate = Predicate([NumericClause("x", lo, hi, True, True)])
    else:
        predicate = Predicate(
            [
                CategoricalClause("a", frozenset([pick_a])),
                NumericClause("x", lo, hi, True, True),
            ]
        )
    mask = np.ones(len(a), dtype=bool)
    for clause in predicate.clauses:
        if isinstance(clause, CategoricalClause):
            mask &= np.fromiter(
                (v in clause.values for v in a), dtype=bool, count=len(a)
            )
        else:
            mask &= (x >= clause.lo) & (x <= clause.hi)
    return predicate, mask
