"""Brush selections: how the user highlights suspicious points.

A :class:`Brush` is the rectangular drag-selection of the dashboard; it
selects point *keys* (result-row indexes on a results plot, tids on a
tuples plot). Brushes can be unioned to model multiple drags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SessionError
from .scatter import ScatterData


@dataclass(frozen=True)
class Brush:
    """An axis-aligned selection rectangle (inclusive bounds)."""

    x0: float
    x1: float
    y0: float
    y1: float

    def __post_init__(self) -> None:
        if self.x0 > self.x1 or self.y0 > self.y1:
            raise SessionError(
                f"degenerate brush: ({self.x0},{self.y0})..({self.x1},{self.y1})"
            )

    @classmethod
    def over_x(cls, x0: float, x1: float) -> "Brush":
        """A brush spanning the full y range (select by x only)."""
        return cls(x0, x1, -np.inf, np.inf)

    @classmethod
    def over_y(cls, y0: float, y1: float) -> "Brush":
        """A brush spanning the full x range (select by y only)."""
        return cls(-np.inf, np.inf, y0, y1)

    @classmethod
    def above(cls, y: float) -> "Brush":
        """Everything with y >= the given value — 'suspiciously high'."""
        return cls(-np.inf, np.inf, y, np.inf)

    @classmethod
    def below(cls, y: float) -> "Brush":
        """Everything with y <= the given value — 'suspiciously low'."""
        return cls(-np.inf, np.inf, -np.inf, y)

    def mask(self, scatter: ScatterData) -> np.ndarray:
        """Boolean mask over the scatter's points."""
        with np.errstate(invalid="ignore"):
            inside = (
                (scatter.x >= self.x0)
                & (scatter.x <= self.x1)
                & (scatter.y >= self.y0)
                & (scatter.y <= self.y1)
            )
        return np.asarray(inside, dtype=bool)

    def select(self, scatter: ScatterData) -> np.ndarray:
        """Keys of the points inside the rectangle."""
        return scatter.keys[self.mask(scatter)]


def union_select(brushes: list[Brush], scatter: ScatterData) -> np.ndarray:
    """Keys selected by any of several brushes (multiple drag gestures)."""
    if not brushes:
        return np.empty(0, dtype=np.int64)
    mask = np.zeros(len(scatter), dtype=bool)
    for brush in brushes:
        mask |= brush.mask(scatter)
    return scatter.keys[mask]
