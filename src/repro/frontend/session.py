"""The DBWipes interactive session: the full Figure-1 loop.

A :class:`DBWipesSession` walks the exact sequence of user actions the
paper's frontend supports::

    execute query -> visualize results -> select suspicious results (S)
    -> zoom -> select suspicious inputs (D') -> pick error metric (ε)
    -> debug -> ranked predicates -> click predicate to clean
    -> query auto-updates -> repeat

Every arrow is a method; calling them out of order raises
:class:`~repro.errors.SessionError` with a hint about what must happen
first — the same constraints the GUI enforces by graying out controls.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.error_metrics import ErrorMetric
from ..core.pipeline import PipelineConfig, RankedProvenance
from ..core.report import DebugReport, RankedPredicate
from ..db.catalog import Database
from ..db.predicate import Predicate
from ..db.result import ResultSet
from ..db.sqlparse.ast_nodes import Star
from ..db.table import Table
from ..errors import SessionError
from .forms import FormOption, forms_for
from .render import ascii_scatter, render_predicates_panel, render_query_panel
from .rewriter import QueryRewriter
from .scatter import ScatterData, from_result, _as_numeric
from .selection import Brush, union_select


#: The explicit session states, in the order of the Figure-1 loop.
#: ``set_metric`` may interleave with selection, so the metric is
#: tracked separately in :meth:`DBWipesSession.snapshot`; every other
#: arrow of the loop advances (or resets) the state below.
SESSION_STATES = (
    "new",               # no query executed yet
    "executed",          # execute() ran; nothing selected
    "results_selected",  # S chosen
    "zoomed",            # zoomed into F
    "inputs_selected",   # D' chosen
    "debugged",          # a ranked report is available
)


class DBWipesSession:
    """One user's interactive cleaning session against a database.

    ``preprocess_cache`` may be a shared
    :class:`~repro.core.preprocessor.PreprocessCache` so that many
    sessions served over the same catalog reuse preprocessing work; the
    serving tier (:mod:`repro.service`) wires one cache into every
    session it manages.
    """

    def __init__(
        self,
        db: Database,
        config: PipelineConfig | None = None,
        preprocess_cache=None,
    ):
        self.db = db
        self.pipeline = RankedProvenance(config, preprocess_cache=preprocess_cache)
        self._rewriter: QueryRewriter | None = None
        self._result: ResultSet | None = None
        self._selected_rows: tuple[int, ...] = ()
        self._zoom_table: Table | None = None
        self._dprime: np.ndarray = np.empty(0, dtype=np.int64)
        self._metric: ErrorMetric | None = None
        self._agg_name: str | None = None
        self._report: DebugReport | None = None
        self._state: str = "new"
        # Per-stage wall-clock counters (preprocess / enumerate / rank /
        # merge): the last debug's timings plus lifetime accumulations,
        # exposed via snapshot() so a live server reveals which pipeline
        # stage dominates without ad-hoc profiling.
        self._stage_timings: dict[str, float] = {}
        self._stage_totals: dict[str, float] = {}
        self._debug_count: int = 0

    @property
    def state(self) -> str:
        """Where in the Figure-1 loop this session currently is.

        One of :data:`SESSION_STATES`. Transitions are explicit: each
        session method that moves the loop forward (or resets it) sets
        the state it lands in, and the guards that raise
        :class:`~repro.errors.SessionError` document which states a
        method accepts.
        """
        return self._state

    def snapshot(self) -> dict:
        """A JSON-safe summary of the session's current state.

        This is the wire-level session view: everything a remote client
        (or a reconnecting dashboard) needs to re-render its controls
        without replaying the interaction history.
        """
        backend_stats = self.pipeline.backend.stats()
        snapshot: dict = {
            "state": self._state,
            "sql": self._rewriter.sql() if self._rewriter is not None else None,
            "num_rows": self._result.num_rows if self._result is not None else None,
            "columns": (
                list(self._result.column_names) if self._result is not None else []
            ),
            "selected_rows": [int(r) for r in self._selected_rows],
            "n_dprime": int(len(self._dprime)),
            "metric": self._metric.describe() if self._metric is not None else None,
            "agg_name": self._agg_name,
            "applied_predicates": [
                predicate.describe() for predicate in self.applied_predicates
            ],
            "can_redo": self._rewriter.can_redo if self._rewriter is not None else False,
            "n_ranked": len(self._report) if self._report is not None else 0,
            "timings": {
                "debug_count": self._debug_count,
                "last": dict(self._stage_timings),
                "total": dict(self._stage_totals),
            },
            "backend": backend_stats,
        }
        if "partition" in backend_stats:
            # Per-partition timing detail (block count + max/mean block
            # seconds) rides next to the stage timings so dashboards see
            # skew across blocks, not just the collapsed stage total.
            snapshot["timings"]["partition"] = dict(backend_stats["partition"])
        return snapshot

    # ------------------------------------------------------------------
    # stage 1: execute + visualize
    # ------------------------------------------------------------------

    def execute(self, sql: str) -> ResultSet:
        """Run a new query (the Query Input Form). Resets all selections."""
        result = self.db.sql(sql)
        self._rewriter = QueryRewriter(result.statement)
        self._result = result
        self._clear_selection()
        self._report = None
        self._state = "executed"
        return result

    @property
    def result(self) -> ResultSet:
        """The current query result."""
        if self._result is None:
            raise SessionError("no query executed yet; call execute(sql) first")
        return self._result

    def scatter(self, x: str | None = None, y: str | None = None) -> ScatterData:
        """The results scatterplot (group keys vs aggregate by default)."""
        return from_result(self.result, x=x, y=y)

    def render(
        self,
        x: str | None = None,
        y: str | None = None,
        width: int = 72,
        height: int = 18,
    ) -> str:
        """ASCII rendering of the results plot, highlighting S if selected."""
        scatter = self.scatter(x=x, y=y)
        highlight = np.asarray(self._selected_rows, dtype=np.int64)
        return ascii_scatter(
            scatter, width=width, height=height, highlight_keys=highlight
        )

    # ------------------------------------------------------------------
    # stage 2: select suspicious results (S)
    # ------------------------------------------------------------------

    def select_results(
        self,
        selection: Brush | Sequence[Brush] | Iterable[int],
        x: str | None = None,
        y: str | None = None,
    ) -> tuple[int, ...]:
        """Brush (or list explicitly) the suspicious output rows S."""
        result = self.result
        rows = self._resolve_selection(selection, self.scatter(x=x, y=y))
        for row in rows:
            if row < 0 or row >= result.num_rows:
                raise SessionError(f"result row {row} out of range")
        self._selected_rows = tuple(int(r) for r in rows)
        self._zoom_table = None
        self._dprime = np.empty(0, dtype=np.int64)
        self._report = None
        self._state = "results_selected"
        return self._selected_rows

    @property
    def selected_rows(self) -> tuple[int, ...]:
        """The currently selected suspicious result rows S."""
        return self._selected_rows

    # ------------------------------------------------------------------
    # stage 3: zoom + select suspicious inputs (D')
    # ------------------------------------------------------------------

    def zoom(self, x: str | None = None, y: str | None = None) -> ScatterData:
        """Zoom into the raw input tuples behind S (Figure 4, right).

        By default x is the first GROUP BY expression evaluated per tuple
        and y is the debugged aggregate's argument — i.e. exactly the
        coordinates the user was already looking at, at tuple granularity.
        """
        if not self._selected_rows:
            raise SessionError("select suspicious results before zooming")
        result = self.result
        F = result.inputs_for(list(self._selected_rows))
        self._zoom_table = F
        x_label, x_values = self._zoom_axis_x(F, x)
        y_label, y_values = self._zoom_axis_y(F, y)
        x_numeric, x_categories = _as_numeric(x_values)
        y_numeric, y_categories = _as_numeric(y_values)
        self._state = "zoomed"
        return ScatterData(
            x_label=x_label,
            y_label=y_label,
            x=x_numeric,
            y=y_numeric,
            keys=np.asarray(F.tids).copy(),
            kind="tuples",
            x_categories=x_categories,
            y_categories=y_categories,
        )

    def _zoom_axis_x(self, F: Table, x: str | None):
        result = self.result
        if x is not None:
            return x, F.column(x)
        if result.statement.group_by:
            expr = result.statement.group_by[0]
            label = result.group_key_names[0] if result.group_key_names else "key"
            return label, expr.eval(F)
        return F.schema.names[0], F.column(F.schema.names[0])

    def _zoom_axis_y(self, F: Table, y: str | None):
        if y is not None:
            return y, F.column(y)
        call = self._agg_call(self._agg_name)
        if isinstance(call.arg, Star):
            return "1", np.ones(len(F))
        return call.arg.to_sql().strip("()"), call.arg.eval(F)

    def select_inputs(
        self, selection: Brush | Sequence[Brush] | Iterable[int]
    ) -> np.ndarray:
        """Brush (or list explicitly) the suspicious input tuples D'."""
        if self._zoom_table is None:
            raise SessionError("zoom into the selected results before selecting inputs")
        if isinstance(selection, Brush) or (
            isinstance(selection, (list, tuple))
            and selection
            and isinstance(selection[0], Brush)
        ):
            scatter = self.zoom()
            tids = self._resolve_selection(selection, scatter)
        else:
            tids = np.asarray([int(t) for t in selection], dtype=np.int64)
            for tid in tids:
                if not self._zoom_table.contains_tid(int(tid)):
                    raise SessionError(f"tid {int(tid)} is not among the zoomed inputs")
        self._dprime = np.unique(tids)
        self._state = "inputs_selected"
        return self._dprime

    @property
    def dprime(self) -> np.ndarray:
        """The currently selected suspicious input tids D'."""
        return self._dprime

    # ------------------------------------------------------------------
    # stage 4: error metric + debug
    # ------------------------------------------------------------------

    def error_form(self, agg_name: str | None = None) -> list[FormOption]:
        """The error-metric options for the debugged aggregate (Figure 5)."""
        result = self.result
        if not self._selected_rows:
            raise SessionError("select suspicious results before the error form")
        agg_name = agg_name or self._default_agg_name()
        call = self._agg_call(agg_name)
        values = np.asarray(result.column(agg_name), dtype=np.float64)
        selected_mask = np.zeros(result.num_rows, dtype=bool)
        selected_mask[list(self._selected_rows)] = True
        return forms_for(
            call.func,
            selected_values=values[selected_mask],
            unselected_values=values[~selected_mask],
        )

    def set_metric(
        self, metric: ErrorMetric | str, agg_name: str | None = None, **params
    ) -> ErrorMetric:
        """Choose the error metric ε — an instance or an error-form id."""
        if isinstance(metric, str):
            options = {option.form_id: option for option in self.error_form(agg_name)}
            if metric not in options:
                raise SessionError(
                    f"unknown error form {metric!r}; offered: {sorted(options)}"
                )
            metric = options[metric].build(**params)
        self._metric = metric
        if agg_name is not None:
            self._agg_name = agg_name
        return metric

    def debug(
        self,
        agg_name: str | None = None,
        on_partial: Callable[[str, list], None] | None = None,
    ) -> DebugReport:
        """Run ranked provenance on (S, D', ε) — the 'debug!' button.

        ``on_partial(stage, ranked)`` streams intermediate ranked lists
        (post-rank, then per merge round); the returned report and the
        session's state transitions are unaffected by it.
        """
        if not self._selected_rows:
            raise SessionError("select suspicious results before debugging")
        if self._metric is None:
            raise SessionError("pick an error metric before debugging")
        if agg_name is not None:
            self._agg_name = agg_name
        report = self.pipeline.debug(
            self.result,
            list(self._selected_rows),
            self._metric,
            dprime_tids=self._dprime,
            agg_name=self._agg_name or self._default_agg_name(),
            on_partial=on_partial,
        )
        self._report = report
        self._stage_timings = dict(report.timings)
        for stage, seconds in report.timings.items():
            self._stage_totals[stage] = self._stage_totals.get(stage, 0.0) + seconds
        self._debug_count += 1
        self._state = "debugged"
        return report

    @property
    def report(self) -> DebugReport:
        """The most recent debug report."""
        if self._report is None:
            raise SessionError("no debug report yet; call debug() first")
        return self._report

    # ------------------------------------------------------------------
    # stage 5: clean (click a predicate)
    # ------------------------------------------------------------------

    def apply_predicate(self, which: int | RankedPredicate | Predicate) -> ResultSet:
        """Click a ranked predicate: rewrite the query and re-execute."""
        predicate = self._resolve_predicate(which)
        assert self._rewriter is not None
        statement = self._rewriter.apply(predicate)
        self._result = self.db.sql(statement)
        self._clear_selection()
        self._state = "executed"
        return self._result

    def undo_cleaning(self) -> ResultSet:
        """Undo the most recent cleaning and re-execute."""
        if self._rewriter is None:
            raise SessionError("no query executed yet")
        statement = self._rewriter.undo()
        self._result = self.db.sql(statement)
        self._clear_selection()
        self._state = "executed"
        return self._result

    def redo_cleaning(self) -> ResultSet:
        """Re-apply the most recently undone cleaning and re-execute."""
        if self._rewriter is None:
            raise SessionError("no query executed yet")
        statement = self._rewriter.redo()
        self._result = self.db.sql(statement)
        self._clear_selection()
        self._state = "executed"
        return self._result

    @property
    def applied_predicates(self) -> tuple[Predicate, ...]:
        """Cleanings currently applied to the query."""
        if self._rewriter is None:
            return ()
        return self._rewriter.applied

    def current_sql(self) -> str:
        """The query text as the Query Input Form currently shows it."""
        if self._rewriter is None:
            raise SessionError("no query executed yet")
        return self._rewriter.sql()

    # ------------------------------------------------------------------
    # dashboard
    # ------------------------------------------------------------------

    def dashboard(self, width: int = 72, height: int = 14) -> str:
        """The four-panel text dashboard (Figure 2's layout, in ASCII)."""
        if self._rewriter is None:
            raise SessionError("no query executed yet; call execute(sql) first")
        panels = [render_query_panel(
            self._rewriter.base_statement,
            list(self.applied_predicates),
        )]
        panels.append("")
        panels.append(self.render(width=width, height=height))
        if self._report is not None:
            panels.append("")
            panels.append(render_predicates_panel(self._report))
        return "\n".join(panels)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _clear_selection(self) -> None:
        self._selected_rows = ()
        self._zoom_table = None
        self._dprime = np.empty(0, dtype=np.int64)

    def _default_agg_name(self) -> str:
        result = self.result
        if not result.aggregate_names:
            raise SessionError("the query has no aggregate to debug")
        return self._agg_name or result.aggregate_names[0]

    def _agg_call(self, agg_name: str | None):
        from ..db.planner import plan_select

        result = self.result
        agg_name = agg_name or self._default_agg_name()
        plan = plan_select(result.statement, result.fine.base.schema)
        for spec in plan.aggs:
            if spec.output_name == agg_name:
                return spec.call
        raise SessionError(f"no aggregate output named {agg_name!r}")

    @staticmethod
    def _resolve_selection(
        selection: Brush | Sequence[Brush] | Iterable[int],
        scatter: ScatterData,
    ) -> np.ndarray:
        if isinstance(selection, Brush):
            return selection.select(scatter)
        selection = list(selection)
        if selection and isinstance(selection[0], Brush):
            return union_select(list(selection), scatter)
        return np.asarray([int(v) for v in selection], dtype=np.int64)

    def _resolve_predicate(
        self, which: int | RankedPredicate | Predicate
    ) -> Predicate:
        if isinstance(which, Predicate):
            return which
        if isinstance(which, RankedPredicate):
            return which.predicate
        report = self.report
        if which < 0 or which >= len(report):
            raise SessionError(
                f"predicate index {which} out of range (report has {len(report)})"
            )
        return report[which].predicate
