"""ASCII rendering of scatterplots and dashboard panels.

The original frontend is a web dashboard; in a library reproduction the
equivalent artifact is a terminal rendering that makes the walkthrough
(and the examples) *visibly* tell the paper's story: spikes, negative
dips, and highlighted selections.
"""

from __future__ import annotations

import numpy as np

from .scatter import ScatterData


def ascii_scatter(
    scatter: ScatterData,
    width: int = 72,
    height: int = 18,
    highlight_keys: np.ndarray | list[int] | None = None,
    title: str | None = None,
) -> str:
    """Render points on a character grid.

    Ordinary points draw as ``·``, multiple coincident points as ``o``,
    dense cells as ``@``; highlighted points (e.g. the user's S or D'
    selection) always draw as ``#``.
    """
    finite = np.isfinite(scatter.x) & np.isfinite(scatter.y)
    xs = scatter.x[finite]
    ys = scatter.y[finite]
    keys = scatter.keys[finite]
    lines: list[str] = []
    if title:
        lines.append(title)
    if len(xs) == 0:
        lines.append("(no data)")
        return "\n".join(lines)
    xmin, xmax = float(xs.min()), float(xs.max())
    ymin, ymax = float(ys.min()), float(ys.max())
    xspan = xmax - xmin or 1.0
    yspan = ymax - ymin or 1.0
    grid = [[" "] * width for _ in range(height)]
    counts = np.zeros((height, width), dtype=np.int64)
    highlight = set(int(k) for k in highlight_keys) if highlight_keys is not None else set()
    highlighted_cells: set[tuple[int, int]] = set()
    for x, y, key in zip(xs, ys, keys):
        col = int((x - xmin) / xspan * (width - 1))
        row = height - 1 - int((y - ymin) / yspan * (height - 1))
        counts[row][col] += 1
        if int(key) in highlight:
            highlighted_cells.add((row, col))
    for row in range(height):
        for col in range(width):
            count = counts[row][col]
            if count == 0:
                continue
            if (row, col) in highlighted_cells:
                grid[row][col] = "#"
            elif count == 1:
                grid[row][col] = "·"
            elif count < 5:
                grid[row][col] = "o"
            else:
                grid[row][col] = "@"
    left_labels = _axis_labels(ymin, ymax, height)
    label_width = max(len(label) for label in left_labels)
    for row in range(height):
        lines.append(f"{left_labels[row]:>{label_width}} |" + "".join(grid[row]))
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = _x_axis_line(xmin, xmax, width)
    lines.append(" " * label_width + "  " + x_axis)
    lines.append(
        " " * label_width
        + f"  x: {scatter.x_label}   y: {scatter.y_label}"
        + ("   # = selected" if highlight else "")
    )
    return "\n".join(lines)


def _axis_labels(ymin: float, ymax: float, height: int) -> list[str]:
    labels = [""] * height
    labels[0] = _fmt(ymax)
    labels[height // 2] = _fmt((ymin + ymax) / 2)
    labels[height - 1] = _fmt(ymin)
    return labels


def _x_axis_line(xmin: float, xmax: float, width: int) -> str:
    left = _fmt(xmin)
    mid = _fmt((xmin + xmax) / 2)
    right = _fmt(xmax)
    pad_total = width - len(left) - len(mid) - len(right)
    pad = max(pad_total // 2, 1)
    return left + " " * pad + mid + " " * max(pad_total - pad, 1) + right


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.4g}"


def render_predicates_panel(report, max_rows: int = 8) -> str:
    """The right-hand 'Ranked Predicates' panel of the dashboard."""
    lines = ["Ranked Predicates (click to clean)", "=" * 48]
    if not len(report):
        lines.append("(none — adjust your selection or metric)")
    for rank, ranked in enumerate(report.top(max_rows), start=1):
        lines.append(
            f"[{rank}] {ranked.predicate.describe()}"
        )
        lines.append(
            f"     removes {ranked.n_matched} tuples, "
            f"error -{100 * ranked.relative_error_reduction:.0f}%, "
            f"score {ranked.score:.3f}"
        )
    return "\n".join(lines)


def render_query_panel(statement, applied: list) -> str:
    """The query-input panel with currently applied cleanings (Figure 3)."""
    lines = ["Query", "=" * 48, statement.to_sql()]
    if applied:
        lines.append("")
        lines.append("Applied cleanings:")
        for index, predicate in enumerate(applied, start=1):
            lines.append(f"  {index}. NOT ({predicate.describe()})")
    return "\n".join(lines)
