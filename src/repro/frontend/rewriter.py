"""Clean-as-you-query: rewriting the query when predicates are clicked.

Paper §2.2.1 (4): *"The user can click on a hypothesis to see the result
of the original query on a version of the database that does not contain
tuples satisfying the hypothesis. The visualization and query
automatically update."*

Applying a predicate conjoins ``NOT (predicate)`` onto the statement's
WHERE clause; undoing removes exactly that conjunct. The rewriter keeps
the application order so cleanings undo LIFO.
"""

from __future__ import annotations

from ..db.predicate import Predicate
from ..db.sqlparse.ast_nodes import SelectStatement
from ..errors import SessionError


class QueryRewriter:
    """Tracks a base statement plus a stack of applied cleanings.

    Undone cleanings are kept on a redo stack; applying a *new* predicate
    clears it (the usual editor semantics).
    """

    def __init__(self, statement: SelectStatement):
        self._base = statement
        self._applied: list[Predicate] = []
        self._undone: list[Predicate] = []

    @property
    def base_statement(self) -> SelectStatement:
        """The statement as originally written by the user."""
        return self._base

    @property
    def applied(self) -> tuple[Predicate, ...]:
        """Currently applied cleaning predicates, oldest first."""
        return tuple(self._applied)

    def current_statement(self) -> SelectStatement:
        """The base statement with every applied cleaning conjoined."""
        statement = self._base
        for predicate in self._applied:
            statement = statement.with_extra_filter(predicate.negated_expr())
        return statement

    def apply(self, predicate: Predicate) -> SelectStatement:
        """Apply one more cleaning predicate and return the new statement."""
        if predicate.is_true:
            raise SessionError("cannot clean with the always-true predicate")
        if predicate in self._applied:
            raise SessionError(f"predicate already applied: {predicate.describe()}")
        self._applied.append(predicate)
        self._undone.clear()
        return self.current_statement()

    def undo(self) -> SelectStatement:
        """Remove the most recently applied cleaning (redoable)."""
        if not self._applied:
            raise SessionError("no applied predicate to undo")
        self._undone.append(self._applied.pop())
        return self.current_statement()

    def redo(self) -> SelectStatement:
        """Re-apply the most recently undone cleaning."""
        if not self._undone:
            raise SessionError("no undone predicate to redo")
        self._applied.append(self._undone.pop())
        return self.current_statement()

    @property
    def can_redo(self) -> bool:
        """Whether a redo is available."""
        return bool(self._undone)

    def reset(self) -> SelectStatement:
        """Drop every applied cleaning (and the redo stack)."""
        self._applied.clear()
        self._undone.clear()
        return self.current_statement()

    def sql(self) -> str:
        """The current statement as SQL text (what the query form shows)."""
        return self.current_statement().to_sql()
