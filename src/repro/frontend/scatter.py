"""Scatterplot data: what the dashboard plots and what brushes select from.

Paper §2.2.1 (2): *"Query results are automatically rendered as a
scatterplot. When the query contains a single group-by attribute, the
group keys are plotted on the x-axis and the aggregate values on the
y-axis. If the query contains a multi-attribute group-by, the user can
pick two group-by attributes to plot against each other."* The paper
also mentions investigating principal-component projections for
multi-attribute group-bys; :func:`pca_projection` implements that.

Two kinds of plots exist:

* ``results`` — each point is one output row of the aggregate query
  (keys are result-row indexes, what S selections contain);
* ``tuples`` — each point is one raw input tuple (keys are tids, what
  D' selections contain). This is the "zoom" view of Figure 4 (right).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.result import ResultSet
from ..db.table import Table
from ..errors import SessionError


@dataclass(frozen=True)
class ScatterData:
    """A plotted point set with numeric coordinates and stable keys."""

    x_label: str
    y_label: str
    x: np.ndarray
    y: np.ndarray
    #: Result-row indexes (kind="results") or tids (kind="tuples").
    keys: np.ndarray
    kind: str
    #: When x (resp. y) came from a categorical column, the category
    #: labels such that ``x[i] == categories.index(label)``.
    x_categories: tuple | None = None
    y_categories: tuple | None = None

    def __len__(self) -> int:
        return len(self.keys)

    def bounds(self) -> tuple[float, float, float, float]:
        """(xmin, xmax, ymin, ymax) over finite points."""
        finite = np.isfinite(self.x) & np.isfinite(self.y)
        if not finite.any():
            return (0.0, 1.0, 0.0, 1.0)
        return (
            float(self.x[finite].min()),
            float(self.x[finite].max()),
            float(self.y[finite].min()),
            float(self.y[finite].max()),
        )


def _as_numeric(values: np.ndarray) -> tuple[np.ndarray, tuple | None]:
    """Map a column to numeric plotting positions (categoricals to codes)."""
    if values.dtype == object:
        categories = tuple(sorted({v for v in values if v is not None}, key=repr))
        index = {value: i for i, value in enumerate(categories)}
        codes = np.array(
            [index.get(v, -1) for v in values], dtype=np.float64
        )
        codes[codes < 0] = np.nan
        return codes, categories
    return np.asarray(values, dtype=np.float64), None


def from_result(
    result: ResultSet, x: str | None = None, y: str | None = None
) -> ScatterData:
    """Plot query results: group key on x, aggregate value on y.

    For multi-attribute group-bys pass explicit ``x``/``y`` output column
    names (either two group keys, per the paper, or a key and another
    aggregate).
    """
    if x is None:
        if not result.group_key_names:
            raise SessionError("result has no group keys; pass x explicitly")
        x = result.group_key_names[0]
    if y is None:
        if not result.aggregate_names:
            raise SessionError("result has no aggregates; pass y explicitly")
        y = result.aggregate_names[0]
    x_values, x_categories = _as_numeric(result.column(x))
    y_values, y_categories = _as_numeric(result.column(y))
    return ScatterData(
        x_label=x,
        y_label=y,
        x=x_values,
        y=y_values,
        keys=np.arange(result.num_rows, dtype=np.int64),
        kind="results",
        x_categories=x_categories,
        y_categories=y_categories,
    )


def from_tuples(table: Table, x: str, y: str) -> ScatterData:
    """Plot raw tuples (the zoom view); keys are the tuples' tids."""
    x_values, x_categories = _as_numeric(table.column(x))
    y_values, y_categories = _as_numeric(table.column(y))
    return ScatterData(
        x_label=x,
        y_label=y,
        x=x_values,
        y=y_values,
        keys=np.asarray(table.tids).copy(),
        kind="tuples",
        x_categories=x_categories,
        y_categories=y_categories,
    )


def pca_projection(
    result: ResultSet, columns: list[str] | None = None
) -> ScatterData:
    """Project multi-attribute group-by results onto their two largest
    principal components (the paper's 'currently investigating' idea).

    Categorical key columns are code-mapped before projection; columns
    are standardized so no single attribute dominates.
    """
    if columns is None:
        columns = list(result.group_key_names)
    if len(columns) < 2:
        raise SessionError("PCA projection needs at least two columns")
    mapped = []
    for name in columns:
        values, __ = _as_numeric(result.column(name))
        mapped.append(values)
    X = np.column_stack(mapped)
    X = np.nan_to_num(X, nan=0.0)
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std = np.where(std > 0, std, 1.0)
    Z = (X - mean) / std
    __, __, vt = np.linalg.svd(Z, full_matrices=False)
    components = Z @ vt[:2].T
    if components.shape[1] < 2:
        components = np.column_stack([components[:, 0], np.zeros(len(components))])
    return ScatterData(
        x_label="pc1",
        y_label="pc2",
        x=components[:, 0],
        y=components[:, 1],
        keys=np.arange(result.num_rows, dtype=np.int64),
        kind="results",
    )
