"""``repro.frontend`` — the interactive interface substitute.

A programmatic + ASCII-rendered equivalent of the DBWipes web dashboard:
scatter data, brush selections, error forms, query rewriting, and the
:class:`DBWipesSession` state machine that enforces the Figure-1 loop.
"""

from .forms import FormOption, forms_for
from .render import ascii_scatter, render_predicates_panel, render_query_panel
from .rewriter import QueryRewriter
from .scatter import ScatterData, from_result, from_tuples, pca_projection
from .selection import Brush, union_select
from .session import SESSION_STATES, DBWipesSession

__all__ = [
    "Brush",
    "DBWipesSession",
    "SESSION_STATES",
    "FormOption",
    "QueryRewriter",
    "ScatterData",
    "ascii_scatter",
    "forms_for",
    "from_result",
    "from_tuples",
    "pca_projection",
    "render_predicates_panel",
    "render_query_panel",
    "union_select",
]
