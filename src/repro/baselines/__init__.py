"""``repro.baselines`` — the comparators DBWipes is evaluated against.

Fine/coarse-grained classic provenance, pre-defined ranking criteria,
and responsibility-style causal ranking. All return tuple-level
explanations (:class:`TupleExplanation`); the Q1 benchmark compares
their precision/recall against DBWipes' predicate explanations.
"""

from .causality import responsibility_explanation
from .fine_grained import (
    TupleExplanation,
    coarse_grained_explanation,
    fine_grained_explanation,
)
from .rules_baseline import predefined_criteria_explanation

__all__ = [
    "TupleExplanation",
    "coarse_grained_explanation",
    "fine_grained_explanation",
    "predefined_criteria_explanation",
    "responsibility_explanation",
]
