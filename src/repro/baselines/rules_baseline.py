"""Pre-defined ranking criteria baseline (the paper's limitation 1).

Paper §1: *"it is possible to construct pre-defined ranking criteria for
certain aggregate operators (e.g., for an average that is higher than
expected, the inputs that bring the average down the most are the
largest inputs), [but] the user's notion of error is often different
than the pre-defined criteria."*

This baseline implements those fixed criteria. It ranks the inputs of
each selected group by a rule keyed only on the aggregate function and
the metric direction — no user examples, no learned predicates:

* ``avg`` / ``sum`` — largest values first when the result is too high,
  smallest first when too low;
* ``stddev`` / ``var`` — largest |value − group mean| first;
* ``max`` — largest first; ``min`` — smallest first;
* ``count`` — all inputs tied (removal of any one is equivalent).

Its top-k cut is the tuple-level explanation DBWipes is compared with.
"""

from __future__ import annotations

import numpy as np

from ..core.preprocessor import PreprocessResult
from ..errors import PipelineError
from .fine_grained import TupleExplanation


def predefined_criteria_explanation(pre: PreprocessResult) -> TupleExplanation:
    """Rank F's tuples by the fixed criterion for this aggregate."""
    agg = pre.aggregate.name
    direction = getattr(pre.metric, "direction", +1) or +1
    all_tids: list[np.ndarray] = []
    all_scores: list[np.ndarray] = []
    for values, tids in zip(pre.group_values, pre.group_tids):
        values = np.asarray(values, dtype=np.float64)
        scores = _criterion_scores(agg, values, direction)
        all_tids.append(np.asarray(tids, dtype=np.int64))
        all_scores.append(scores)
    tids = np.concatenate(all_tids) if all_tids else np.empty(0, dtype=np.int64)
    scores = np.concatenate(all_scores) if all_scores else np.empty(0)
    return TupleExplanation(
        tids=tids, label=f"predefined criteria ({agg})", scores=scores
    )


def _criterion_scores(agg: str, values: np.ndarray, direction: int) -> np.ndarray:
    clean = np.nan_to_num(values, nan=0.0)
    if agg in ("avg", "sum", "max"):
        return direction * clean
    if agg == "min":
        return -direction * clean
    if agg in ("stddev", "var"):
        center = np.nanmean(values) if len(values) else 0.0
        return np.abs(clean - center)
    if agg == "count":
        return np.zeros(len(values))
    raise PipelineError(f"no predefined criterion for aggregate {agg!r}")
