"""Classic provenance baselines: what DBWipes improves upon.

The paper's introduction contrasts ranked provenance with the two
existing provenance classes:

* **fine-grained** provenance answers "which inputs produced these
  outputs" by returning *all* of them — for an aggregate over thousands
  of tuples that is thousands of tuples, "which has very low precision";
* **coarse-grained** provenance returns the operator graph, which is
  "uninformative because every input went through the same sequence of
  operators".

These baselines exist so the Q1 benchmark can measure exactly that
precision gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.result import ResultSet


@dataclass(frozen=True)
class TupleExplanation:
    """A tuple-level explanation: a set of tids with an optional ranking."""

    tids: np.ndarray
    label: str
    #: Parallel ranking scores (higher = more suspicious); None = unranked.
    scores: np.ndarray | None = None

    @property
    def size(self) -> int:
        """Number of tuples in the explanation."""
        return len(self.tids)

    def top(self, k: int) -> np.ndarray:
        """The k most suspicious tids (arbitrary prefix when unranked)."""
        if self.scores is None:
            return self.tids[:k]
        order = np.argsort(-self.scores, kind="stable")
        return self.tids[order][:k]


def fine_grained_explanation(
    result: ResultSet, selected_rows: list[int]
) -> TupleExplanation:
    """The classic fine-grained answer: every input tuple of S, unranked."""
    tids = result.fine.lineage_many(selected_rows)
    return TupleExplanation(tids=tids, label="fine-grained provenance")


def coarse_grained_explanation(result: ResultSet) -> str:
    """The classic coarse-grained answer: the operator pipeline.

    Returned as text because that is all it is — identical for every
    output row, with no pointer to any specific input.
    """
    return result.coarse.describe()
