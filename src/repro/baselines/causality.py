"""Responsibility-style ranking inspired by causality in databases.

The related-work section cites Meliou et al.: an input X is a cause if
some contingency set Γ exists such that altering {X} ∪ Γ fixes the
output, and X's *responsibility* is ``1 / (1 + min_Γ |Γ|)``.

Meliou et al. answer this for boolean expressions with a SAT solver; for
numeric aggregates the minimal contingency set is approximated greedily
here, which is exact for monotone per-group metrics (too-high / too-low)
with avg/sum and a good heuristic otherwise:

for each tuple t in group g, remove tuples from g most-influential
first; the responsibility of t is ``1 / k`` where k is the size of the
smallest influence-greedy prefix *containing t* that drives the group's
error contribution to zero (∞ prefix → responsibility 0... encoded as
``1/(1+n)``).
"""

from __future__ import annotations

import numpy as np

from ..core.preprocessor import PreprocessResult
from .fine_grained import TupleExplanation


def responsibility_explanation(
    pre: PreprocessResult, tolerance: float = 1e-9
) -> TupleExplanation:
    """Rank F's tuples by approximate causal responsibility."""
    all_tids: list[np.ndarray] = []
    all_scores: list[np.ndarray] = []
    for group in pre.influence.groups:
        scores = _group_responsibility(
            group.values, group.influence, pre, tolerance
        )
        all_tids.append(group.tids)
        all_scores.append(scores)
    tids = np.concatenate(all_tids) if all_tids else np.empty(0, dtype=np.int64)
    scores = np.concatenate(all_scores) if all_scores else np.empty(0)
    return TupleExplanation(tids=tids, label="causal responsibility", scores=scores)


def _group_responsibility(
    values: np.ndarray,
    influence: np.ndarray,
    pre: PreprocessResult,
    tolerance: float,
) -> np.ndarray:
    n = len(values)
    scores = np.zeros(n, dtype=np.float64)
    if n == 0:
        return scores
    # Tuples with non-positive influence cannot be part of a minimal fix.
    order = np.argsort(-influence, kind="stable")
    # Find the smallest greedy prefix that fixes this group.
    fix_size = None
    remove_mask = np.zeros(n, dtype=bool)
    for k, position in enumerate(order, start=1):
        if influence[position] <= 0:
            break
        remove_mask[position] = True
        new_value = pre.aggregate.compute_without(values, remove_mask)
        phi = pre.metric.per_value_error(np.array([new_value]))[0]
        if phi <= tolerance:
            fix_size = k
            break
    if fix_size is None:
        # The group cannot be fixed by deletions alone: everyone gets the
        # floor responsibility 1/(1+n).
        scores[:] = 1.0 / (1.0 + n)
        return scores
    prefix = order[:fix_size]
    # Tuples inside the minimal prefix: contingency is the rest of the
    # prefix, |Γ| = fix_size − 1. Outside: swapping them in needs the whole
    # prefix as contingency, |Γ| = fix_size (only if they help at all).
    scores[prefix] = 1.0 / fix_size
    outside = np.setdiff1d(np.arange(n), prefix)
    helps = influence[outside] > 0
    scores[outside[helps]] = 1.0 / (1.0 + fix_size)
    scores[outside[~helps]] = 1.0 / (1.0 + n)
    return scores
