"""The conference-demo driver: ``python -m repro``.

The paper's §3 invites attendees to "explore anomalies in campaign
donations ... and in readings from a 54-node sensor deployment", with
provided bootstrap queries. This CLI is that experience in a terminal:

* ``python -m repro fec`` / ``python -m repro intel`` — load a dataset
  with its bootstrap query and start the interactive loop;
* ``python -m repro fec --script`` — run the full §3.2 walkthrough
  non-interactively (useful for demos, docs, and tests);
* ``python -m repro serve`` — boot the multi-session TCP service
  (options: ``--host``, ``--port``, ``--max-sessions``, ``--ttl``,
  ``--workers``, ``--backend``, ``--partitions``, ``--data-dir``
  for the durable storage tier, ``--slow-threshold``; ``--async``
  boots the admission-controlled asyncio gateway with
  ``--max-inflight`` (a count, or ``auto`` to self-tune),
  ``--max-queue``, ``--exec-threads``, ``--rate``, ``--burst``);
* ``python -m repro store`` — manage the durable columnar tier:
  ``store import <dataset> --data-dir D [--chunk-rows N]`` persists a
  demo dataset as memory-mapped table directories; ``store inspect
  --data-dir D`` prints the layout from the manifests alone;
* ``python -m repro connect`` — the same interactive loop, but against
  a running server (``--host``, ``--port``, ``--session``,
  ``--dataset``, ``--script``);
* ``python -m repro metrics`` — cluster-merged telemetry from a running
  server, Prometheus text by default (``--host``, ``--port``,
  ``--json``);
* ``python -m repro drain`` — rolling-restart one worker of a running
  routed server: ``drain --worker N [--deadline S] [--restart]
  [--host H] [--port P]`` drains in-flight work, flushes journals,
  hands sessions to replicas, and optionally restarts the process.

Interactive commands mirror the dashboard's controls::

    sql <query>         run a new aggregate query
    show                render the current scatterplot
    select y> <v>       brush results with y above v   (also: y<, x=, row <i>)
    zoom                zoom into the selected results' input tuples
    inputs y> <v>       brush zoomed tuples as D' (also: y<)
    forms               list error-metric options for the debugged aggregate
    metric <id> [v]     pick the error metric (threshold/expected = v)
    debug               compute ranked predicates
    apply <rank>        click a predicate: rewrite the query and re-execute
    undo / redo         undo / redo the last cleaning
    query               print the current SQL
    help                this text
    quit                leave
"""

from __future__ import annotations

import math
import sys
from typing import Callable, Iterable, TextIO

from .data import (
    FECConfig,
    IntelConfig,
    generate_fec,
    generate_intel,
    walkthrough_query,
)
from .db import Database
from .errors import ReproError
from .frontend import Brush, DBWipesSession

#: Bootstrap queries, as the demo "will provide several queries ... to
#: bootstrap their investigations".
BOOTSTRAP_QUERIES = {
    "fec": walkthrough_query("MCCAIN"),
    "intel": (
        "SELECT minute / 30 AS window, avg(temp) AS avg_temp, "
        "stddev(temp) AS std_temp FROM readings "
        "GROUP BY minute / 30 ORDER BY window"
    ),
}

#: Scripted walkthroughs replaying §3.2 (fec) and Figures 4-6 (intel).
SCRIPTS = {
    "fec": [
        "show",
        "select y< 0",
        "zoom",
        "inputs y< 0",
        "forms",
        "metric too_low 0",
        "debug",
        "apply 1",
        "show",
        "query",
    ],
    "intel": [
        "show",
        "select y> 7 std_temp",
        "zoom",
        "inputs y> 100",
        "forms",
        "metric too_high",
        "debug",
        "apply 1",
        "query",
    ],
}


def load_dataset(name: str) -> Database:
    """Build the named demo database (``fec`` or ``intel``)."""
    db = Database()
    if name == "fec":
        table, __ = generate_fec(FECConfig())
    elif name == "intel":
        table, __ = generate_intel(
            IntelConfig(failure_onset_frac=0.7)
        )
    else:
        raise ReproError(f"unknown dataset {name!r}; choose 'fec' or 'intel'")
    db.register(table)
    return db


class BaseShell:
    """Line-command dispatch shared by the local and remote shells.

    Subclasses fill ``self._commands`` with ``name -> handler(args)``;
    everything about reading, echoing, dispatching, and error rendering
    lives here so the two shells cannot drift.
    """

    def __init__(self, out: TextIO | None = None):
        self.out = out or sys.stdout
        self._debug_agg: str | None = None
        self._commands: dict[str, Callable[[list[str]], None]] = {}

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    # -- command dispatch ------------------------------------------------

    def run_line(self, line: str) -> bool:
        """Execute one command line; returns False when asked to quit."""
        line = line.strip()
        if not line or line.startswith("#"):
            return True
        parts = line.split()
        name, args = parts[0].lower(), parts[1:]
        if name in ("quit", "exit"):
            return False
        handler = self._commands.get(name)
        if handler is None:
            self._print(f"unknown command {name!r}; try 'help'")
            return True
        try:
            handler(args)
        except ReproError as error:
            self._print(f"error: {error}")
        return True

    def run(self, lines: Iterable[str], echo: bool = True) -> None:
        """Run a sequence of command lines (the --script mode)."""
        for line in lines:
            if echo:
                self._print(f"dbwipes> {line}")
            if not self.run_line(line):
                break

    def repl(self, stdin: TextIO | None = None) -> None:
        """Read commands until EOF or ``quit``."""
        stdin = stdin or sys.stdin
        while True:
            self.out.write("dbwipes> ")
            self.out.flush()
            line = stdin.readline()
            if not line:
                break
            if not self.run_line(line):
                break

    def _cmd_help(self, args: list[str]) -> None:
        self._print(__doc__ or "")

    @staticmethod
    def _parse_brush(args: list[str]) -> tuple[Brush | list[int], list[str]]:
        """Parse ``y> 5`` / ``y< 0`` / ``x= 3`` / ``row 1 2 3`` selections."""
        if not args:
            raise ReproError("selection needs an argument; e.g. 'select y> 10'")
        head = args[0]
        if head == "row":
            return [int(a) for a in args[1:]], []
        if head in ("y>", "y<", "x=") and len(args) >= 2:
            value = float(args[1])
            rest = args[2:]
            if head == "y>":
                return Brush.above(value), rest
            if head == "y<":
                return Brush.below(value), rest
            return Brush.over_x(value, value), rest
        raise ReproError(f"cannot parse selection {' '.join(args)!r}")


class DemoShell(BaseShell):
    """A line-command shell over a :class:`DBWipesSession`."""

    def __init__(self, db: Database, out: TextIO | None = None):
        super().__init__(out)
        self.session = DBWipesSession(db)
        self._commands = {
            "sql": self._cmd_sql,
            "show": self._cmd_show,
            "select": self._cmd_select,
            "zoom": self._cmd_zoom,
            "inputs": self._cmd_inputs,
            "forms": self._cmd_forms,
            "metric": self._cmd_metric,
            "debug": self._cmd_debug,
            "apply": self._cmd_apply,
            "undo": self._cmd_undo,
            "redo": self._cmd_redo,
            "query": self._cmd_query,
            "help": self._cmd_help,
        }

    # -- commands ----------------------------------------------------------

    def _cmd_sql(self, args: list[str]) -> None:
        query = " ".join(args)
        result = self.session.execute(query)
        self._debug_agg = None
        self._print(f"{result.num_rows} rows")
        self._print(result.to_text(max_rows=8))

    def _cmd_show(self, args: list[str]) -> None:
        y = args[0] if args else None
        self._print(self.session.render(y=y, height=14))

    def _cmd_select(self, args: list[str]) -> None:
        brush, rest = self._parse_brush(args)
        y_axis = rest[0] if rest else None
        if y_axis:
            rows = self.session.select_results(brush, y=y_axis)
            self._debug_agg = y_axis
        else:
            rows = self.session.select_results(brush)
        self._print(f"selected {len(rows)} suspicious results: {list(rows)[:12]}")

    def _cmd_zoom(self, args: list[str]) -> None:
        scatter = self.session.zoom()
        self._print(
            f"zoomed into {len(scatter)} input tuples "
            f"(x: {scatter.x_label}, y: {scatter.y_label})"
        )

    def _cmd_inputs(self, args: list[str]) -> None:
        brush, __ = self._parse_brush(args)
        tids = self.session.select_inputs(brush)
        self._print(f"selected {len(tids)} suspicious inputs as D'")

    def _cmd_forms(self, args: list[str]) -> None:
        for option in self.session.error_form(self._debug_agg):
            defaults = f"  (default {option.defaults})" if option.defaults else ""
            self._print(f"  {option.form_id:10s} {option.label}{defaults}")

    def _cmd_metric(self, args: list[str]) -> None:
        if not args:
            self._print("usage: metric <form_id> [value]")
            return
        form_id = args[0]
        params = {}
        if len(args) > 1:
            key = "expected" if form_id == "not_equal" else "threshold"
            params[key] = float(args[1])
        metric = self.session.set_metric(form_id, agg_name=self._debug_agg,
                                         **params)
        self._print(f"metric: {metric.describe()}")

    def _cmd_debug(self, args: list[str]) -> None:
        report = self.session.debug(self._debug_agg)
        self._print(report.to_text(max_rows=8))

    def _cmd_apply(self, args: list[str]) -> None:
        rank = int(args[0]) if args else 1
        result = self.session.apply_predicate(rank - 1)
        predicate = self.session.applied_predicates[-1]
        self._print(f"applied: NOT ({predicate.describe()})")
        self._print(f"{result.num_rows} rows after cleaning")

    def _cmd_undo(self, args: list[str]) -> None:
        self.session.undo_cleaning()
        self._print("undone")

    def _cmd_redo(self, args: list[str]) -> None:
        self.session.redo_cleaning()
        self._print("redone")

    def _cmd_query(self, args: list[str]) -> None:
        self._print(self.session.current_sql())


class RemoteShell(BaseShell):
    """The :class:`DemoShell` experience over a live service socket.

    Same command names; every line becomes one wire request through a
    :class:`~repro.service.client.ServiceClient`.
    """

    def __init__(self, client, out: TextIO | None = None):
        super().__init__(out)
        self.client = client
        self._commands = {
            "sql": self._cmd_sql,
            "show": self._cmd_show,
            "select": self._cmd_select,
            "zoom": self._cmd_zoom,
            "inputs": self._cmd_inputs,
            "forms": self._cmd_forms,
            "metric": self._cmd_metric,
            "debug": self._cmd_debug,
            "apply": self._cmd_apply,
            "undo": self._cmd_undo,
            "redo": self._cmd_redo,
            "query": self._cmd_query,
            "snapshot": self._cmd_snapshot,
            "stats": self._cmd_stats,
            "metrics": self._cmd_metrics,
            "trace": self._cmd_trace,
            "help": self._cmd_help,
        }

    # -- commands ----------------------------------------------------------

    @classmethod
    def _parse_wire_brush(cls, args: list[str]) -> tuple[dict | list[int], list[str]]:
        """Parse the shell's brush syntax into wire selections."""
        selection, rest = cls._parse_brush(args)
        if isinstance(selection, list):
            return selection, rest
        def bound(value: float) -> float | None:
            return None if not math.isfinite(value) else value

        return (
            {
                "x0": bound(selection.x0),
                "x1": bound(selection.x1),
                "y0": bound(selection.y0),
                "y1": bound(selection.y1),
            },
            rest,
        )

    def _cmd_sql(self, args: list[str]) -> None:
        result = self.client.execute(" ".join(args), max_rows=8)
        self._debug_agg = None
        self._print(f"{result['num_rows']} rows")
        for row in result["rows"]:
            self._print("  " + "  ".join(str(v) for v in row))

    def _cmd_show(self, args: list[str]) -> None:
        y = args[0] if args else None
        self._print(self.client.render(height=14, y=y))

    def _cmd_select(self, args: list[str]) -> None:
        selection, rest = self._parse_wire_brush(args)
        y_axis = rest[0] if rest else None
        if y_axis:
            self._debug_agg = y_axis
        kwargs = {"rows": selection} if isinstance(selection, list) else {
            "brush": selection
        }
        rows = self.client.select_results(y=y_axis, **kwargs)
        self._print(f"selected {len(rows)} suspicious results: {rows[:12]}")

    def _cmd_zoom(self, args: list[str]) -> None:
        scatter = self.client.zoom()
        self._print(
            f"zoomed into {scatter['n']} input tuples "
            f"(x: {scatter['x_label']}, y: {scatter['y_label']})"
        )

    def _cmd_inputs(self, args: list[str]) -> None:
        selection, __ = self._parse_wire_brush(args)
        kwargs = {"tids": selection} if isinstance(selection, list) else {
            "brush": selection
        }
        tids = self.client.select_inputs(**kwargs)
        self._print(f"selected {len(tids)} suspicious inputs as D'")

    def _cmd_forms(self, args: list[str]) -> None:
        for option in self.client.error_form(self._debug_agg):
            defaults = f"  (default {option['defaults']})" if option["defaults"] else ""
            self._print(f"  {option['form_id']:10s} {option['label']}{defaults}")

    def _cmd_metric(self, args: list[str]) -> None:
        if not args:
            self._print("usage: metric <form_id> [value]")
            return
        form_id = args[0]
        params = {}
        if len(args) > 1:
            key = "expected" if form_id == "not_equal" else "threshold"
            params[key] = float(args[1])
        metric = self.client.set_metric(form_id, agg=self._debug_agg, **params)
        self._print(f"metric: {metric}")

    def _cmd_debug(self, args: list[str]) -> None:
        report = self.client.debug(self._debug_agg, max_rows=8)
        self._print(
            f"Ranked predicates — {report['metric']} "
            f"(eps = {report['epsilon']:.4g})"
        )
        for rank, ranked in enumerate(report["predicates"], start=1):
            self._print(
                f"{rank:2d}. {ranked['predicate']}  "
                f"[score={ranked['score']:.3f} "
                f"Δε={ranked['error_reduction']:.3g}]"
            )

    def _cmd_apply(self, args: list[str]) -> None:
        rank = int(args[0]) if args else 1
        applied = self.client.apply(rank - 1)
        self._print(f"applied: NOT ({applied['applied']})")
        self._print(f"{applied['result']['num_rows']} rows after cleaning")

    def _cmd_undo(self, args: list[str]) -> None:
        self.client.undo()
        self._print("undone")

    def _cmd_redo(self, args: list[str]) -> None:
        self.client.redo()
        self._print("redone")

    def _cmd_query(self, args: list[str]) -> None:
        self._print(self.client.sql())

    def _cmd_snapshot(self, args: list[str]) -> None:
        for key, value in self.client.snapshot().items():
            self._print(f"  {key}: {value}")

    def _cmd_stats(self, args: list[str]) -> None:
        for key, value in self.client.stats().items():
            self._print(f"  {key}: {value}")

    def _cmd_metrics(self, args: list[str]) -> None:
        from .obs import render_prometheus

        result = self.client.metrics()
        self._print(render_prometheus(result["merged"]).rstrip())

    def _cmd_trace(self, args: list[str]) -> None:
        from .obs import render_tree

        trace_id = args[0] if args else self.client.last_trace
        result = self.client.trace(trace_id)
        if not result.get("trace_id"):
            self._print("no trace recorded yet; run a command first")
            return
        self._print(f"trace {result['trace_id']}")
        self._print(render_tree(result["tree"]).rstrip())

    def _cmd_help(self, args: list[str]) -> None:
        self._print(__doc__ or "")


def _flag_value(argv: list[str], name: str, default: str) -> str:
    """The value of ``--name value`` in argv (last one wins)."""
    value = default
    for i, arg in enumerate(argv):
        if arg == name and i + 1 < len(argv):
            value = argv[i + 1]
    return value


def serve_main(argv: list[str]) -> int:
    """``python -m repro serve`` — boot the multi-session service.

    ``--workers N`` (N >= 1) serves from N worker processes behind the
    consistent-hash router instead of one in-process session manager;
    ``--backend`` / ``--partitions`` pick the execution backend every
    session's pipeline uses (``partitioned`` splits the influence pass
    into ``--partitions`` row blocks — byte-identical results).
    ``--slow-threshold S`` marks requests slower than S seconds in the
    slow-request log (exported via the env so workers inherit it).
    ``--data-dir D`` makes the catalog durable: datasets persist as
    memory-mapped table directories under D and preprocess artifacts
    under ``D/preprocess``, so a restarted server answers its first
    ``debug()`` warm (exported via ``REPRO_DATA_DIR`` so workers
    inherit it).

    ``--async`` boots the asyncio gateway instead of the threaded
    server: same protocol, plus admission control (``--max-inflight`` /
    ``--max-queue``, shedding excess load with ``ServerBusy`` +
    ``retry_after``), per-connection token-bucket rate limiting
    (``--rate`` / ``--burst`` heavy commands per second), a bounded
    executor (``--exec-threads``), and streamed partial ``debug``
    frames (``args: {"stream": true}``).
    """
    import os

    from .core.backend import BACKENDS
    from .core.pipeline import PipelineConfig
    from .obs import set_slow_threshold
    from .service import AsyncDBWipesServer, DBWipesServer, SessionManager
    from .service.cache import DATA_DIR_ENV

    try:
        host = _flag_value(argv, "--host", "127.0.0.1")
        port = int(_flag_value(argv, "--port", "8642"))
        max_sessions = int(_flag_value(argv, "--max-sessions", "64"))
        ttl = _flag_value(argv, "--ttl", "")
        workers = int(_flag_value(argv, "--workers", "0"))
        backend = _flag_value(argv, "--backend", "in_process")
        partitions = int(_flag_value(argv, "--partitions", "1"))
        data_dir = _flag_value(argv, "--data-dir", "")
        slow = _flag_value(argv, "--slow-threshold", "")
        use_async = "--async" in argv
        inflight_raw = _flag_value(argv, "--max-inflight", "auto")
        max_inflight = None if inflight_raw == "auto" else int(inflight_raw)
        max_queue = int(_flag_value(argv, "--max-queue", "32"))
        exec_threads = _flag_value(argv, "--exec-threads", "")
        rate = _flag_value(argv, "--rate", "")
        burst = _flag_value(argv, "--burst", "")
        if slow:
            # Via the environment so ``spawn``-started workers (which
            # re-import everything) see the same threshold.
            os.environ["REPRO_SLOW_REQUEST_SECONDS"] = str(float(slow))
            set_slow_threshold(float(slow))
        if data_dir:
            # Same idiom: every catalog built after this point — the
            # in-process one, or each forked worker's own — resolves the
            # durable root from the environment.
            os.environ[DATA_DIR_ENV] = data_dir
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown --backend {backend!r} (known: {list(BACKENDS)})"
            )
        config = PipelineConfig(backend=backend, n_partitions=partitions)
        ttl_seconds = float(ttl) if ttl else None
        gateway_kwargs = dict(
            max_inflight=max_inflight,
            max_queue=max_queue,
            exec_threads=int(exec_threads) if exec_threads else None,
            rate=float(rate) if rate else None,
            burst=float(burst) if burst else None,
        )
        if workers > 0:
            common = dict(
                host=host,
                port=port,
                workers=workers,
                config=config,
                max_sessions=max_sessions,
                ttl_seconds=ttl_seconds,
            )
            server = (
                AsyncDBWipesServer(**common, **gateway_kwargs)
                if use_async
                else DBWipesServer(**common)
            )
            datasets = "per-worker demo catalogs"
        else:
            manager = SessionManager(
                config=config,
                max_sessions=max_sessions,
                ttl_seconds=ttl_seconds,
            )
            server = (
                AsyncDBWipesServer(manager, host=host, port=port, **gateway_kwargs)
                if use_async
                else DBWipesServer(manager, host=host, port=port)
            )
            datasets = f"datasets: {', '.join(manager.catalog.names)}"
        if use_async:
            server.start()  # binds the port; the loop runs in a thread
    except (ReproError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    bound_host, bound_port = server.address
    tier = f"{workers} workers" if workers > 0 else "in-process"
    front = (
        f"async gateway, max_inflight={inflight_raw}, max_queue={max_queue}"
        if use_async
        else "threaded"
    )
    if data_dir:
        tier += f", data_dir={data_dir}"
    print(
        f"dbwipes service listening on {bound_host}:{bound_port} "
        f"({front}, {tier}, backend={backend}, {datasets})",
        flush=True,
    )
    try:
        if use_async:
            server.join()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.stop()
    return 0


def store_main(argv: list[str]) -> int:
    """``python -m repro store`` — manage the durable columnar tier.

    * ``store import <dataset> [--data-dir D] [--chunk-rows N]`` —
      build a demo dataset and persist it as memory-mapped table
      directories (idempotent: an existing persisted copy is kept);
    * ``store inspect [--data-dir D]`` — print the durable layout as
      JSON, reading only the manifests (no table data is touched).

    ``--data-dir`` falls back to ``REPRO_DATA_DIR`` when omitted.
    """
    import json

    from .errors import StorageError
    from .service.cache import DatasetCatalog

    if not argv or argv[0] in ("-h", "--help"):
        print(store_main.__doc__)
        return 0
    action = argv[0]
    data_dir = _flag_value(argv, "--data-dir", "") or None
    try:
        catalog = DatasetCatalog.with_demo_datasets(data_dir=data_dir)
        if action == "import":
            if len(argv) < 2 or argv[1].startswith("--"):
                raise ReproError(
                    "usage: store import <dataset> [--data-dir D]"
                    " [--chunk-rows N]"
                )
            chunk = _flag_value(argv, "--chunk-rows", "")
            db, created = catalog.import_dataset(
                argv[1], chunk_rows=int(chunk) if chunk else None
            )
            verb = "imported" if created else "already persisted"
            tables = ", ".join(
                f"{t}({db.table(t).num_rows} rows)" for t in db.table_names
            )
            print(f"{verb} {argv[1]!r} under {catalog.data_dir}: {tables}")
        elif action == "inspect":
            if catalog.data_dir is None:
                raise StorageError(
                    "inspect needs a data dir (--data-dir or REPRO_DATA_DIR)"
                )
            print(json.dumps(catalog.storage_info(), indent=2))
        else:
            raise ReproError(
                f"unknown store action {action!r}; try 'import' or 'inspect'"
            )
    except (ReproError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def connect_main(argv: list[str]) -> int:
    """``python -m repro connect`` — the demo shell over a live socket."""
    from .service import ServiceClient

    try:
        host = _flag_value(argv, "--host", "127.0.0.1")
        port = int(_flag_value(argv, "--port", "8642"))
        session = _flag_value(argv, "--session", "demo")
        dataset = _flag_value(argv, "--dataset", "fec")
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    scripted = "--script" in argv
    client = ServiceClient(host, port, session=session)
    try:
        client.ping()
    except ReproError as error:
        print(f"error: cannot reach {host}:{port}: {error}", file=sys.stderr)
        return 2
    try:
        opened = client.open(dataset)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        client.close()
        return 2
    shell = RemoteShell(client)
    bootstrap = opened.get("bootstrap")
    print(f"Joined session {session!r} on dataset {dataset!r}.")
    if bootstrap:
        print(f"  {bootstrap}")
        shell.run_line(f"sql {bootstrap}")
    if scripted:
        shell.run(SCRIPTS.get(dataset, ()))
        client.close()
        return 0
    print("Type 'help' for commands.")
    shell.repl()
    client.close()
    return 0


def metrics_main(argv: list[str]) -> int:
    """``python -m repro metrics`` — scrape a running service.

    Prints the cluster-merged registry (front end + every worker,
    counters summed and histograms merged bucket-wise) in Prometheus
    text exposition format, or as the raw JSON snapshot with
    ``--json``. Slow-request records, if any, follow as a comment
    block so a terminal scrape surfaces them without extra flags.
    """
    import json

    from .obs import render_prometheus
    from .service import ServiceClient

    try:
        host = _flag_value(argv, "--host", "127.0.0.1")
        port = int(_flag_value(argv, "--port", "8642"))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    client = ServiceClient(host, port)
    try:
        client.ping()
        result = client.metrics()
    except ReproError as error:
        print(f"error: cannot scrape {host}:{port}: {error}", file=sys.stderr)
        return 2
    finally:
        client.close()
    if "--json" in argv:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    print(render_prometheus(result["merged"]).rstrip())
    slow = result.get("slow_requests") or []
    if slow:
        print(f"# {len(slow)} slow request(s):")
        for record in slow:
            print(
                f"#   cmd={record.get('cmd')} seconds={record.get('seconds')} "
                f"trace={record.get('trace_id')}"
            )
    return 0


def drain_main(argv: list[str]) -> int:
    """``python -m repro drain`` — rolling-restart one worker.

    ``drain --worker N [--deadline S] [--restart] [--host H] [--port P]``
    stops new-session placement on worker N, waits out its in-flight
    requests (bounded by ``--deadline`` seconds, default 5), flushes
    every live session's journal, hands its placements to replicas by
    replay, and with ``--restart`` swaps in a fresh process and
    re-admits it. Prints the JSON summary the router returns.
    """
    import json

    from .service import ServiceClient

    try:
        host = _flag_value(argv, "--host", "127.0.0.1")
        port = int(_flag_value(argv, "--port", "8642"))
        worker = int(_flag_value(argv, "--worker", "0"))
        deadline = float(_flag_value(argv, "--deadline", "5"))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    restart = "--restart" in argv
    client = ServiceClient(host, port)
    try:
        summary = client.drain(worker, deadline=deadline, restart=restart)
    except ReproError as error:
        print(f"error: cannot drain worker {worker}: {error}", file=sys.stderr)
        return 2
    finally:
        client.close()
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if argv[0] == "serve":
        return serve_main(argv[1:])
    if argv[0] == "store":
        return store_main(argv[1:])
    if argv[0] == "connect":
        return connect_main(argv[1:])
    if argv[0] == "metrics":
        return metrics_main(argv[1:])
    if argv[0] == "drain":
        return drain_main(argv[1:])
    dataset = argv[0]
    scripted = "--script" in argv[1:]
    try:
        db = load_dataset(dataset)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    shell = DemoShell(db)
    bootstrap = BOOTSTRAP_QUERIES[dataset]
    print(f"Loaded demo dataset {dataset!r}. Bootstrap query:")
    print(f"  {bootstrap}")
    shell.run_line(f"sql {bootstrap}")
    if scripted:
        shell.run(SCRIPTS[dataset])
        return 0
    print("Type 'help' for commands.")
    shell.repl()
    return 0
