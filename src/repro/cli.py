"""The conference-demo driver: ``python -m repro``.

The paper's §3 invites attendees to "explore anomalies in campaign
donations ... and in readings from a 54-node sensor deployment", with
provided bootstrap queries. This CLI is that experience in a terminal:

* ``python -m repro fec`` / ``python -m repro intel`` — load a dataset
  with its bootstrap query and start the interactive loop;
* ``python -m repro fec --script`` — run the full §3.2 walkthrough
  non-interactively (useful for demos, docs, and tests).

Interactive commands mirror the dashboard's controls::

    sql <query>         run a new aggregate query
    show                render the current scatterplot
    select y> <v>       brush results with y above v   (also: y<, x=, row <i>)
    zoom                zoom into the selected results' input tuples
    inputs y> <v>       brush zoomed tuples as D' (also: y<)
    forms               list error-metric options for the debugged aggregate
    metric <id> [v]     pick the error metric (threshold/expected = v)
    debug               compute ranked predicates
    apply <rank>        click a predicate: rewrite the query and re-execute
    undo / redo         undo / redo the last cleaning
    query               print the current SQL
    help                this text
    quit                leave
"""

from __future__ import annotations

import sys
from typing import Callable, Iterable, TextIO

from .data import (
    FECConfig,
    IntelConfig,
    generate_fec,
    generate_intel,
    walkthrough_query,
)
from .db import Database
from .errors import ReproError
from .frontend import Brush, DBWipesSession

#: Bootstrap queries, as the demo "will provide several queries ... to
#: bootstrap their investigations".
BOOTSTRAP_QUERIES = {
    "fec": walkthrough_query("MCCAIN"),
    "intel": (
        "SELECT minute / 30 AS window, avg(temp) AS avg_temp, "
        "stddev(temp) AS std_temp FROM readings "
        "GROUP BY minute / 30 ORDER BY window"
    ),
}

#: Scripted walkthroughs replaying §3.2 (fec) and Figures 4-6 (intel).
SCRIPTS = {
    "fec": [
        "show",
        "select y< 0",
        "zoom",
        "inputs y< 0",
        "forms",
        "metric too_low 0",
        "debug",
        "apply 1",
        "show",
        "query",
    ],
    "intel": [
        "show",
        "select y> 7 std_temp",
        "zoom",
        "inputs y> 100",
        "forms",
        "metric too_high",
        "debug",
        "apply 1",
        "query",
    ],
}


def load_dataset(name: str) -> Database:
    """Build the named demo database (``fec`` or ``intel``)."""
    db = Database()
    if name == "fec":
        table, __ = generate_fec(FECConfig())
    elif name == "intel":
        table, __ = generate_intel(
            IntelConfig(failure_onset_frac=0.7)
        )
    else:
        raise ReproError(f"unknown dataset {name!r}; choose 'fec' or 'intel'")
    db.register(table)
    return db


class DemoShell:
    """A line-command shell over a :class:`DBWipesSession`."""

    def __init__(self, db: Database, out: TextIO | None = None):
        self.session = DBWipesSession(db)
        self.out = out or sys.stdout
        self._debug_agg: str | None = None
        self._commands: dict[str, Callable[[list[str]], None]] = {
            "sql": self._cmd_sql,
            "show": self._cmd_show,
            "select": self._cmd_select,
            "zoom": self._cmd_zoom,
            "inputs": self._cmd_inputs,
            "forms": self._cmd_forms,
            "metric": self._cmd_metric,
            "debug": self._cmd_debug,
            "apply": self._cmd_apply,
            "undo": self._cmd_undo,
            "redo": self._cmd_redo,
            "query": self._cmd_query,
            "help": self._cmd_help,
        }

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    # -- command dispatch ------------------------------------------------

    def run_line(self, line: str) -> bool:
        """Execute one command line; returns False when asked to quit."""
        line = line.strip()
        if not line or line.startswith("#"):
            return True
        parts = line.split()
        name, args = parts[0].lower(), parts[1:]
        if name in ("quit", "exit"):
            return False
        handler = self._commands.get(name)
        if handler is None:
            self._print(f"unknown command {name!r}; try 'help'")
            return True
        try:
            handler(args)
        except ReproError as error:
            self._print(f"error: {error}")
        return True

    def run(self, lines: Iterable[str], echo: bool = True) -> None:
        """Run a sequence of command lines (the --script mode)."""
        for line in lines:
            if echo:
                self._print(f"dbwipes> {line}")
            if not self.run_line(line):
                break

    def repl(self, stdin: TextIO | None = None) -> None:
        """Read commands until EOF or ``quit``."""
        stdin = stdin or sys.stdin
        while True:
            self.out.write("dbwipes> ")
            self.out.flush()
            line = stdin.readline()
            if not line:
                break
            if not self.run_line(line):
                break

    # -- commands ----------------------------------------------------------

    def _cmd_sql(self, args: list[str]) -> None:
        query = " ".join(args)
        result = self.session.execute(query)
        self._debug_agg = None
        self._print(f"{result.num_rows} rows")
        self._print(result.to_text(max_rows=8))

    def _cmd_show(self, args: list[str]) -> None:
        y = args[0] if args else None
        self._print(self.session.render(y=y, height=14))

    def _cmd_select(self, args: list[str]) -> None:
        brush, rest = self._parse_brush(args)
        y_axis = rest[0] if rest else None
        if y_axis:
            rows = self.session.select_results(brush, y=y_axis)
            self._debug_agg = y_axis
        else:
            rows = self.session.select_results(brush)
        self._print(f"selected {len(rows)} suspicious results: {list(rows)[:12]}")

    def _cmd_zoom(self, args: list[str]) -> None:
        scatter = self.session.zoom()
        self._print(
            f"zoomed into {len(scatter)} input tuples "
            f"(x: {scatter.x_label}, y: {scatter.y_label})"
        )

    def _cmd_inputs(self, args: list[str]) -> None:
        brush, __ = self._parse_brush(args)
        tids = self.session.select_inputs(brush)
        self._print(f"selected {len(tids)} suspicious inputs as D'")

    def _cmd_forms(self, args: list[str]) -> None:
        for option in self.session.error_form(self._debug_agg):
            defaults = f"  (default {option.defaults})" if option.defaults else ""
            self._print(f"  {option.form_id:10s} {option.label}{defaults}")

    def _cmd_metric(self, args: list[str]) -> None:
        if not args:
            self._print("usage: metric <form_id> [value]")
            return
        form_id = args[0]
        params = {}
        if len(args) > 1:
            key = "expected" if form_id == "not_equal" else "threshold"
            params[key] = float(args[1])
        metric = self.session.set_metric(form_id, agg_name=self._debug_agg,
                                         **params)
        self._print(f"metric: {metric.describe()}")

    def _cmd_debug(self, args: list[str]) -> None:
        report = self.session.debug(self._debug_agg)
        self._print(report.to_text(max_rows=8))

    def _cmd_apply(self, args: list[str]) -> None:
        rank = int(args[0]) if args else 1
        result = self.session.apply_predicate(rank - 1)
        predicate = self.session.applied_predicates[-1]
        self._print(f"applied: NOT ({predicate.describe()})")
        self._print(f"{result.num_rows} rows after cleaning")

    def _cmd_undo(self, args: list[str]) -> None:
        self.session.undo_cleaning()
        self._print("undone")

    def _cmd_redo(self, args: list[str]) -> None:
        self.session.redo_cleaning()
        self._print("redone")

    def _cmd_query(self, args: list[str]) -> None:
        self._print(self.session.current_sql())

    def _cmd_help(self, args: list[str]) -> None:
        self._print(__doc__ or "")

    @staticmethod
    def _parse_brush(args: list[str]) -> tuple[Brush | list[int], list[str]]:
        """Parse ``y> 5`` / ``y< 0`` / ``x= 3`` / ``row 1 2 3`` selections."""
        if not args:
            raise ReproError("selection needs an argument; e.g. 'select y> 10'")
        head = args[0]
        if head == "row":
            return [int(a) for a in args[1:]], []
        if head in ("y>", "y<", "x=") and len(args) >= 2:
            value = float(args[1])
            rest = args[2:]
            if head == "y>":
                return Brush.above(value), rest
            if head == "y<":
                return Brush.below(value), rest
            return Brush.over_x(value, value), rest
        raise ReproError(f"cannot parse selection {' '.join(args)!r}")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    dataset = argv[0]
    scripted = "--script" in argv[1:]
    try:
        db = load_dataset(dataset)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    shell = DemoShell(db)
    bootstrap = BOOTSTRAP_QUERIES[dataset]
    print(f"Loaded demo dataset {dataset!r}. Bootstrap query:")
    print(f"  {bootstrap}")
    shell.run_line(f"sql {bootstrap}")
    if scripted:
        shell.run(SCRIPTS[dataset])
        return 0
    print("Type 'help' for commands.")
    shell.repl()
    return 0
