"""Per-session command journals: the crash-recovery substrate.

Every state-mutating wire command a session executes is appended to a
per-session JSON-line journal under the durable data dir (PR 9), so a
session is fully described by its dataset plus the ordered command
list — the pipeline is deterministic, so replaying the journal on any
worker rebuilds byte-identical state (and the first replayed
``debug`` answers warm off the disk artifact tier).

The on-disk contract matches :mod:`repro.core.artifacts`:

- **Atomic-rename publication.** Every append rewrites the whole
  journal to ``.{stem}.tmp-{pid}`` and ``os.replace``\\ s it over the
  target — readers never observe a half-written file, and the
  per-pid staging name keeps forked workers from clobbering each
  other's temp files. Journals are interactive-session sized (tens of
  records), so the O(n) rewrite is noise next to the command itself.
- **Corruption degrades, never errors.** Each record carries a
  blake2b checksum over its canonical JSON; replay stops at the first
  bad line and recovers the longest valid prefix. A corrupt journal
  yields a shorter session, not a crash loop.
- **Single writer by construction.** The router places each session
  on exactly one worker at a time, so a journal has one appender; the
  in-memory record list is authoritative and the file is its mirror
  (``publish`` re-mirrors it wholesale, which is also how drain
  repairs a journal that was corrupted on disk).

Record 0 is always the ``open`` record naming the session and its
dataset; subsequent records are ``{"seq", "cmd", "args", "crc"}``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from . import faults
from .protocol import jsonify

__all__ = [
    "JOURNALED_COMMANDS",
    "JournalStore",
    "LoadedJournal",
    "SessionJournal",
]

#: The state-mutating wire commands worth replaying. Read-only
#: commands (``sql``, ``result``, ``render``, ``snapshot``,
#: ``error_form``) are recomputed on demand and never journaled.
JOURNALED_COMMANDS = frozenset(
    {
        "execute",
        "select_results",
        "zoom",
        "select_inputs",
        "set_metric",
        "debug",
        "apply",
        "undo",
        "redo",
    }
)


def _digest(name: str) -> str:
    """A filesystem-safe stem for arbitrary session names."""
    return hashlib.blake2b(name.encode("utf-8"), digest_size=12).hexdigest()


def _crc(seq: int, cmd: str, args: dict) -> str:
    canonical = json.dumps(
        {"seq": seq, "cmd": cmd, "args": args}, sort_keys=True
    )
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


class LoadedJournal:
    """The replayable content of one journal file."""

    __slots__ = ("name", "dataset", "records", "corrupt_records")

    def __init__(self, name, dataset, records, corrupt_records):
        self.name = name
        self.dataset = dataset
        #: ``(cmd, args)`` pairs in execution order (open record excluded).
        self.records = records
        #: Lines dropped by the checksum/shape check (replay truncated).
        self.corrupt_records = corrupt_records


class SessionJournal:
    """One live session's record list plus its on-disk mirror."""

    __slots__ = ("store", "name", "dataset", "records")

    def __init__(self, store: "JournalStore", name: str, dataset: str):
        self.store = store
        self.name = name
        self.dataset = dataset
        self.records = [
            {
                "seq": 0,
                "cmd": "open",
                "args": {"name": name, "dataset": dataset},
            }
        ]
        self.records[0]["crc"] = _crc(0, "open", self.records[0]["args"])
        self.publish()

    def append(self, cmd: str, args: dict) -> None:
        args = jsonify(args if isinstance(args, dict) else {})
        seq = len(self.records)
        self.records.append(
            {"seq": seq, "cmd": cmd, "args": args, "crc": _crc(seq, cmd, args)}
        )
        self.publish()

    def publish(self) -> None:
        self.store._publish(self.name, self.records)


class JournalStore:
    """All journals under one directory (``<data_dir>/journal``)."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._appends = 0
        self._publish_failures = 0
        self._corrupt_records = 0

    def path_for(self, name: str) -> Path:
        return self.directory / f"{_digest(name)}.jsonl"

    def create(self, name: str, dataset: str) -> SessionJournal:
        """A fresh journal for a (re)opened session — truncates any
        prior file: an explicit ``open`` starts a new history."""
        return SessionJournal(self, name, dataset)

    def _publish(self, name: str, records: list[dict]) -> None:
        target = self.path_for(name)
        staging = target.parent / f".{target.stem}.tmp-{os.getpid()}"
        plan = faults.active_plan()
        try:
            lines = []
            for record in records:
                line = json.dumps(record, sort_keys=True)
                if plan is not None and plan.corrupts_record(
                    name, record["seq"]
                ):
                    # Scripted corruption: keep the line parseable but
                    # fail its checksum, exercising the replay guard.
                    line = json.dumps(
                        {**record, "crc": "0" * 16}, sort_keys=True
                    )
                lines.append(line)
            staging.write_text("\n".join(lines) + "\n")
            os.replace(staging, target)
        except OSError:
            with self._lock:
                self._publish_failures += 1
            try:
                staging.unlink(missing_ok=True)
            except OSError:
                pass
            return
        with self._lock:
            self._appends += 1

    def peek(self, name: str) -> str | None:
        """The dataset a journaled session belongs to, or ``None``."""
        loaded = self.load(name)
        return loaded.dataset if loaded is not None else None

    def load(self, name: str) -> LoadedJournal | None:
        """Parse a journal, keeping the longest valid record prefix."""
        try:
            text = self.path_for(name).read_text()
        except OSError:
            return None
        records: list[tuple[str, dict]] = []
        dataset = None
        corrupt = 0
        for expected_seq, line in enumerate(text.splitlines()):
            record = self._parse_record(line, expected_seq)
            if record is None:
                corrupt = 1
                break
            if expected_seq == 0:
                if record["cmd"] != "open" or record["args"].get("name") != name:
                    return None
                dataset = record["args"].get("dataset")
            else:
                records.append((record["cmd"], record["args"]))
        if dataset is None:
            return None
        if corrupt:
            with self._lock:
                self._corrupt_records += 1
        return LoadedJournal(name, dataset, records, corrupt)

    @staticmethod
    def _parse_record(line: str, expected_seq: int) -> dict | None:
        try:
            record = json.loads(line)
        except ValueError:
            return None
        if not isinstance(record, dict):
            return None
        seq, cmd, args = record.get("seq"), record.get("cmd"), record.get("args")
        if seq != expected_seq or not isinstance(cmd, str):
            return None
        if not isinstance(args, dict):
            return None
        if record.get("crc") != _crc(seq, cmd, args):
            return None
        return record

    def exists(self, name: str) -> bool:
        return self.path_for(name).exists()

    def discard(self, name: str) -> None:
        """Forget a closed session's history (close is deliberate)."""
        try:
            self.path_for(name).unlink(missing_ok=True)
        except OSError:
            pass

    def sessions(self) -> int:
        """How many journal files exist right now."""
        return sum(1 for _ in self.directory.glob("*.jsonl"))

    def stats(self) -> dict:
        with self._lock:
            return {
                "directory": str(self.directory),
                "sessions": self.sessions(),
                "appends": self._appends,
                "publish_failures": self._publish_failures,
                "corrupt_records": self._corrupt_records,
            }
