"""``repro.service`` — the concurrent multi-session serving tier.

The paper demos DBWipes as a shared interactive system: many attendees
brushing, zooming, and debugging at once. This package is that serving
tier for the reproduction:

* :mod:`~repro.service.protocol` — a JSON-line wire protocol exposing
  every :class:`~repro.frontend.session.DBWipesSession` operation;
* :mod:`~repro.service.sessions` — :class:`SessionManager`: many named
  sessions, per-session locks, LRU + TTL eviction;
* :mod:`~repro.service.cache` — :class:`DatasetCatalog` and the shared
  :class:`~repro.core.preprocessor.PreprocessCache`, so N sessions over
  one dataset share one table and one preprocessing result;
* :mod:`~repro.service.server` — :class:`DBWipesServer`, a
  dependency-free threaded TCP server;
* :mod:`~repro.service.client` — :class:`ServiceClient`, the blocking
  client used by tests, benchmarks, and ``python -m repro connect``.
"""

from .cache import DatasetCatalog, PreprocessCache
from .client import ServiceClient
from .protocol import PROTOCOL_VERSION
from .server import DBWipesServer
from .sessions import ManagedSession, SessionManager

__all__ = [
    "DBWipesServer",
    "DatasetCatalog",
    "ManagedSession",
    "PROTOCOL_VERSION",
    "PreprocessCache",
    "ServiceClient",
    "SessionManager",
]
