"""``repro.service`` — the concurrent multi-session serving tier.

The paper demos DBWipes as a shared interactive system: many attendees
brushing, zooming, and debugging at once. This package is that serving
tier for the reproduction:

* :mod:`~repro.service.protocol` — a JSON-line wire protocol exposing
  every :class:`~repro.frontend.session.DBWipesSession` operation;
* :mod:`~repro.service.sessions` — :class:`SessionManager`: many named
  sessions, per-session locks, LRU + TTL eviction;
* :mod:`~repro.service.cache` — :class:`DatasetCatalog` and the shared
  :class:`~repro.core.preprocessor.PreprocessCache`, so N sessions over
  one dataset share one table and one preprocessing result;
* :mod:`~repro.service.workers` — :class:`WorkerPool`: N worker
  processes, each owning a catalog shard and its caches;
* :mod:`~repro.service.router` — :class:`RoutingDispatcher` +
  :class:`HashRing`: the scatter-gather front end that routes sessions
  to workers by consistent hash of the dataset id;
* :mod:`~repro.service.server` — :class:`DBWipesServer`, a
  dependency-free threaded TCP server over either dispatcher;
* :mod:`~repro.service.async_server` — :class:`AsyncDBWipesServer`, the
  event-loop gateway: same protocol and dispatchers, plus admission
  control (bounded in-flight + queue, ``ServerBusy`` shedding with
  ``retry_after``), per-connection token-bucket rate limiting, and
  streamed partial ``debug`` frames;
* :mod:`~repro.service.client` — :class:`ServiceClient`, the blocking
  client used by tests, benchmarks, and ``python -m repro connect``;
* :mod:`~repro.service.journal` — :class:`JournalStore`: per-session
  command journals under the durable data dir, the substrate for crash
  recovery (``recover`` replays a journal to rebuild a session
  byte-identically on any worker);
* :mod:`~repro.service.faults` — :class:`FaultPlan`: the deterministic
  fault-injection harness (scripted worker kills, dropped replies,
  delays, journal corruption) driven by tests, the chaos benchmark,
  and the ``REPRO_FAULT_PLAN`` environment knob.

The routed tier self-heals: sessions journal every mutating command,
the router fails crashed requests over along each dataset's replica
set (per-worker circuit breakers, jittered bounded backoff), ``drain``
rolls a worker out gracefully, and ``resize`` rebalances placements by
replay instead of dropping them.

Every tier reports into :mod:`repro.obs`: requests are traced across
the router/worker hop, per-stage latencies land in the shared metrics
registry, and the ``metrics``/``trace`` wire commands scatter-gather
the per-process registries and span buffers into one cluster view.
"""

from .async_server import AsyncDBWipesServer, TokenBucket
from .cache import DatasetCatalog, PreprocessCache
from .client import ServiceClient
from .faults import FaultPlan
from .handlers import LocalDispatcher
from .journal import JOURNALED_COMMANDS, JournalStore
from .protocol import PROTOCOL_VERSION
from .router import CircuitBreaker, HashRing, RoutingDispatcher
from .server import DBWipesServer
from .sessions import ManagedSession, SessionManager
from .workers import WorkerHandle, WorkerPool

__all__ = [
    "AsyncDBWipesServer",
    "CircuitBreaker",
    "DBWipesServer",
    "TokenBucket",
    "DatasetCatalog",
    "FaultPlan",
    "HashRing",
    "JOURNALED_COMMANDS",
    "JournalStore",
    "LocalDispatcher",
    "ManagedSession",
    "PROTOCOL_VERSION",
    "PreprocessCache",
    "RoutingDispatcher",
    "ServiceClient",
    "SessionManager",
    "WorkerHandle",
    "WorkerPool",
]
