"""``repro.service`` — the concurrent multi-session serving tier.

The paper demos DBWipes as a shared interactive system: many attendees
brushing, zooming, and debugging at once. This package is that serving
tier for the reproduction:

* :mod:`~repro.service.protocol` — a JSON-line wire protocol exposing
  every :class:`~repro.frontend.session.DBWipesSession` operation;
* :mod:`~repro.service.sessions` — :class:`SessionManager`: many named
  sessions, per-session locks, LRU + TTL eviction;
* :mod:`~repro.service.cache` — :class:`DatasetCatalog` and the shared
  :class:`~repro.core.preprocessor.PreprocessCache`, so N sessions over
  one dataset share one table and one preprocessing result;
* :mod:`~repro.service.workers` — :class:`WorkerPool`: N worker
  processes, each owning a catalog shard and its caches;
* :mod:`~repro.service.router` — :class:`RoutingDispatcher` +
  :class:`HashRing`: the scatter-gather front end that routes sessions
  to workers by consistent hash of the dataset id;
* :mod:`~repro.service.server` — :class:`DBWipesServer`, a
  dependency-free threaded TCP server over either dispatcher;
* :mod:`~repro.service.async_server` — :class:`AsyncDBWipesServer`, the
  event-loop gateway: same protocol and dispatchers, plus admission
  control (bounded in-flight + queue, ``ServerBusy`` shedding with
  ``retry_after``), per-connection token-bucket rate limiting, and
  streamed partial ``debug`` frames;
* :mod:`~repro.service.client` — :class:`ServiceClient`, the blocking
  client used by tests, benchmarks, and ``python -m repro connect``.

Every tier reports into :mod:`repro.obs`: requests are traced across
the router/worker hop, per-stage latencies land in the shared metrics
registry, and the ``metrics``/``trace`` wire commands scatter-gather
the per-process registries and span buffers into one cluster view.
"""

from .async_server import AsyncDBWipesServer, TokenBucket
from .cache import DatasetCatalog, PreprocessCache
from .client import ServiceClient
from .handlers import LocalDispatcher
from .protocol import PROTOCOL_VERSION
from .router import HashRing, RoutingDispatcher
from .server import DBWipesServer
from .sessions import ManagedSession, SessionManager
from .workers import WorkerHandle, WorkerPool

__all__ = [
    "AsyncDBWipesServer",
    "DBWipesServer",
    "TokenBucket",
    "DatasetCatalog",
    "HashRing",
    "LocalDispatcher",
    "ManagedSession",
    "PROTOCOL_VERSION",
    "PreprocessCache",
    "RoutingDispatcher",
    "ServiceClient",
    "SessionManager",
    "WorkerHandle",
    "WorkerPool",
]
