"""The asyncio gateway: one event loop, bounded work, shed the rest.

The threaded server (:mod:`repro.service.server`) spends one OS thread
per connection; past ~64 clients the GIL convoy between those threads
costs more than the pipeline work itself and throughput *drops* as load
rises. This module is the same wire protocol on an explicit capacity
model instead:

* **one event loop** accepts connections and parses frames — thousands
  of idle or slow clients cost file descriptors, not threads;
* **cheap commands** (:data:`~repro.service.handlers.CHEAP_COMMANDS`:
  ``ping``/``stats``/``sessions``/``metrics``/``trace``) answer directly
  on the loop — they stay fast no matter how saturated the heavy lane is;
* **heavy commands** (anything that runs the pipeline, touches a dataset
  or takes a session lock) pass *admission control*: at most
  ``max_inflight`` execute at once — in a small bounded thread pool
  (``workers=0``) or routed to worker processes over async pipe waits
  (``workers=N``, where one stuck worker parks one coroutine and nothing
  else) — and at most ``max_queue`` wait for a slot;
* **everything beyond that is shed**, immediately, with a structured
  ``ServerBusy`` envelope carrying ``retry_after`` — an EWMA over the
  per-stage timing counters of recently served requests (see
  ``protocol.busy_response``) — instead of silent unbounded queue growth;
* **per-client token buckets** (``rate``/``burst``) bound any single
  connection's heavy-command rate before it reaches the shared queue;
* **streamed partial results**: a ``debug`` with ``args: {"stream":
  true}`` emits ``partial`` frames with the ranked rules as merge rounds
  survive, then the byte-identical final envelope (single-process mode;
  routed mode degrades to the final envelope only).

Still dependency-free: ``asyncio`` + ``concurrent.futures`` from the
standard library, sharing every dispatcher, handler, and protocol byte
with the threaded path.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from functools import partial as fn_partial

from ..errors import ServiceError
from ..obs import trace as obs_trace
from ..obs.flags import enabled as obs_enabled
from ..obs.metrics import registry as obs_registry
from .handlers import CHEAP_COMMANDS, LocalDispatcher
from .protocol import (
    MAX_LINE_BYTES,
    busy_response,
    decode_line,
    encode,
    error_response,
    partial_response,
)
from .sessions import SessionManager

#: Fallback heavy-request service time (seconds) before the EWMA has a
#: sample — only used for the very first shed's ``retry_after``.
DEFAULT_SERVICE_SECONDS = 0.05

#: ``retry_after`` is clamped into this range: long enough to matter,
#: short enough that a well-behaved client retries within the demo.
MIN_RETRY_AFTER = 0.01
MAX_RETRY_AFTER = 5.0

#: Auto-tuned admission: bound the convoy delay a newly admitted heavy
#: request sits behind (``inflight × EWMA service time``) to roughly this
#: many seconds. Fast workloads widen the gate; slow ones narrow it.
AUTO_TARGET_DELAY_SECONDS = 2.0

#: Auto-tuned ``max_inflight`` stays inside these bounds (the upper one
#: additionally capped by CPU count — see ``_auto_cap``).
AUTO_MIN_INFLIGHT = 1
AUTO_MAX_INFLIGHT = 16

#: Where an auto-tuned gateway starts before the first EWMA sample.
AUTO_START_INFLIGHT = 4


def _auto_cap() -> int:
    """Ceiling for the auto-tuned gate: 2× cores, in [4, AUTO_MAX]."""
    cores = os.cpu_count() or 1
    return max(4, min(AUTO_MAX_INFLIGHT, 2 * cores))


class _AdmissionGate:
    """A counting gate whose limit can change while coroutines wait.

    ``asyncio.Semaphore`` bakes its count in at construction; auto-tuning
    needs to widen or narrow admission *while requests are queued*, so
    this keeps an explicit waiter deque and an adjustable ``limit``.
    Everything runs on the event loop — no locks. Narrowing never
    revokes in-flight work; the excess drains as requests finish.
    """

    def __init__(self, limit: int):
        self.limit = max(1, int(limit))
        self.inflight = 0
        self._waiters: deque[asyncio.Future] = deque()

    async def acquire(self) -> None:
        if self.inflight < self.limit:
            self.inflight += 1
            return
        future = asyncio.get_running_loop().create_future()
        self._waiters.append(future)
        try:
            await future
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # Granted and cancelled in the same tick: return the slot.
                self.release()
            raise

    def release(self) -> None:
        self.inflight -= 1
        self._wake()

    def set_limit(self, limit: int) -> None:
        self.limit = max(1, int(limit))
        self._wake()

    def _wake(self) -> None:
        while self._waiters and self.inflight < self.limit:
            future = self._waiters.popleft()
            if future.done():
                continue
            self.inflight += 1
            future.set_result(None)


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Heavy commands cost one token each; cheap commands are free. Runs
    entirely on the event loop, so no locking is needed.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0:
            raise ServiceError("rate must be positive")
        if burst < 1:
            raise ServiceError("burst must be >= 1")
        self.rate = float(rate)
        self.capacity = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self.tokens = min(self.capacity, self.tokens + (now - self._last) * self.rate)
        self._last = now

    def try_take(self, n: float = 1.0) -> bool:
        """Spend ``n`` tokens if available; never blocks."""
        self._refill()
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def seconds_until(self, n: float = 1.0) -> float:
        """How long until ``n`` tokens will have accumulated."""
        self._refill()
        deficit = n - self.tokens
        return max(0.0, deficit / self.rate)


class AsyncDBWipesServer:
    """The admission-controlled asyncio front end.

    Constructor mirrors :class:`~repro.service.server.DBWipesServer`
    (same ``manager``/``workers``/``catalog_factory`` split, same
    ``start()``/``stop()``/``address``/context-manager surface — the
    loop runs in a daemon thread so tests and the CLI treat both servers
    interchangeably) plus the gateway knobs:

    ``max_inflight``
        Heavy commands executing at once (executor threads or routed
        worker calls). The GIL makes a *small* bound fastest. ``None``
        (the default) auto-tunes: the gate is resized after each heavy
        completion so that ``inflight × EWMA service time`` stays near
        :data:`AUTO_TARGET_DELAY_SECONDS`, clamped to
        ``[AUTO_MIN_INFLIGHT, 2 × cores ≤ AUTO_MAX_INFLIGHT]``. Passing
        an integer pins the gate (the ``--max-inflight`` override).
    ``max_queue``
        Heavy commands allowed to wait for a slot; one more is shed.
    ``exec_threads``
        Size of the executor pool (``workers=0`` mode); defaults to
        ``max_inflight``.
    ``rate`` / ``burst``
        Per-connection token bucket on heavy commands; ``rate=None``
        disables rate limiting.
    """

    def __init__(
        self,
        manager: SessionManager | None = None,
        host: str = "127.0.0.1",
        port: int = 8642,
        workers: int = 0,
        catalog_factory=None,
        config=None,
        max_sessions: int = 64,
        ttl_seconds: float | None = None,
        max_inflight: int | None = None,
        max_queue: int = 32,
        exec_threads: int | None = None,
        rate: float | None = None,
        burst: float | None = None,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ServiceError("max_inflight must be >= 1 (or None to auto-tune)")
        if max_queue < 0:
            raise ServiceError("max_queue must be >= 0")
        self.host = host
        self.port = port
        #: Whether the gate resizes itself from the service-time EWMA.
        self.auto_inflight = max_inflight is None
        self._inflight_cap = _auto_cap()
        self.max_inflight = (
            min(AUTO_START_INFLIGHT, self._inflight_cap)
            if max_inflight is None
            else int(max_inflight)
        )
        self.max_queue = int(max_queue)
        # An auto-tuned gate may widen up to its cap at runtime; size the
        # executor for the widest it can get so threads never re-bound it.
        self.exec_threads = (
            int(exec_threads)
            if exec_threads
            else (self._inflight_cap if self.auto_inflight else self.max_inflight)
        )
        self.rate = rate
        self.burst = float(burst) if burst is not None else (rate or 0) * 2 or 1.0
        self.pool = None
        if workers and int(workers) > 0:
            from .router import RoutingDispatcher
            from .workers import WorkerPool

            self.manager = None
            self.pool = WorkerPool(
                int(workers),
                catalog_factory=catalog_factory,
                config=config,
                max_sessions=max_sessions,
                ttl_seconds=ttl_seconds,
            )
            self.dispatcher = RoutingDispatcher(self.pool)
        else:
            self.manager = manager if manager is not None else SessionManager()
            self.dispatcher = LocalDispatcher(self.manager)

        # Admission state — touched only from the event loop.
        self._inflight = 0
        self._waiting = 0
        self._ewma_heavy_seconds: float | None = None
        self._shed_count = 0

        self._loop: asyncio.AbstractEventLoop | None = None
        self._gate: _AdmissionGate | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._bound: tuple[str, int] | None = None

        reg = obs_registry()
        self._g_inflight = reg.gauge(
            "dbwipes_gateway_inflight",
            help="Heavy commands currently executing in the async gateway.",
        )
        self._g_queue = reg.gauge(
            "dbwipes_gateway_queue_depth",
            help="Heavy commands waiting for an admission slot.",
        )
        self._m_shed_queue = reg.counter(
            "dbwipes_shed_total",
            labels={"reason": "queue_full"},
            help="Requests shed by the async gateway, by reason.",
        )
        self._m_shed_rate = reg.counter(
            "dbwipes_shed_total",
            labels={"reason": "rate_limited"},
            help="Requests shed by the async gateway, by reason.",
        )
        self._m_partials = reg.counter(
            "dbwipes_partial_frames_total",
            help="Streamed partial debug frames emitted.",
        )

    # ------------------------------------------------------------------
    # lifecycle (mirrors DBWipesServer)
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolved even when created with port 0."""
        if self._bound is None:
            raise ServiceError("server is not started")
        return self._bound

    def start(self) -> tuple[str, int]:
        """Run the event loop in a daemon thread; returns the address."""
        if self._thread is None:
            self._started.clear()
            self._startup_error = None
            self._thread = threading.Thread(
                target=self._run_loop,
                name="dbwipes-async-server",
                daemon=True,
            )
            self._thread.start()
            self._started.wait(timeout=30)
            if self._startup_error is not None:
                error = self._startup_error
                self._thread.join(timeout=5)
                self._thread = None
                raise ServiceError(f"async server failed to start: {error}")
        assert self._bound is not None
        return self._bound

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._run_loop()

    def join(self) -> None:
        """Block until the serving thread exits (pair with :meth:`start`)."""
        if self._thread is not None:
            self._thread.join()

    def stop(self) -> None:
        """Stop accepting, drain the loop, stop workers."""
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "AsyncDBWipesServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 — surfaced via start()
            if not self._started.is_set():
                self._startup_error = error
                self._started.set()
            else:
                raise

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._gate = _AdmissionGate(self.max_inflight)
        self._stop_event = asyncio.Event()
        if self.pool is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.exec_threads,
                thread_name_prefix="dbwipes-async-exec",
            )
        server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self.port,
            # One full protocol line must fit the stream buffer; the +2
            # leaves readline room to distinguish "too long" from "fits".
            limit=MAX_LINE_BYTES + 2,
            # Same listen backlog as the threaded server: hundreds of
            # simultaneous connects must queue, not get kernel RSTs.
            backlog=512,
        )
        sockname = server.sockets[0].getsockname()
        self._bound = (str(sockname[0]), int(sockname[1]))
        self._started.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # per-connection protocol loop
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        bucket = (
            TokenBucket(self.rate, self.burst) if self.rate is not None else None
        )
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # readline wraps a line-too-long overrun in ValueError.
                    await self._write(
                        writer,
                        error_response(
                            None,
                            "ProtocolError",
                            f"request line exceeds {MAX_LINE_BYTES} bytes "
                            "or is truncated; closing connection",
                        ),
                    )
                    return
                except (ConnectionError, OSError):
                    return
                if not line:
                    return  # client closed the connection
                if not line.endswith(b"\n"):
                    # EOF mid-line: nothing more will resynchronize it.
                    return
                if len(line) > MAX_LINE_BYTES:
                    await self._write(
                        writer,
                        error_response(
                            None,
                            "ProtocolError",
                            f"request line exceeds {MAX_LINE_BYTES} bytes "
                            "or is truncated; closing connection",
                        ),
                    )
                    return
                if line.strip() == b"":
                    continue
                envelope = await self._respond_to(line, writer, bucket)
                if not await self._write(writer, envelope):
                    return
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _write(self, writer: asyncio.StreamWriter, response: dict) -> bool:
        data = encode(response)
        if len(data) > MAX_LINE_BYTES:
            # Never emit a line the client cannot frame (same contract as
            # the threaded server's _write).
            data = encode(
                error_response(
                    response.get("id"),
                    "ProtocolError",
                    f"response exceeds {MAX_LINE_BYTES} bytes; "
                    "request fewer rows/points (max_rows / max_points)",
                )
            )
        try:
            writer.write(data)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    async def _respond_to(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        bucket: TokenBucket | None,
    ) -> dict:
        try:
            message = decode_line(line)
        except Exception as error:
            return error_response(None, type(error).__name__, str(error))
        request_id = message.get("id") if isinstance(message, dict) else None
        cmd = message.get("cmd") if isinstance(message, dict) else None

        if isinstance(cmd, str) and cmd in CHEAP_COMMANDS:
            # Cheap lane: answers on the loop regardless of heavy-lane
            # saturation — liveness and telemetry stay observable under
            # overload, which is exactly when they matter.
            return await self._handle_cheap(message)
        return await self._handle_heavy(message, request_id, cmd, writer, bucket)

    # ------------------------------------------------------------------
    # the two lanes
    # ------------------------------------------------------------------

    async def _handle_cheap(self, message: dict) -> dict:
        if self.pool is not None:
            # Routed mode: stats/metrics/... broadcast to the workers,
            # but over async pipe waits — the loop never blocks.
            envelope = await self.dispatcher.handle_async(message)
        else:
            envelope = self.dispatcher.handle(message)
        if (
            isinstance(message, dict)
            and message.get("cmd") == "stats"
            and envelope.get("ok")
            and isinstance(envelope.get("result"), dict)
        ):
            # The gateway's admission state lives on this loop, not in
            # any session manager — graft it into the stats snapshot so
            # clients can see the (possibly auto-tuned) gate width.
            envelope["result"]["gateway"] = self.gateway_stats()
        return envelope

    async def _handle_heavy(
        self,
        message: dict,
        request_id,
        cmd,
        writer: asyncio.StreamWriter,
        bucket: TokenBucket | None,
    ) -> dict:
        if bucket is not None and not bucket.try_take(1.0):
            self._shed_count += 1
            if obs_enabled():
                self._m_shed_rate.inc()
            return busy_response(
                request_id,
                "rate limit exceeded for this connection; slow down",
                max(MIN_RETRY_AFTER, min(MAX_RETRY_AFTER, bucket.seconds_until(1.0))),
            )
        if self._inflight >= self.max_inflight and self._waiting >= self.max_queue:
            self._shed_count += 1
            if obs_enabled():
                self._m_shed_queue.inc()
            return busy_response(
                request_id,
                f"server at capacity ({self._inflight} in flight, "
                f"{self._waiting} queued); retry shortly",
                self._retry_after(),
            )
        assert self._gate is not None
        self._waiting += 1
        if obs_enabled():
            self._g_queue.set(float(self._waiting))
        trace_id, parent_id = obs_trace.from_wire(message)
        with obs_trace.span(
            "gateway.admit", trace_id=trace_id, parent_id=parent_id
        ) as span:
            span.set(queued=self._waiting, inflight=self._inflight)
            await self._gate.acquire()
        self._waiting -= 1
        self._inflight += 1
        if obs_enabled():
            self._g_queue.set(float(self._waiting))
            self._g_inflight.set(float(self._inflight))
        start = time.perf_counter()
        try:
            envelope = await self._execute(message, request_id, cmd, writer)
        finally:
            self._inflight -= 1
            self._gate.release()
            if obs_enabled():
                self._g_inflight.set(float(self._inflight))
        self._observe_heavy(cmd, envelope, time.perf_counter() - start)
        return envelope

    async def _execute(
        self, message: dict, request_id, cmd, writer: asyncio.StreamWriter
    ) -> dict:
        wants_stream = (
            cmd == "debug"
            and isinstance(message.get("args"), dict)
            and bool(message["args"].get("stream"))
        )
        emit = (
            self._make_emit(writer, request_id)
            if wants_stream and self.dispatcher.supports_streaming
            else None
        )
        if self.pool is not None:
            # Worker processes do the CPU work; the pipe wait is async.
            # Partial frames cross the worker pipe and reach ``emit``
            # (thread-safe) via the handle's reader thread.
            return await self.dispatcher.handle_async(message, emit)
        assert self._loop is not None and self._executor is not None
        try:
            return await self._loop.run_in_executor(
                self._executor,
                fn_partial(self.dispatcher.handle, message, emit),
            )
        except RuntimeError:
            # Executor shut down mid-request (server stopping).
            return error_response(
                request_id, "ServiceError", "server is shutting down"
            )

    def _make_emit(self, writer: asyncio.StreamWriter, request_id):
        """A thread-safe partial-frame sender for one streamed request.

        Called from the executor thread mid-pipeline; each frame write is
        marshalled onto the loop with ``call_soon_threadsafe``, which
        FIFO-orders every partial ahead of the executor future's own
        completion callback — so the client always sees partials strictly
        before the terminating envelope.
        """
        assert self._loop is not None
        loop = self._loop

        def emit(seq: int, payload: dict) -> None:
            data = encode(partial_response(request_id, seq, payload))
            if len(data) > MAX_LINE_BYTES:
                return  # partials are best-effort; never break the framing

            def _send() -> None:
                if not writer.is_closing():
                    try:
                        writer.write(data)
                    except (ConnectionError, OSError):
                        pass

            try:
                loop.call_soon_threadsafe(_send)
            except RuntimeError:
                return  # loop closed under the request
            if obs_enabled():
                self._m_partials.inc()

        return emit

    # ------------------------------------------------------------------
    # the shedding signal
    # ------------------------------------------------------------------

    def _observe_heavy(self, cmd, envelope: dict, wall_seconds: float) -> None:
        """Feed the retry_after EWMA from the request just served.

        Uses the per-stage timing counters when the response carries
        them (``debug`` reports their sum — the dominant cost under
        load) and the gateway-observed wall time otherwise.
        """
        seconds = wall_seconds
        if cmd == "debug" and envelope.get("ok"):
            result = envelope.get("result")
            timings = result.get("timings") if isinstance(result, dict) else None
            if isinstance(timings, dict):
                stage_sum = sum(
                    float(v)
                    for v in timings.values()
                    if isinstance(v, (int, float))
                )
                if stage_sum > 0:
                    seconds = stage_sum
        previous = self._ewma_heavy_seconds
        self._ewma_heavy_seconds = (
            seconds if previous is None else 0.2 * seconds + 0.8 * previous
        )
        if self.auto_inflight:
            self._retune_gate()

    def _retune_gate(self) -> None:
        """Resize admission so backlog drain time tracks the target.

        With an EWMA service time of *s* seconds, admitting *n* at once
        means a newly admitted request waits roughly ``n × s`` behind the
        GIL / worker pool. Solve for the *n* that keeps that near
        :data:`AUTO_TARGET_DELAY_SECONDS`: fast requests widen the gate
        (more concurrency costs little), slow ones narrow it toward
        serial execution (where each finishes soonest). Clamped to
        ``[AUTO_MIN_INFLIGHT, cap]``; the executor was sized to the cap
        up front, so widening never outruns the thread pool.
        """
        ewma = self._ewma_heavy_seconds
        if ewma is None or self._gate is None:
            return
        target = int(AUTO_TARGET_DELAY_SECONDS / max(ewma, 1e-4))
        target = max(AUTO_MIN_INFLIGHT, min(self._inflight_cap, target))
        if target != self.max_inflight:
            self.max_inflight = target
            self._gate.set_limit(target)

    def _retry_after(self) -> float:
        """Suggested backoff: expected backlog drain time, clamped."""
        base = (
            self._ewma_heavy_seconds
            if self._ewma_heavy_seconds is not None
            else DEFAULT_SERVICE_SECONDS
        )
        backlog = self._waiting + self._inflight + 1
        estimate = base * backlog / max(1, self.max_inflight)
        return max(MIN_RETRY_AFTER, min(MAX_RETRY_AFTER, estimate))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def gateway_stats(self) -> dict:
        """Loop-side admission counters (racy reads, fine for tests)."""
        return {
            "max_inflight": self.max_inflight,
            "auto_inflight": self.auto_inflight,
            "max_queue": self.max_queue,
            "inflight": self._inflight,
            "waiting": self._waiting,
            "shed": self._shed_count,
            "ewma_heavy_seconds": self._ewma_heavy_seconds,
        }
