"""Session lifecycle for the serving tier.

A :class:`SessionManager` owns many named
:class:`~repro.frontend.session.DBWipesSession` objects, giving the
single-user session abstraction the properties a server needs:

* **per-session locks** — two clients driving the same session name
  serialize, so the Figure-1 state machine never sees interleaved
  mutations;
* **LRU eviction** — at most ``max_sessions`` live sessions; opening
  one more silently drops the least recently used (a conference demo's
  attendees walk away without logging out);
* **TTL expiry** — sessions idle longer than ``ttl_seconds`` are
  reaped lazily on any manager access (no background thread needed);
* **shared read-only state** — every session gets the catalog's shared
  :class:`~repro.db.Database` and the manager-wide
  :class:`~repro.core.preprocessor.PreprocessCache`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterator

from ..core.pipeline import PipelineConfig
from ..errors import ServiceError
from ..frontend.session import DBWipesSession
from ..obs.flags import enabled as obs_enabled
from ..obs.metrics import registry as obs_registry
from .cache import DatasetCatalog, PreprocessCache


class ManagedSession:
    """One named session plus its lock and bookkeeping."""

    __slots__ = (
        "name",
        "dataset",
        "session",
        "lock",
        "created_at",
        "last_used",
        "requests",
        "busy",
        "journal",
    )

    def __init__(
        self, name: str, dataset: str, session: DBWipesSession, now: float
    ):
        self.name = name
        self.dataset = dataset
        self.session = session
        self.lock = threading.RLock()
        self.created_at = now
        self.last_used = now
        self.requests = 0
        #: The session's :class:`~repro.service.journal.SessionJournal`
        #: when the manager has a durable data dir, else None.
        self.journal = None
        #: In-flight ``borrow()`` count (manager-lock protected). Evicting
        #: a session while a request runs on it would orphan that request
        #: and surface as UnknownSession on the next one, so eviction
        #: (LRU and TTL alike) skips sessions with ``busy > 0``.
        self.busy = 0

    def info(self, now: float) -> dict:
        """A JSON-safe summary for the ``sessions`` command."""
        return {
            "name": self.name,
            "dataset": self.dataset,
            "state": self.session.state,
            "requests": self.requests,
            "idle_seconds": max(0.0, now - self.last_used),
            "age_seconds": max(0.0, now - self.created_at),
        }


class SessionManager:
    """Thread-safe registry of named sessions with LRU + TTL eviction."""

    def __init__(
        self,
        catalog: DatasetCatalog | None = None,
        config: PipelineConfig | None = None,
        max_sessions: int = 64,
        ttl_seconds: float | None = None,
        preprocess_cache: PreprocessCache | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_sessions < 1:
            raise ServiceError("max_sessions must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ServiceError("ttl_seconds must be positive (or None)")
        # "is not None" coalescing: SessionManager and PreprocessCache
        # define __len__, so an empty-but-real instance is falsy.
        self.catalog = (
            catalog if catalog is not None else DatasetCatalog.with_demo_datasets()
        )
        self.config = config
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        if preprocess_cache is None:
            # A durable catalog implies a durable preprocess tier: keep
            # artifacts next to the tables they derive from, so one data
            # dir is the whole warm-restart state.
            disk = None
            if self.catalog.data_dir is not None:
                from ..core.artifacts import ArtifactStore

                disk = ArtifactStore(self.catalog.data_dir / "preprocess")
            preprocess_cache = PreprocessCache(disk=disk)
        self.preprocess_cache = preprocess_cache
        # A durable data dir also enables session journaling: every
        # state-mutating command lands in a per-session journal, so a
        # crashed or drained worker's sessions can be replayed anywhere
        # (see service/journal.py). Memory-only managers keep the old
        # lose-on-crash semantics.
        self.journals = None
        if self.catalog.data_dir is not None:
            from .journal import JournalStore

            self.journals = JournalStore(self.catalog.data_dir / "journal")
        self._clock = clock
        self._lock = threading.Lock()
        #: name -> ManagedSession, in least-recently-used-first order.
        self._sessions: OrderedDict[str, ManagedSession] = OrderedDict()
        self._lru_evictions = 0
        self._ttl_evictions = 0
        # Shared-registry mirrors of the ad-hoc counters above. The open
        # gauge moves by deltas (not ``set(len)``) so several managers in
        # one process — tests, embedded servers — share it correctly.
        reg = obs_registry()
        self._m_open = reg.gauge(
            "dbwipes_sessions_open", help="Live sessions in this process."
        )
        self._m_requests = reg.counter(
            "dbwipes_session_requests_total",
            help="Session-scoped requests served (borrow count).",
        )
        self._m_lru = reg.counter(
            "dbwipes_session_lru_evictions_total",
            help="Sessions evicted by the LRU bound.",
        )
        self._m_ttl = reg.counter(
            "dbwipes_session_ttl_evictions_total",
            help="Sessions reaped by TTL expiry.",
        )
        self._m_recovered = reg.counter(
            "dbwipes_sessions_recovered_total",
            help="Sessions rebuilt by replaying their journal.",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def open(self, name: str, dataset: str) -> ManagedSession:
        """Create (or return) the named session over a shared dataset.

        Reopening an existing name on the same dataset is idempotent;
        reopening it on a *different* dataset is an error (close first).
        """
        if not name:
            raise ServiceError("session name must be non-empty")
        db = self.catalog.get(dataset)  # outside the lock: may build
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            existing = self._sessions.get(name)
            if existing is not None:
                if existing.dataset != dataset:
                    raise ServiceError(
                        f"session {name!r} is open on dataset "
                        f"{existing.dataset!r}; close it before reopening "
                        f"on {dataset!r}"
                    )
                self._touch_locked(existing, now)
                return existing
            session = DBWipesSession(
                db, config=self.config, preprocess_cache=self.preprocess_cache
            )
            managed = ManagedSession(name, dataset, session, now)
            if self.journals is not None:
                # An explicit open starts a fresh history (truncating any
                # stale journal left by an evicted predecessor); recovery
                # replays *before* re-journaling through this same path.
                managed.journal = self.journals.create(name, dataset)
            self._sessions[name] = managed
            self._mirror_open(+1)
            while len(self._sessions) > self.max_sessions:
                # Least-recently-used first, but never a session with an
                # in-flight borrow: evicting one would orphan the running
                # request (it finishes on a session the manager no longer
                # knows, and the client's next request gets
                # UnknownSession). Take the next-least-recent idle one;
                # if every other session is busy, temporarily exceed the
                # bound rather than break an in-flight request.
                victim = next(
                    (
                        candidate
                        for candidate in self._sessions.values()
                        if candidate.busy == 0 and candidate.name != name
                    ),
                    None,
                )
                if victim is None:
                    break
                del self._sessions[victim.name]
                self._lru_evictions += 1
                if obs_enabled():
                    self._m_lru.inc()
                self._mirror_open(-1)
            return managed

    def get(self, name: str) -> ManagedSession:
        """Look up a live session; raises ServiceError when unknown."""
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            managed = self._sessions.get(name)
            if managed is None:
                raise ServiceError(
                    f"unknown session {name!r}; open it first",
                    kind="UnknownSession",
                )
            self._touch_locked(managed, now)
            return managed

    @contextmanager
    def borrow(self, name: str) -> Iterator[DBWipesSession]:
        """Exclusive access to a session for one request.

        Bumps LRU recency and the request counter, then yields the
        underlying :class:`DBWipesSession` under its per-session lock.
        While borrowed, the session is marked busy so no eviction path
        (LRU or TTL) can drop it out from under the running request.
        """
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            managed = self._sessions.get(name)
            if managed is None:
                raise ServiceError(
                    f"unknown session {name!r}; open it first",
                    kind="UnknownSession",
                )
            self._touch_locked(managed, now)
            managed.busy += 1
        try:
            with managed.lock:
                managed.requests += 1
                if obs_enabled():
                    self._m_requests.inc()
                yield managed.session
        finally:
            with self._lock:
                managed.busy -= 1

    def close(self, name: str) -> None:
        """Drop a session explicitly."""
        with self._lock:
            if self._sessions.pop(name, None) is None:
                raise ServiceError(
                    f"unknown session {name!r}", kind="UnknownSession"
                )
            self._mirror_open(-1)
        if self.journals is not None:
            # A deliberate close forgets the history too; only eviction
            # and crashes leave the journal behind for recovery.
            self.journals.discard(name)

    # ------------------------------------------------------------------
    # journaling & recovery
    # ------------------------------------------------------------------

    def record(self, name: str, cmd: str, args: dict) -> None:
        """Journal one successfully executed state-mutating command.

        Called by the dispatcher *after* the handler returns, so failed
        commands never pollute the replay history. Publication failures
        degrade (counted in the store) rather than failing the request.
        """
        with self._lock:
            managed = self._sessions.get(name)
            journal = managed.journal if managed is not None else None
        if journal is not None:
            journal.append(cmd, args)

    def journal_all(self) -> int:
        """Re-publish every live session's journal from memory.

        The drain path calls this before handing sessions off: the
        in-memory record list is authoritative, so this also repairs a
        journal file that was corrupted or lost on disk.
        """
        if self.journals is None:
            return 0
        with self._lock:
            journals = [
                managed.journal
                for managed in self._sessions.values()
                if managed.journal is not None
            ]
        for journal in journals:
            journal.publish()
        return len(journals)

    def mark_recovered(self) -> None:
        """Count one journal-replay recovery (called by the dispatcher)."""
        if obs_enabled():
            self._m_recovered.inc()

    def evict_expired(self) -> int:
        """Reap TTL-expired sessions now; returns how many were dropped."""
        with self._lock:
            return self._expire_locked(self._clock())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def list(self) -> list[dict]:
        """Summaries of every live session, least recently used first."""
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            return [managed.info(now) for managed in self._sessions.values()]

    def stats(self) -> dict:
        """Manager counters plus the shared preprocess-cache counters."""
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            return {
                "sessions": len(self._sessions),
                "max_sessions": self.max_sessions,
                "ttl_seconds": self.ttl_seconds,
                "lru_evictions": self._lru_evictions,
                "ttl_evictions": self._ttl_evictions,
                "datasets": list(self.catalog.names),
                "preprocess_cache": self.preprocess_cache.stats(),
                "journal": (
                    self.journals.stats() if self.journals is not None else None
                ),
                "backend": getattr(self.config, "backend", "in_process")
                if self.config is not None
                else "in_process",
                "n_partitions": int(getattr(self.config, "n_partitions", 1))
                if self.config is not None
                else 1,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._sessions

    # ------------------------------------------------------------------
    # internals (callers hold self._lock)
    # ------------------------------------------------------------------

    def _touch_locked(self, managed: ManagedSession, now: float) -> None:
        managed.last_used = now
        self._sessions.move_to_end(managed.name)

    def _mirror_open(self, delta: int) -> None:
        """Move the shared open-sessions gauge, if telemetry is on.

        Every registry mirror in this class goes through an
        ``obs_enabled()`` gate — uniformly, so that toggling the kill
        switch mid-process cannot desync the gauge from the eviction
        counters (they all freeze and thaw together).
        """
        if not obs_enabled():
            return
        if delta >= 0:
            self._m_open.inc(delta)
        else:
            self._m_open.dec(-delta)

    def _expire_locked(self, now: float) -> int:
        if self.ttl_seconds is None:
            return 0
        expired = [
            name
            for name, managed in self._sessions.items()
            # A busy session is never reaped mid-request, even when its
            # TTL has lapsed; it becomes eligible again once released.
            if now - managed.last_used > self.ttl_seconds and managed.busy == 0
        ]
        for name in expired:
            del self._sessions[name]
            self._ttl_evictions += 1
            if obs_enabled():
                self._m_ttl.inc()
            self._mirror_open(-1)
        return len(expired)
