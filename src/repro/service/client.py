"""A blocking JSON-line client for the DBWipes service.

:class:`ServiceClient` owns one TCP connection and one session name; its
methods mirror :class:`~repro.frontend.session.DBWipesSession` so a
local script ports to the service by swapping the object::

    with ServiceClient(host, port, session="alice") as client:
        client.open("fec")
        client.execute(client.bootstrap)
        client.select_results(brush={"below": 0.0})
        client.zoom()
        client.select_inputs(brush={"below": 0.0})
        client.set_metric("too_low", threshold=0.0)
        report = client.debug()
        client.apply(0)

Server-reported failures raise :class:`~repro.errors.ServiceError`
whose ``kind`` is the server-side exception class name.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Callable, Iterator

from ..errors import ProtocolError, ServiceError
from .protocol import MAX_LINE_BYTES, decode_line, encode

#: Error kinds :meth:`ServiceClient.call_with_retry` treats as
#: transient. ``ServerBusy`` is load shedding (honour its
#: ``retry_after``); ``WorkerCrashed``/``WorkerTimeout`` escape to the
#: client only when the router exhausted failover (or runs without a
#: journal tier), and the worker has been respawned by the time the
#: error arrives — a short backoff and a retry usually succeeds.
RETRYABLE_KINDS = frozenset({"ServerBusy", "WorkerCrashed", "WorkerTimeout"})


class ServiceClient:
    """One connection + one (optional) default session name."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        session: str | None = None,
        timeout: float | None = 60.0,
    ):
        self.host = host
        self.port = port
        self.session = session
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._rfile = None
        self._next_id = 0
        #: The dataset's suggested first query, filled in by :meth:`open`.
        self.bootstrap: str | None = None
        #: Trace id of the most recent response (server-stamped), so a
        #: ``debug()`` can be followed by ``trace(client.last_trace)``.
        self.last_trace: str | None = None

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------

    def connect(self) -> "ServiceClient":
        """Open the TCP connection (idempotent)."""
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._rfile = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        """Close the connection (the server keeps the session alive)."""
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------

    def call(self, cmd: str, session: str | None = None, **args: Any) -> Any:
        """Send one request and block for its response's ``result``."""
        request_id = self._send(cmd, session, args)
        while True:
            response = self._read_frame(request_id)
            if response.get("partial"):
                # A streamed frame the caller did not ask to iterate
                # (``stream=True`` passed through plain call()): drain it
                # and keep waiting for the terminating envelope.
                continue
            return self._unwrap(response)

    def call_with_retry(
        self,
        cmd: str,
        session: str | None = None,
        retries: int = 4,
        base_backoff: float = 0.05,
        max_backoff: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
        **args: Any,
    ) -> Any:
        """Like :meth:`call`, but retries transient failures with
        jittered exponential backoff.

        Retries every kind in :data:`RETRYABLE_KINDS` for up to
        ``retries`` additional attempts. The schedule is
        ``base_backoff * 2**attempt`` capped at ``max_backoff``, with
        ±50% jitter so synchronized clients spread out; a server-sent
        ``retry_after`` hint (ServerBusy load shedding) raises the
        floor when it asks for a longer wait. ``sleep`` and ``rng`` are
        injectable so tests can pin the schedule with a fake clock.
        """
        if rng is None:
            rng = random.Random()
        attempt = 0
        while True:
            try:
                return self.call(cmd, session=session, **args)
            except ServiceError as error:
                if error.kind not in RETRYABLE_KINDS or attempt >= retries:
                    raise
                delay = min(max_backoff, base_backoff * (2**attempt))
                delay *= 0.5 + rng.random()  # jitter in [0.5x, 1.5x)
                hint = error.retry_after
                if hint is not None:
                    try:
                        delay = max(delay, float(hint))
                    except (TypeError, ValueError):
                        pass
                sleep(delay)
                attempt += 1

    def stream(
        self, cmd: str, session: str | None = None, **args: Any
    ) -> Iterator[dict]:
        """Send one request and iterate its response frames in order.

        Yields each ``{"partial": True, "seq": ..., "result": ...}``
        frame as it arrives, then ``{"partial": False, "result": ...}``
        built from the terminating envelope, and stops. Server-reported
        errors raise :class:`ServiceError` exactly as :meth:`call` does.
        Pass ``stream=True`` in ``args`` to actually request partial
        frames; without it the server sends only the final envelope and
        this yields a single item.
        """
        request_id = self._send(cmd, session, args)
        while True:
            response = self._read_frame(request_id)
            if response.get("partial"):
                yield {
                    "partial": True,
                    "seq": response.get("seq"),
                    "result": response.get("result"),
                }
                continue
            yield {"partial": False, "result": self._unwrap(response)}
            return

    def _send(self, cmd: str, session: str | None, args: dict[str, Any]) -> int:
        self.connect()
        assert self._sock is not None and self._rfile is not None
        self._next_id += 1
        request_id = self._next_id
        request: dict[str, Any] = {"id": request_id, "cmd": cmd}
        target = session if session is not None else self.session
        if target is not None:
            request["session"] = target
        if args:
            request["args"] = args
        payload = encode(request)
        if len(payload) > MAX_LINE_BYTES:
            # Sending it would desync the line framing on both ends.
            raise ProtocolError(
                f"request exceeds {MAX_LINE_BYTES} bytes; send fewer values"
            )
        try:
            self._sock.sendall(payload)
        except OSError as error:
            self.close()
            raise ServiceError(f"connection to {self.host}:{self.port} failed: {error}")
        return request_id

    def _read_frame(self, request_id: int) -> dict:
        assert self._rfile is not None
        try:
            line = self._rfile.readline(MAX_LINE_BYTES + 1)
        except OSError as error:
            self.close()
            raise ServiceError(f"connection to {self.host}:{self.port} failed: {error}")
        if not line:
            self.close()
            raise ServiceError("server closed the connection")
        if not line.endswith(b"\n"):
            # Truncated response: the stream cannot be re-framed.
            self.close()
            raise ProtocolError(
                f"response exceeds {MAX_LINE_BYTES} bytes or was truncated; "
                "connection closed"
            )
        response = decode_line(line)
        if response.get("id") != request_id:
            # The connection still has a response framed for some other
            # id; any later call() would silently consume it and return
            # the wrong result. Drop the connection so the next call
            # starts on a clean stream (mirrors the truncated-line path).
            self.close()
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}; connection closed"
            )
        return response

    def _unwrap(self, response: dict) -> Any:
        trace = response.get("trace")
        if isinstance(trace, str):
            self.last_trace = trace
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServiceError(
            str(error.get("message", "unknown server error")),
            kind=error.get("kind"),
            retry_after=error.get("retry_after"),
        )

    # ------------------------------------------------------------------
    # convenience wrappers (mirror DBWipesSession)
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness + protocol version."""
        return self.call("ping")

    def stats(self) -> dict:
        """Server counters (sessions, evictions, preprocess cache)."""
        return self.call("stats")

    def sessions(self) -> list[dict]:
        """Summaries of every live session."""
        return self.call("sessions")["sessions"]

    def metrics(self) -> dict:
        """The cluster-merged telemetry registry snapshot."""
        return self.call("metrics")

    def trace(self, trace_id: str | None = None) -> dict:
        """One trace's spans + tree (defaults to the most recent trace)."""
        return self.call("trace", trace_id=trace_id)

    def recover(self, session: str | None = None) -> dict:
        """Replay a journaled session on its owning worker."""
        target = session if session is not None else self.session
        if not target:
            raise ServiceError("no session name set; pass session=...")
        return self.call("recover", session=target)

    def drain(
        self, worker: int, deadline: float = 5.0, restart: bool = False
    ) -> dict:
        """Gracefully drain one worker (optionally restarting it)."""
        return self.call(
            "drain", worker=worker, deadline=deadline, restart=restart
        )

    def resize(self, workers: int) -> dict:
        """Grow or shrink the worker tier, rebalancing placements."""
        return self.call("resize", workers=workers)

    def open(self, dataset: str, session: str | None = None) -> dict:
        """Open (or rejoin) this client's session on a dataset."""
        if session is not None:
            self.session = session
        if not self.session:
            raise ServiceError("no session name set; pass session=...")
        result = self.call("open", dataset=dataset, name=self.session)
        self.bootstrap = result.get("bootstrap")
        return result

    def close_session(self) -> dict:
        """Tear down the server-side session."""
        return self.call("close")

    def execute(self, sql: str, max_rows: int | None = 200) -> dict:
        """Run a new query."""
        return self.call("execute", sql=sql, max_rows=max_rows)

    def result(self, max_rows: int | None = 200) -> dict:
        """Re-fetch the current result."""
        return self.call("result", max_rows=max_rows)

    def render(self, width: int = 72, height: int = 14, y: str | None = None) -> str:
        """The server-rendered ASCII scatterplot."""
        return self.call("render", width=width, height=height, y=y)["text"]

    def select_results(
        self,
        rows: list[int] | None = None,
        brush: dict | list[dict] | None = None,
        x: str | None = None,
        y: str | None = None,
    ) -> list[int]:
        """Brush (or list) the suspicious output rows S."""
        return self.call(
            "select_results", rows=rows, brush=brush, x=x, y=y
        )["selected_rows"]

    def zoom(
        self,
        x: str | None = None,
        y: str | None = None,
        max_points: int | None = 2000,
    ) -> dict:
        """Zoom into the input tuples behind S."""
        return self.call("zoom", x=x, y=y, max_points=max_points)

    def select_inputs(
        self, tids: list[int] | None = None, brush: dict | list[dict] | None = None
    ) -> list[int]:
        """Brush (or list) the suspicious input tuples D'."""
        return self.call("select_inputs", tids=tids, brush=brush)["dprime"]

    def error_form(self, agg: str | None = None) -> list[dict]:
        """The error-metric options for the debugged aggregate."""
        return self.call("error_form", agg=agg)["options"]

    def set_metric(self, form: str, agg: str | None = None, **params: float) -> str:
        """Choose the error metric ε by form id."""
        return self.call("set_metric", form=form, agg=agg, params=params)["metric"]

    def debug(self, agg: str | None = None, max_rows: int | None = None) -> dict:
        """Run ranked provenance; returns the report payload."""
        return self.call("debug", agg=agg, max_rows=max_rows)

    def debug_stream(
        self, agg: str | None = None, max_rows: int | None = None
    ) -> Iterator[dict]:
        """Streamed ranked provenance: partial rankings, then the report.

        Yields ``{"partial": True, "seq": n, "result": {...}}`` frames as
        merge rounds survive server-side, then ``{"partial": False,
        "result": <full report payload>}``. Works on the async gateway
        and the threaded server alike, single-process or routed —
        workers forward partial frames back over their pipe. A
        mid-stream failover replays the stream from a replica, so
        partial frames are at-least-once; the final frame is exact.
        """
        return self.stream("debug", agg=agg, max_rows=max_rows, stream=True)

    def apply(self, index: int, max_rows: int | None = 200) -> dict:
        """Click the ranked predicate at 0-based ``index``."""
        return self.call("apply", index=index, max_rows=max_rows)

    def undo(self, max_rows: int | None = 200) -> dict:
        """Undo the most recent cleaning."""
        return self.call("undo", max_rows=max_rows)

    def redo(self, max_rows: int | None = 200) -> dict:
        """Re-apply the most recently undone cleaning."""
        return self.call("redo", max_rows=max_rows)

    def sql(self) -> str:
        """The session's current query text."""
        return self.call("sql")["sql"]

    def snapshot(self) -> dict:
        """The session's state snapshot."""
        return self.call("snapshot")
