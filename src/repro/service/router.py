"""Cache-affine routing: which worker serves which session.

The routing rule is **consistent hashing on the dataset id**: every
session opened on dataset ``d`` lands on ``ring.node_for(d)``, so one
worker owns all sessions of a dataset — and with them every shared
artifact those sessions hit (the dataset build itself, the
``PreprocessCache`` entry for a debugged selection, its ``SplitIndex``
and clause-mask memos). That affinity is the serving story: the
preprocess-cache hit rate measured on the single-process tier (~0.96)
carries over to N processes because a dataset's requests never spray
across shards. Consistent hashing (not ``hash(d) % N``) keeps most
assignments stable when the worker count changes between deployments.

The :class:`RoutingDispatcher` is the front end's brain: server-scoped
commands are answered or fanned out here (``ping`` locally, ``stats`` /
``sessions`` scatter-gathered across workers), ``open`` routes by
dataset and records the session→worker assignment, and every
session-scoped command follows that assignment. Unknown sessions are
rejected at the front without a worker round-trip, mirroring the
``UnknownSession`` error the in-process manager raises.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import threading
import time
from contextlib import contextmanager
from typing import Hashable, Iterator, Sequence

from ..errors import ReproError
from ..obs import logs as obs_logs
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.flags import enabled as obs_enabled
from . import protocol
from .handlers import SLOW_LOG_LIMIT, _SERVER_HANDLERS, _SESSION_HANDLERS
from .workers import WorkerPool


class HashRing:
    """Consistent hashing over a fixed node set with virtual replicas.

    Hashes are ``blake2b`` (stable across processes and runs — never the
    builtin ``hash()``, which is salted per interpreter). Each node gets
    ``replicas`` points on the ring; a key belongs to the first node
    point at or clockwise of its own hash.
    """

    def __init__(self, nodes: Sequence[Hashable], replicas: int = 64):
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        points = sorted(
            (self._hash(f"{node}#{replica}"), node)
            for node in nodes
            for replica in range(replicas)
        )
        self._hashes = [point[0] for point in points]
        self._nodes = [point[1] for point in points]

    @staticmethod
    def _hash(text: str) -> int:
        digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def node_for(self, key: str) -> Hashable:
        """The node owning ``key`` — deterministic across processes."""
        position = bisect.bisect_right(self._hashes, self._hash(str(key)))
        return self._nodes[position % len(self._nodes)]


class RoutingDispatcher:
    """Scatter-gather front end over a :class:`WorkerPool`.

    Exposes both a blocking :meth:`handle` (threaded server) and an
    awaitable :meth:`handle_async` (asyncio gateway). The two share all
    validation, placement bookkeeping, and merge logic — only the
    transport differs: blocking pipe waits versus coroutine-parking
    :meth:`WorkerPool.call_async`, with broadcasts fanned out
    concurrently via ``asyncio.gather`` on the async path.
    """

    #: Partial debug frames cannot cross the worker pipe (the pipeline
    #: runs in another process); routed ``debug`` streams degrade to the
    #: final envelope only.
    supports_streaming = False

    def __init__(self, pool: WorkerPool, replicas: int = 64):
        self.pool = pool
        self.ring = HashRing(list(range(len(pool))), replicas=replicas)
        self._lock = threading.Lock()
        #: session name -> (worker index, dataset name)
        self._placements: dict[str, tuple[int, str]] = {}
        self._routed = 0

    # -- dispatch entry ------------------------------------------------

    def handle(self, message: dict, emit_partial=None) -> dict:
        """Route one decoded request; always returns an envelope.

        The front end is the server accept path of the cluster: the root
        ``server.<cmd>`` span is minted here (or grafted onto a trace
        context the client sent), every worker forward rides a child
        ``router.<cmd>`` span whose context crosses the pipe in the
        message's ``trace`` field, and the response envelope is stamped
        with the trace id so clients can recover the full span tree.

        ``emit_partial`` is accepted for dispatcher-interface parity and
        ignored: see :attr:`supports_streaming`.
        """
        request_id = message.get("id")
        try:
            cmd, session, args = protocol.validate_request(message)
        except ReproError as error:
            kind = getattr(error, "kind", None) or type(error).__name__
            return protocol.error_response(request_id, kind, str(error))
        with self._request_scope(cmd, session, message) as holder:
            holder["envelope"] = self._dispatch(
                request_id, cmd, session, args, message
            )
        return holder["envelope"]

    async def handle_async(self, message: dict, emit_partial=None) -> dict:
        """:meth:`handle`, awaitable: pipe waits park coroutines.

        Identical envelopes, spans, and metrics — only the transport
        changes, so one stuck worker stalls its caller's coroutine and
        nothing else on the event loop.
        """
        request_id = message.get("id")
        try:
            cmd, session, args = protocol.validate_request(message)
        except ReproError as error:
            kind = getattr(error, "kind", None) or type(error).__name__
            return protocol.error_response(request_id, kind, str(error))
        with self._request_scope(cmd, session, message) as holder:
            holder["envelope"] = await self._dispatch_async(
                request_id, cmd, session, args, message
            )
        return holder["envelope"]

    @contextmanager
    def _request_scope(
        self, cmd: str, session: str | None, message: dict
    ) -> Iterator[dict]:
        """The per-request span + metrics + slow-log + trace stamping.

        Yields a one-slot holder dict; the caller stores the envelope
        under ``"envelope"`` before the context exits.
        """
        holder: dict = {"envelope": None}
        trace_id, parent_id = obs_trace.from_wire(message)
        start = time.perf_counter()
        with obs_trace.span(
            f"server.{cmd}", trace_id=trace_id, parent_id=parent_id
        ) as span:
            yield holder
            envelope = holder["envelope"]
            if envelope is not None and not envelope.get("ok"):
                error = envelope.get("error")
                if isinstance(error, dict):
                    span.set(error=error.get("kind"))
            stamped_trace = span.trace_id
        seconds = time.perf_counter() - start
        if obs_enabled():
            labels = {"cmd": cmd, "role": "server"}
            reg = obs_metrics.registry()
            reg.counter(
                "dbwipes_requests_total",
                labels=labels,
                help="Requests dispatched, by command and process role.",
            ).inc()
            reg.histogram(
                "dbwipes_request_seconds",
                labels=labels,
                help="Request wall seconds, by command and process role.",
            ).observe(seconds)
            obs_logs.maybe_log_slow(cmd, seconds, role="server", session=session)
        if stamped_trace is not None and holder["envelope"] is not None:
            holder["envelope"]["trace"] = stamped_trace

    def _dispatch(
        self, request_id, cmd: str, session: str | None, args: dict, message: dict
    ) -> dict:
        if cmd == "ping":
            return self._pong(request_id)
        if cmd == "stats":
            return self._merge_stats(request_id, self._broadcast("stats", message))
        if cmd == "sessions":
            return self._merge_sessions(
                request_id, self._broadcast("sessions", message)
            )
        if cmd == "metrics":
            return self._merge_metrics(
                request_id, self._broadcast("metrics", message)
            )
        if cmd == "storage":
            return self._merge_storage(
                request_id, self._broadcast("storage", message)
            )
        if cmd == "trace":
            resolved = self._trace_resolve(request_id, message, args)
            if isinstance(resolved, dict):
                return resolved
            trace_id, spans, dropped, explicit = resolved
            return self._merge_trace(
                request_id,
                trace_id,
                spans,
                dropped,
                self._broadcast("trace", explicit),
            )
        if cmd == "open":
            checked = self._open_check(request_id, args)
            if isinstance(checked, dict):
                return checked
            name, dataset, worker = checked
            envelope = self._forward(worker, "open", message)
            return self._open_finish(envelope, worker, name, dataset)
        if cmd in _SESSION_HANDLERS:
            checked = self._route_check(request_id, cmd, session)
            if isinstance(checked, dict):
                return checked
            envelope = self._forward(checked, cmd, message)
            return self._route_finish(envelope, cmd, session, checked)
        return self._unknown_command(request_id, cmd)

    async def _dispatch_async(
        self, request_id, cmd: str, session: str | None, args: dict, message: dict
    ) -> dict:
        if cmd == "ping":
            return self._pong(request_id)
        if cmd == "stats":
            return self._merge_stats(
                request_id, await self._broadcast_async("stats", message)
            )
        if cmd == "sessions":
            return self._merge_sessions(
                request_id, await self._broadcast_async("sessions", message)
            )
        if cmd == "metrics":
            return self._merge_metrics(
                request_id, await self._broadcast_async("metrics", message)
            )
        if cmd == "storage":
            return self._merge_storage(
                request_id, await self._broadcast_async("storage", message)
            )
        if cmd == "trace":
            resolved = self._trace_resolve(request_id, message, args)
            if isinstance(resolved, dict):
                return resolved
            trace_id, spans, dropped, explicit = resolved
            return self._merge_trace(
                request_id,
                trace_id,
                spans,
                dropped,
                await self._broadcast_async("trace", explicit),
            )
        if cmd == "open":
            checked = self._open_check(request_id, args)
            if isinstance(checked, dict):
                return checked
            name, dataset, worker = checked
            envelope = await self._forward_async(worker, "open", message)
            return self._open_finish(envelope, worker, name, dataset)
        if cmd in _SESSION_HANDLERS:
            checked = self._route_check(request_id, cmd, session)
            if isinstance(checked, dict):
                return checked
            envelope = await self._forward_async(checked, cmd, message)
            return self._route_finish(envelope, cmd, session, checked)
        return self._unknown_command(request_id, cmd)

    def _pong(self, request_id) -> dict:
        return protocol.ok_response(
            request_id,
            {
                "pong": True,
                "version": protocol.PROTOCOL_VERSION,
                "workers": len(self.pool),
            },
        )

    @staticmethod
    def _unknown_command(request_id, cmd: str) -> dict:
        known = sorted(set(_SERVER_HANDLERS) | set(_SESSION_HANDLERS))
        return protocol.error_response(
            request_id, "ProtocolError", f"unknown command {cmd!r} (known: {known})"
        )

    # -- traced worker forwards ----------------------------------------

    def _forward(self, worker: int, cmd: str, message: dict) -> dict:
        """One worker call under a ``router.<cmd>`` span.

        The span's context is injected into the forwarded message's
        ``trace`` field, so the worker's ``worker.<cmd>`` span (and the
        pipeline stages underneath) link into the front end's trace.
        """
        with obs_trace.span(f"router.{cmd}", worker=worker) as span:
            context = obs_trace.wire_context(span)
            forwarded = {**message, "trace": context} if context else message
            return self.pool.call(worker, forwarded)

    def _broadcast(self, cmd: str, message: dict) -> list[dict]:
        """The forward above, fanned out to every worker in order."""
        return [
            self._forward(index, cmd, message) for index in range(len(self.pool))
        ]

    async def _forward_async(self, worker: int, cmd: str, message: dict) -> dict:
        """:meth:`_forward` without blocking the event loop."""
        with obs_trace.span(f"router.{cmd}", worker=worker) as span:
            context = obs_trace.wire_context(span)
            forwarded = {**message, "trace": context} if context else message
            return await self.pool.call_async(worker, forwarded)

    async def _broadcast_async(self, cmd: str, message: dict) -> list[dict]:
        """All workers concurrently; envelopes still in worker order."""
        return list(
            await asyncio.gather(
                *(
                    self._forward_async(index, cmd, message)
                    for index in range(len(self.pool))
                )
            )
        )

    # -- server-scoped fan-out -----------------------------------------

    def _merge_stats(self, request_id, envelopes: list[dict]) -> dict:
        """Worker stats merged into true cluster totals.

        Every per-worker counter is *summed* and the cache hit rate is
        recomputed from the summed lookups — never averaged across
        workers, because consistent hashing skews load per shard (a
        99%-hit worker serving 10× the traffic of a 50%-hit worker must
        dominate the cluster rate).
        """
        per_worker = []
        sessions = 0
        hits = misses = evictions = entries = 0
        disk_hits = disk_misses = disk_writes = 0
        lru_evictions = ttl_evictions = 0
        worker_requests = restarts = 0
        for process_stats, envelope in zip(self.pool.stats(), envelopes):
            entry = dict(process_stats)
            worker_requests += int(entry.get("requests", 0))
            restarts += int(entry.get("restarts", 0))
            if envelope.get("ok"):
                stats = envelope["result"]
                entry["stats"] = stats
                sessions += int(stats.get("sessions", 0))
                lru_evictions += int(stats.get("lru_evictions", 0))
                ttl_evictions += int(stats.get("ttl_evictions", 0))
                cache = stats.get("preprocess_cache", {})
                hits += int(cache.get("hits", 0))
                misses += int(cache.get("misses", 0))
                evictions += int(cache.get("evictions", 0))
                entries += int(cache.get("entries", 0))
                disk_hits += int(cache.get("disk_hits", 0))
                disk_misses += int(cache.get("disk_misses", 0))
                disk_writes += int(cache.get("disk_writes", 0))
            else:
                entry["error"] = envelope.get("error")
            per_worker.append(entry)
        total = hits + misses
        with self._lock:
            routed = self._routed
            placements = len(self._placements)
        return protocol.ok_response(
            request_id,
            {
                "workers": len(self.pool),
                "start_method": self.pool.start_method,
                "sessions": sessions,
                "placements": placements,
                "routed_requests": routed,
                "worker_requests": worker_requests,
                "restarts": restarts,
                "lru_evictions": lru_evictions,
                "ttl_evictions": ttl_evictions,
                "preprocess_cache": {
                    "hits": hits,
                    "misses": misses,
                    "evictions": evictions,
                    "entries": entries,
                    "hit_rate": (hits / total) if total else 0.0,
                    "disk_hits": disk_hits,
                    "disk_misses": disk_misses,
                    "disk_writes": disk_writes,
                },
                "per_worker": per_worker,
            },
        )

    def _merge_storage(self, request_id, envelopes: list[dict]) -> dict:
        """Cluster view of the durable tier.

        Every worker shares one data dir, so the dataset/table listing
        comes from the first healthy worker; the per-worker artifact
        *activity* counters (saves/loads) are summed — they live in each
        worker's process, not on disk.
        """
        merged: dict = {
            "workers": len(self.pool),
            "data_dir": None,
            "datasets": [],
            "preprocess_artifacts": None,
        }
        saves = loads = load_failures = entries = 0
        seen_artifacts = False
        first_ok = None
        for envelope in envelopes:
            if not envelope.get("ok"):
                continue
            result = envelope["result"]
            if first_ok is None:
                first_ok = result
            artifacts = result.get("preprocess_artifacts")
            if isinstance(artifacts, dict):
                seen_artifacts = True
                saves += int(artifacts.get("saves", 0))
                loads += int(artifacts.get("loads", 0))
                load_failures += int(artifacts.get("load_failures", 0))
                entries = max(entries, int(artifacts.get("entries", 0)))
        if first_ok is not None:
            merged["data_dir"] = first_ok.get("data_dir")
            merged["datasets"] = first_ok.get("datasets", [])
        if seen_artifacts:
            merged["preprocess_artifacts"] = {
                "entries": entries,
                "saves": saves,
                "loads": loads,
                "load_failures": load_failures,
            }
        return protocol.ok_response(request_id, merged)

    def _merge_sessions(self, request_id, envelopes: list[dict]) -> dict:
        """Every worker's session list, each entry tagged with its worker."""
        merged = []
        for index, envelope in enumerate(envelopes):
            if not envelope.get("ok"):
                continue
            for info in envelope["result"].get("sessions", []):
                info = dict(info)
                info["worker"] = index
                merged.append(info)
        return protocol.ok_response(request_id, {"sessions": merged})

    def _merge_metrics(self, request_id, envelopes: list[dict]) -> dict:
        """Cluster exposition: scatter registries, merge correctly.

        Counters and gauges sum; histogram buckets sum; nothing is ever
        averaged. The front end's own registry (request counters, worker
        crash/respawn/timeout counters) joins the merge alongside every
        worker's snapshot.
        """
        front = obs_metrics.registry().snapshot()
        snapshots = [front]
        per_worker = []
        slow = list(obs_logs.logger().recent("slow_request"))
        for index, envelope in enumerate(envelopes):
            if envelope.get("ok"):
                result = envelope["result"]
                snapshot = result.get("merged")
                if isinstance(snapshot, dict):
                    snapshots.append(snapshot)
                per_worker.append({"worker": index, "metrics": snapshot})
                slow.extend(result.get("slow_requests") or ())
            else:
                per_worker.append(
                    {"worker": index, "error": envelope.get("error")}
                )
        slow.sort(key=lambda record: record.get("ts", 0.0))
        return protocol.ok_response(
            request_id,
            {
                "workers": len(self.pool),
                "merged": obs_metrics.merge_snapshots(snapshots),
                "per_worker": per_worker,
                "slow_requests": slow[-SLOW_LOG_LIMIT:],
            },
        )

    def _trace_resolve(
        self, request_id, message: dict, args: dict
    ) -> dict | tuple:
        """Resolve the target trace id on the front end.

        The default trace id resolves *here* (most recently finished
        front-end trace, excluding the in-flight request's own) and the
        broadcast carries it explicitly, so every worker contributes the
        spans it recorded for that exact trace. Returns an early
        envelope when there is nothing to gather, else
        ``(trace_id, front_spans, front_dropped, explicit_message)``.
        """
        tracer = obs_trace.tracer()
        trace_id = args.get("trace_id")
        if trace_id is None:
            current = tracer.current()
            trace_id = tracer.last_trace_id(
                exclude=current[0] if current else None
            )
        if not isinstance(trace_id, str) or not trace_id:
            return protocol.ok_response(
                request_id,
                {"trace_id": None, "spans": [], "tree": [], "dropped": 0},
            )
        spans = tracer.spans(trace_id)
        dropped = tracer.dropped(trace_id)
        explicit = {
            **message,
            "args": {**args, "trace_id": trace_id},
        }
        return trace_id, spans, dropped, explicit

    def _merge_trace(
        self, request_id, trace_id: str, spans: list, dropped: int,
        envelopes: list[dict],
    ) -> dict:
        """Worker span contributions folded into the front end's."""
        for envelope in envelopes:
            if not envelope.get("ok"):
                continue
            result = envelope["result"]
            spans.extend(result.get("spans") or ())
            dropped += int(result.get("dropped") or 0)
        return protocol.ok_response(
            request_id,
            {
                "trace_id": trace_id,
                "spans": spans,
                "tree": obs_trace.span_tree(spans),
                "dropped": dropped,
            },
        )

    # -- session routing -----------------------------------------------

    def _open_check(self, request_id, args: dict) -> dict | tuple[str, str, int]:
        """Validate an ``open`` and pick its worker by dataset hash.

        Returns an error envelope, or ``(name, dataset, worker)``.
        """
        name = args.get("name")
        dataset = args.get("dataset")
        if not isinstance(name, str) or not name:
            return protocol.error_response(
                request_id,
                "ProtocolError",
                "'open' needs a non-empty 'name' string in args",
            )
        if not isinstance(dataset, str) or not dataset:
            return protocol.error_response(
                request_id,
                "ProtocolError",
                "'open' needs a non-empty 'dataset' string in args",
            )
        with self._lock:
            placement = self._placements.get(name)
        if placement is not None and placement[1] != dataset:
            # Mirror the manager's reopen-on-another-dataset error at the
            # front: the old placement's worker owns the live session.
            return protocol.error_response(
                request_id,
                "ServiceError",
                f"session {name!r} is open on dataset {placement[1]!r}; "
                f"close it before reopening on {dataset!r}",
            )
        return name, dataset, int(self.ring.node_for(dataset))

    def _open_finish(
        self, envelope: dict, worker: int, name: str, dataset: str
    ) -> dict:
        """Record (or roll back) the placement an ``open`` produced."""
        if envelope.get("ok"):
            with self._lock:
                self._placements[name] = (worker, dataset)
                self._routed += 1
            protocol.annotate_worker(envelope, worker)
        elif self._crashed(envelope):
            self._drop_worker_placements(worker)
        return envelope

    def _route_check(
        self, request_id, cmd: str, session: str | None
    ) -> dict | int:
        """Resolve a session-scoped command's worker from its placement.

        Returns an error envelope, or the owning worker index.
        """
        if not session:
            return protocol.error_response(
                request_id,
                "ProtocolError",
                f"command {cmd!r} needs a 'session' field",
            )
        with self._lock:
            placement = self._placements.get(session)
        if placement is None:
            return protocol.error_response(
                request_id,
                "UnknownSession",
                f"unknown session {session!r}; open it first",
            )
        return placement[0]

    def _route_finish(
        self, envelope: dict, cmd: str, session: str | None, worker: int
    ) -> dict:
        """Placement bookkeeping after a routed session command."""
        with self._lock:
            self._routed += 1
        if cmd == "close" and (
            envelope.get("ok") or self._error_kind(envelope) == "UnknownSession"
        ):
            with self._lock:
                self._placements.pop(session, None)
        if self._crashed(envelope):
            # The dead process took its sessions with it; drop their
            # placements so clients get a fast UnknownSession and reopen
            # onto the respawned worker.
            self._drop_worker_placements(worker)
        return envelope

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _error_kind(envelope: dict) -> str | None:
        error = envelope.get("error")
        return error.get("kind") if isinstance(error, dict) else None

    @classmethod
    def _crashed(cls, envelope: dict) -> bool:
        return cls._error_kind(envelope) == "WorkerCrashed"

    def _drop_worker_placements(self, worker: int) -> None:
        with self._lock:
            self._placements = {
                name: placement
                for name, placement in self._placements.items()
                if placement[0] != worker
            }

    def placement_of(self, session: str) -> tuple[int, str] | None:
        """The (worker, dataset) assignment of a session, if any."""
        with self._lock:
            return self._placements.get(session)

    def close(self) -> None:
        """Shut the pool down."""
        self.pool.close()
