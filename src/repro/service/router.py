"""Cache-affine routing: which worker serves which session.

The routing rule is **consistent hashing on the dataset id**: every
session opened on dataset ``d`` lands on ``ring.node_for(d)``, so one
worker owns all sessions of a dataset — and with them every shared
artifact those sessions hit (the dataset build itself, the
``PreprocessCache`` entry for a debugged selection, its ``SplitIndex``
and clause-mask memos). That affinity is the serving story: the
preprocess-cache hit rate measured on the single-process tier (~0.96)
carries over to N processes because a dataset's requests never spray
across shards. Consistent hashing (not ``hash(d) % N``) keeps most
assignments stable when the worker count changes between deployments.

The :class:`RoutingDispatcher` is the front end's brain: server-scoped
commands are answered or fanned out here (``ping`` locally, ``stats`` /
``sessions`` scatter-gathered across workers), ``open`` routes by
dataset and records the session→worker assignment, and every
session-scoped command follows that assignment. Unknown sessions are
rejected at the front without a worker round-trip, mirroring the
``UnknownSession`` error the in-process manager raises.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Hashable, Sequence

from ..errors import ReproError
from . import protocol
from .handlers import _SERVER_HANDLERS, _SESSION_HANDLERS
from .workers import WorkerPool


class HashRing:
    """Consistent hashing over a fixed node set with virtual replicas.

    Hashes are ``blake2b`` (stable across processes and runs — never the
    builtin ``hash()``, which is salted per interpreter). Each node gets
    ``replicas`` points on the ring; a key belongs to the first node
    point at or clockwise of its own hash.
    """

    def __init__(self, nodes: Sequence[Hashable], replicas: int = 64):
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        points = sorted(
            (self._hash(f"{node}#{replica}"), node)
            for node in nodes
            for replica in range(replicas)
        )
        self._hashes = [point[0] for point in points]
        self._nodes = [point[1] for point in points]

    @staticmethod
    def _hash(text: str) -> int:
        digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def node_for(self, key: str) -> Hashable:
        """The node owning ``key`` — deterministic across processes."""
        position = bisect.bisect_right(self._hashes, self._hash(str(key)))
        return self._nodes[position % len(self._nodes)]


class RoutingDispatcher:
    """Scatter-gather front end over a :class:`WorkerPool`."""

    def __init__(self, pool: WorkerPool, replicas: int = 64):
        self.pool = pool
        self.ring = HashRing(list(range(len(pool))), replicas=replicas)
        self._lock = threading.Lock()
        #: session name -> (worker index, dataset name)
        self._placements: dict[str, tuple[int, str]] = {}
        self._routed = 0

    # -- dispatch entry ------------------------------------------------

    def handle(self, message: dict) -> dict:
        """Route one decoded request; always returns an envelope."""
        request_id = message.get("id")
        try:
            cmd, session, args = protocol.validate_request(message)
        except ReproError as error:
            kind = getattr(error, "kind", None) or type(error).__name__
            return protocol.error_response(request_id, kind, str(error))
        if cmd == "ping":
            return protocol.ok_response(
                request_id,
                {
                    "pong": True,
                    "version": protocol.PROTOCOL_VERSION,
                    "workers": len(self.pool),
                },
            )
        if cmd == "stats":
            return self._stats(request_id, message)
        if cmd == "sessions":
            return self._sessions(request_id, message)
        if cmd == "open":
            return self._open(request_id, message, args)
        if cmd in _SESSION_HANDLERS:
            return self._route_session(request_id, cmd, session, message)
        known = sorted(set(_SERVER_HANDLERS) | set(_SESSION_HANDLERS))
        return protocol.error_response(
            request_id, "ProtocolError", f"unknown command {cmd!r} (known: {known})"
        )

    # -- server-scoped fan-out -----------------------------------------

    def _stats(self, request_id, message: dict) -> dict:
        """Worker stats merged with the routing tier's own counters."""
        envelopes = self.pool.broadcast(message)
        per_worker = []
        sessions = 0
        hits = misses = 0
        for process_stats, envelope in zip(self.pool.stats(), envelopes):
            entry = dict(process_stats)
            if envelope.get("ok"):
                stats = envelope["result"]
                entry["stats"] = stats
                sessions += int(stats.get("sessions", 0))
                cache = stats.get("preprocess_cache", {})
                hits += int(cache.get("hits", 0))
                misses += int(cache.get("misses", 0))
            else:
                entry["error"] = envelope.get("error")
            per_worker.append(entry)
        total = hits + misses
        with self._lock:
            routed = self._routed
            placements = len(self._placements)
        return protocol.ok_response(
            request_id,
            {
                "workers": len(self.pool),
                "start_method": self.pool.start_method,
                "sessions": sessions,
                "placements": placements,
                "routed_requests": routed,
                "preprocess_cache": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": (hits / total) if total else 0.0,
                },
                "per_worker": per_worker,
            },
        )

    def _sessions(self, request_id, message: dict) -> dict:
        """Every worker's session list, each entry tagged with its worker."""
        merged = []
        for index, envelope in enumerate(self.pool.broadcast(message)):
            if not envelope.get("ok"):
                continue
            for info in envelope["result"].get("sessions", []):
                info = dict(info)
                info["worker"] = index
                merged.append(info)
        return protocol.ok_response(request_id, {"sessions": merged})

    # -- session routing -----------------------------------------------

    def _open(self, request_id, message: dict, args: dict) -> dict:
        name = args.get("name")
        dataset = args.get("dataset")
        if not isinstance(name, str) or not name:
            return protocol.error_response(
                request_id,
                "ProtocolError",
                "'open' needs a non-empty 'name' string in args",
            )
        if not isinstance(dataset, str) or not dataset:
            return protocol.error_response(
                request_id,
                "ProtocolError",
                "'open' needs a non-empty 'dataset' string in args",
            )
        with self._lock:
            placement = self._placements.get(name)
        if placement is not None and placement[1] != dataset:
            # Mirror the manager's reopen-on-another-dataset error at the
            # front: the old placement's worker owns the live session.
            return protocol.error_response(
                request_id,
                "ServiceError",
                f"session {name!r} is open on dataset {placement[1]!r}; "
                f"close it before reopening on {dataset!r}",
            )
        worker = int(self.ring.node_for(dataset))
        envelope = self.pool.call(worker, message)
        if envelope.get("ok"):
            with self._lock:
                self._placements[name] = (worker, dataset)
                self._routed += 1
            protocol.annotate_worker(envelope, worker)
        elif self._crashed(envelope):
            self._drop_worker_placements(worker)
        return envelope

    def _route_session(
        self, request_id, cmd: str, session: str | None, message: dict
    ) -> dict:
        if not session:
            return protocol.error_response(
                request_id,
                "ProtocolError",
                f"command {cmd!r} needs a 'session' field",
            )
        with self._lock:
            placement = self._placements.get(session)
        if placement is None:
            return protocol.error_response(
                request_id,
                "UnknownSession",
                f"unknown session {session!r}; open it first",
            )
        worker = placement[0]
        envelope = self.pool.call(worker, message)
        with self._lock:
            self._routed += 1
        if cmd == "close" and (
            envelope.get("ok") or self._error_kind(envelope) == "UnknownSession"
        ):
            with self._lock:
                self._placements.pop(session, None)
        if self._crashed(envelope):
            # The dead process took its sessions with it; drop their
            # placements so clients get a fast UnknownSession and reopen
            # onto the respawned worker.
            self._drop_worker_placements(worker)
        return envelope

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _error_kind(envelope: dict) -> str | None:
        error = envelope.get("error")
        return error.get("kind") if isinstance(error, dict) else None

    @classmethod
    def _crashed(cls, envelope: dict) -> bool:
        return cls._error_kind(envelope) == "WorkerCrashed"

    def _drop_worker_placements(self, worker: int) -> None:
        with self._lock:
            self._placements = {
                name: placement
                for name, placement in self._placements.items()
                if placement[0] != worker
            }

    def placement_of(self, session: str) -> tuple[int, str] | None:
        """The (worker, dataset) assignment of a session, if any."""
        with self._lock:
            return self._placements.get(session)

    def close(self) -> None:
        """Shut the pool down."""
        self.pool.close()
