"""Cache-affine routing: which worker serves which session.

The routing rule is **consistent hashing on the dataset id**: every
session opened on dataset ``d`` lands on ``ring.node_for(d)``, so one
worker owns all sessions of a dataset — and with them every shared
artifact those sessions hit (the dataset build itself, the
``PreprocessCache`` entry for a debugged selection, its ``SplitIndex``
and clause-mask memos). That affinity is the serving story: the
preprocess-cache hit rate measured on the single-process tier (~0.96)
carries over to N processes because a dataset's requests never spray
across shards. Consistent hashing (not ``hash(d) % N``) keeps most
assignments stable when the worker count changes between deployments.

The :class:`RoutingDispatcher` is the front end's brain: server-scoped
commands are answered or fanned out here (``ping`` locally, ``stats`` /
``sessions`` scatter-gathered across workers), ``open`` routes by
dataset and records the session→worker assignment, and every
session-scoped command follows that assignment. Unknown sessions are
rejected at the front without a worker round-trip, mirroring the
``UnknownSession`` error the in-process manager raises.

**Self-healing** (PR 10): each dataset now has a deterministic replica
*set* (:meth:`HashRing.nodes_for`), not a single owner. A session
command that comes back ``WorkerCrashed``/``WorkerTimeout`` fails over
along that set with jittered, bounded backoff: the router first sends
``recover`` to the candidate — the worker replays the session's
journal (:mod:`repro.service.journal`) off the shared data dir — then
re-forwards the original request and moves the placement. Per-worker
circuit breakers trip after consecutive failures and half-open on a
timer, steering both failover and new-session placement away from a
flapping worker. Without a data dir there is no journal to replay, so
the pre-PR-10 semantics hold: crashes drop placements and clients
reopen. ``drain`` stops admitting sessions to one worker, waits out
its in-flight requests (deadline-bounded), flushes its journals, hands
its placements to replicas, and optionally restarts the process —
the rolling-restart verb. ``resize`` grows or shrinks the pool and
rebalances placements by the same replay mechanism instead of
dropping them.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Callable, Hashable, Iterator, Sequence

from ..errors import ReproError, ServiceError
from ..obs import logs as obs_logs
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.flags import enabled as obs_enabled
from . import faults, protocol
from .cache import DATA_DIR_ENV
from .handlers import SLOW_LOG_LIMIT, _SERVER_HANDLERS, _SESSION_HANDLERS
from .journal import JournalStore
from .workers import WorkerPool

#: Error kinds that trigger failover to a replica (crash-class only:
#: logical errors like UnknownSession get in-place recovery instead).
FAILOVER_KINDS = frozenset({"WorkerCrashed", "WorkerTimeout"})


class HashRing:
    """Consistent hashing over a fixed node set with virtual replicas.

    Hashes are ``blake2b`` (stable across processes and runs — never the
    builtin ``hash()``, which is salted per interpreter). Each node gets
    ``replicas`` points on the ring; a key belongs to the first node
    point at or clockwise of its own hash.
    """

    def __init__(self, nodes: Sequence[Hashable], replicas: int = 64):
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        points = sorted(
            (self._hash(f"{node}#{replica}"), node)
            for node in nodes
            for replica in range(replicas)
        )
        self._hashes = [point[0] for point in points]
        self._nodes = [point[1] for point in points]

    @staticmethod
    def _hash(text: str) -> int:
        digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def node_for(self, key: str) -> Hashable:
        """The node owning ``key`` — deterministic across processes."""
        position = bisect.bisect_right(self._hashes, self._hash(str(key)))
        return self._nodes[position % len(self._nodes)]

    def nodes_for(self, key: str, n: int) -> list[Hashable]:
        """The first ``n`` distinct nodes clockwise of ``key``'s hash.

        ``nodes_for(key, n)[0] == node_for(key)`` always, and the list
        for ``n`` is a prefix of the list for ``n + 1`` — so the replica
        set is as stable under ring changes as the primary assignment
        itself. With fewer than ``n`` distinct nodes the full node set
        is returned.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        start = bisect.bisect_right(self._hashes, self._hash(str(key)))
        nodes: list[Hashable] = []
        for offset in range(len(self._nodes)):
            node = self._nodes[(start + offset) % len(self._nodes)]
            if node not in nodes:
                nodes.append(node)
                if len(nodes) == n:
                    break
        return nodes


class CircuitBreaker:
    """A per-worker trip switch over consecutive failures.

    Closed (healthy) until ``threshold`` consecutive failures open it;
    while open every :meth:`allow` is refused until ``reset_seconds``
    elapse, after which exactly one probe is admitted (half-open). The
    probe's outcome settles it: success closes the breaker, failure
    re-opens it for another full reset window. The clock is injectable
    so tests drive transitions deterministically.
    """

    _STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}

    def __init__(
        self,
        threshold: int = 3,
        reset_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def state_value(self) -> int:
        """The state as a gauge value (0 closed, 1 half-open, 2 open)."""
        return self._STATE_VALUES[self.state]

    def allow(self) -> bool:
        """May a request be sent now? Consumes the half-open probe."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.reset_seconds:
                    self._state = "half_open"
                    return True
                return False
            # half-open: the single probe is already in flight.
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == "half_open" or self._failures >= self.threshold:
                self._state = "open"
                self._opened_at = self._clock()


class RoutingDispatcher:
    """Scatter-gather front end over a :class:`WorkerPool`.

    Exposes both a blocking :meth:`handle` (threaded server) and an
    awaitable :meth:`handle_async` (asyncio gateway). The two share all
    validation, placement bookkeeping, and merge logic — only the
    transport differs: blocking pipe waits versus coroutine-parking
    :meth:`WorkerPool.call_async`, with broadcasts fanned out
    concurrently via ``asyncio.gather`` on the async path.
    """

    #: Workers forward partial debug frames back over the pipe (the
    #: reader thread invokes ``on_partial`` per frame), so routed
    #: ``debug`` streams end to end.
    supports_streaming = True

    def __init__(
        self,
        pool: WorkerPool,
        replicas: int = 64,
        n_replicas: int = 2,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 5.0,
        max_failover_attempts: int | None = None,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        data_dir: str | os.PathLike | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ):
        self.pool = pool
        self._ring_points = replicas
        self.ring = HashRing(list(range(len(pool))), replicas=replicas)
        #: Replica-set width: each dataset has this many candidate
        #: workers (clamped to the pool size).
        self.n_replicas = max(1, min(int(n_replicas), len(pool)))
        self._max_failover_attempts = max_failover_attempts
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._breaker_threshold = breaker_threshold
        self._breaker_reset_seconds = breaker_reset_seconds
        self._clock = clock
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        #: session name -> (worker index, dataset name)
        self._placements: dict[str, tuple[int, str]] = {}
        self._routed = 0
        #: The router's own view of the shared journal directory: used
        #: to *peek* (does a journal exist, which dataset) so unplaced
        #: sessions can be re-admitted after a front-end restart. The
        #: actual replay happens worker-side via the ``recover`` command.
        if data_dir is None:
            data_dir = os.environ.get(DATA_DIR_ENV) or None
        self.journals = (
            JournalStore(os.path.join(os.fspath(data_dir), "journal"))
            if data_dir is not None
            else None
        )
        # Register the fault-tolerance metrics at construction so they
        # appear in cluster expositions at zero even before the first
        # failover (the CORE_METRICS acceptance relies on this).
        reg = obs_metrics.registry()
        self._m_drains = reg.counter(
            "dbwipes_drains_total",
            help="Drain operations completed on the worker tier.",
        )
        self._breakers: dict[int, CircuitBreaker] = {}
        self._m_failovers: dict[int, obs_metrics.Counter] = {}
        self._m_breaker: dict[int, obs_metrics.Gauge] = {}
        for index in range(len(pool)):
            self._track_worker(index)

    def _track_worker(self, index: int) -> None:
        """Breaker + metrics for one worker index (idempotent)."""
        if index in self._breakers:
            return
        reg = obs_metrics.registry()
        self._breakers[index] = CircuitBreaker(
            threshold=self._breaker_threshold,
            reset_seconds=self._breaker_reset_seconds,
            clock=self._clock,
        )
        self._m_failovers[index] = reg.counter(
            "dbwipes_failovers_total",
            labels={"worker": str(index)},
            help="Failed-over requests, by the worker that failed.",
        )
        gauge = reg.gauge(
            "dbwipes_breaker_state",
            labels={"worker": str(index)},
            help="Circuit breaker state (0 closed, 1 half-open, 2 open).",
        )
        gauge.set(0)
        self._m_breaker[index] = gauge

    def _breaker_success(self, worker: int) -> None:
        breaker = self._breakers.get(worker)
        if breaker is None:
            return
        breaker.record_success()
        self._m_breaker[worker].set(breaker.state_value)

    def _breaker_failure(self, worker: int) -> None:
        breaker = self._breakers.get(worker)
        if breaker is None:
            return
        breaker.record_failure()
        self._m_breaker[worker].set(breaker.state_value)

    def _breaker_allows(self, worker: int) -> bool:
        breaker = self._breakers.get(worker)
        if breaker is None:
            return True
        allowed = breaker.allow()
        self._m_breaker[worker].set(breaker.state_value)
        return allowed

    # -- dispatch entry ------------------------------------------------

    def handle(self, message: dict, emit_partial=None) -> dict:
        """Route one decoded request; always returns an envelope.

        The front end is the server accept path of the cluster: the root
        ``server.<cmd>`` span is minted here (or grafted onto a trace
        context the client sent), every worker forward rides a child
        ``router.<cmd>`` span whose context crosses the pipe in the
        message's ``trace`` field, and the response envelope is stamped
        with the trace id so clients can recover the full span tree.

        ``emit_partial(seq, payload)`` — when provided and the request
        asks for a stream — receives each partial frame a worker sends
        back over the pipe, ahead of the returned terminating envelope.
        A mid-stream failover replays the stream from the replica, so
        partial frames are at-least-once; the final envelope is exact.
        """
        request_id = message.get("id")
        try:
            cmd, session, args = protocol.validate_request(message)
        except ReproError as error:
            kind = getattr(error, "kind", None) or type(error).__name__
            return protocol.error_response(request_id, kind, str(error))
        with self._request_scope(cmd, session, message) as holder:
            holder["envelope"] = self._dispatch(
                request_id, cmd, session, args, message, emit_partial
            )
        return holder["envelope"]

    async def handle_async(self, message: dict, emit_partial=None) -> dict:
        """:meth:`handle`, awaitable: pipe waits park coroutines.

        Identical envelopes, spans, and metrics — only the transport
        changes, so one stuck worker stalls its caller's coroutine and
        nothing else on the event loop.
        """
        request_id = message.get("id")
        try:
            cmd, session, args = protocol.validate_request(message)
        except ReproError as error:
            kind = getattr(error, "kind", None) or type(error).__name__
            return protocol.error_response(request_id, kind, str(error))
        with self._request_scope(cmd, session, message) as holder:
            holder["envelope"] = await self._dispatch_async(
                request_id, cmd, session, args, message, emit_partial
            )
        return holder["envelope"]

    @contextmanager
    def _request_scope(
        self, cmd: str, session: str | None, message: dict
    ) -> Iterator[dict]:
        """The per-request span + metrics + slow-log + trace stamping.

        Yields a one-slot holder dict; the caller stores the envelope
        under ``"envelope"`` before the context exits.
        """
        holder: dict = {"envelope": None}
        trace_id, parent_id = obs_trace.from_wire(message)
        start = time.perf_counter()
        with obs_trace.span(
            f"server.{cmd}", trace_id=trace_id, parent_id=parent_id
        ) as span:
            yield holder
            envelope = holder["envelope"]
            if envelope is not None and not envelope.get("ok"):
                error = envelope.get("error")
                if isinstance(error, dict):
                    span.set(error=error.get("kind"))
            stamped_trace = span.trace_id
        seconds = time.perf_counter() - start
        if obs_enabled():
            labels = {"cmd": cmd, "role": "server"}
            reg = obs_metrics.registry()
            reg.counter(
                "dbwipes_requests_total",
                labels=labels,
                help="Requests dispatched, by command and process role.",
            ).inc()
            reg.histogram(
                "dbwipes_request_seconds",
                labels=labels,
                help="Request wall seconds, by command and process role.",
            ).observe(seconds)
            obs_logs.maybe_log_slow(cmd, seconds, role="server", session=session)
        if stamped_trace is not None and holder["envelope"] is not None:
            holder["envelope"]["trace"] = stamped_trace

    def _dispatch(
        self,
        request_id,
        cmd: str,
        session: str | None,
        args: dict,
        message: dict,
        emit_partial=None,
    ) -> dict:
        if cmd == "ping":
            return self._pong(request_id)
        if cmd == "stats":
            return self._merge_stats(request_id, self._broadcast("stats", message))
        if cmd == "sessions":
            return self._merge_sessions(
                request_id, self._broadcast("sessions", message)
            )
        if cmd == "metrics":
            return self._merge_metrics(
                request_id, self._broadcast("metrics", message)
            )
        if cmd == "storage":
            return self._merge_storage(
                request_id, self._broadcast("storage", message)
            )
        if cmd == "trace":
            resolved = self._trace_resolve(request_id, message, args)
            if isinstance(resolved, dict):
                return resolved
            trace_id, spans, dropped, explicit = resolved
            return self._merge_trace(
                request_id,
                trace_id,
                spans,
                dropped,
                self._broadcast("trace", explicit),
            )
        if cmd == "open":
            checked = self._open_check(request_id, args)
            if isinstance(checked, dict):
                return checked
            name, dataset, worker = checked
            envelope = self._forward(worker, "open", message)
            return self._open_finish(envelope, worker, name, dataset)
        if cmd == "recover":
            return self._recover_command(request_id, session, args)
        if cmd == "drain":
            return self._drain_command(request_id, args)
        if cmd == "resize":
            return self._resize_command(request_id, args)
        if cmd in _SESSION_HANDLERS:
            return self._route_session(
                request_id, cmd, session, args, message, emit_partial
            )
        return self._unknown_command(request_id, cmd)

    async def _dispatch_async(
        self,
        request_id,
        cmd: str,
        session: str | None,
        args: dict,
        message: dict,
        emit_partial=None,
    ) -> dict:
        if cmd == "ping":
            return self._pong(request_id)
        if cmd == "stats":
            return self._merge_stats(
                request_id, await self._broadcast_async("stats", message)
            )
        if cmd == "sessions":
            return self._merge_sessions(
                request_id, await self._broadcast_async("sessions", message)
            )
        if cmd == "metrics":
            return self._merge_metrics(
                request_id, await self._broadcast_async("metrics", message)
            )
        if cmd == "storage":
            return self._merge_storage(
                request_id, await self._broadcast_async("storage", message)
            )
        if cmd == "trace":
            resolved = self._trace_resolve(request_id, message, args)
            if isinstance(resolved, dict):
                return resolved
            trace_id, spans, dropped, explicit = resolved
            return self._merge_trace(
                request_id,
                trace_id,
                spans,
                dropped,
                await self._broadcast_async("trace", explicit),
            )
        # open / session commands / recover / drain / resize share the
        # synchronous failover machinery (bounded retries, backoff
        # sleeps, drain waits) — run it on a worker thread so retries
        # never stall the event loop. Concurrency is already bounded
        # upstream by the gateway's admission gate, and the gateway's
        # emit callbacks marshal onto the loop thread-safely.
        return await asyncio.to_thread(
            self._dispatch, request_id, cmd, session, args, message, emit_partial
        )

    def _pong(self, request_id) -> dict:
        return protocol.ok_response(
            request_id,
            {
                "pong": True,
                "version": protocol.PROTOCOL_VERSION,
                "workers": len(self.pool),
            },
        )

    @staticmethod
    def _unknown_command(request_id, cmd: str) -> dict:
        known = sorted(set(_SERVER_HANDLERS) | set(_SESSION_HANDLERS))
        return protocol.error_response(
            request_id, "ProtocolError", f"unknown command {cmd!r} (known: {known})"
        )

    # -- traced worker forwards ----------------------------------------

    def _forward(
        self, worker: int, cmd: str, message: dict, on_partial=None
    ) -> dict:
        """One worker call under a ``router.<cmd>`` span.

        The span's context is injected into the forwarded message's
        ``trace`` field, so the worker's ``worker.<cmd>`` span (and the
        pipeline stages underneath) link into the front end's trace.
        """
        plan = faults.active_plan()
        if plan is not None:
            delay = plan.delay_before(cmd)
            if delay > 0:
                self._sleep(delay)
        with obs_trace.span(f"router.{cmd}", worker=worker) as span:
            context = obs_trace.wire_context(span)
            forwarded = {**message, "trace": context} if context else message
            return self.pool.call(worker, forwarded, on_partial=on_partial)

    def _broadcast(self, cmd: str, message: dict) -> list[dict]:
        """The forward above, fanned out to every worker in order."""
        return [
            self._forward(index, cmd, message) for index in range(len(self.pool))
        ]

    async def _forward_async(self, worker: int, cmd: str, message: dict) -> dict:
        """:meth:`_forward` without blocking the event loop."""
        with obs_trace.span(f"router.{cmd}", worker=worker) as span:
            context = obs_trace.wire_context(span)
            forwarded = {**message, "trace": context} if context else message
            return await self.pool.call_async(worker, forwarded)

    async def _broadcast_async(self, cmd: str, message: dict) -> list[dict]:
        """All workers concurrently; envelopes still in worker order."""
        return list(
            await asyncio.gather(
                *(
                    self._forward_async(index, cmd, message)
                    for index in range(len(self.pool))
                )
            )
        )

    # -- server-scoped fan-out -----------------------------------------

    def _merge_stats(self, request_id, envelopes: list[dict]) -> dict:
        """Worker stats merged into true cluster totals.

        Every per-worker counter is *summed* and the cache hit rate is
        recomputed from the summed lookups — never averaged across
        workers, because consistent hashing skews load per shard (a
        99%-hit worker serving 10× the traffic of a 50%-hit worker must
        dominate the cluster rate).
        """
        per_worker = []
        sessions = 0
        hits = misses = evictions = entries = 0
        disk_hits = disk_misses = disk_writes = 0
        lru_evictions = ttl_evictions = 0
        worker_requests = restarts = 0
        for process_stats, envelope in zip(self.pool.stats(), envelopes):
            entry = dict(process_stats)
            worker_requests += int(entry.get("requests", 0))
            restarts += int(entry.get("restarts", 0))
            if envelope.get("ok"):
                stats = envelope["result"]
                entry["stats"] = stats
                sessions += int(stats.get("sessions", 0))
                lru_evictions += int(stats.get("lru_evictions", 0))
                ttl_evictions += int(stats.get("ttl_evictions", 0))
                cache = stats.get("preprocess_cache", {})
                hits += int(cache.get("hits", 0))
                misses += int(cache.get("misses", 0))
                evictions += int(cache.get("evictions", 0))
                entries += int(cache.get("entries", 0))
                disk_hits += int(cache.get("disk_hits", 0))
                disk_misses += int(cache.get("disk_misses", 0))
                disk_writes += int(cache.get("disk_writes", 0))
            else:
                entry["error"] = envelope.get("error")
            per_worker.append(entry)
        total = hits + misses
        with self._lock:
            routed = self._routed
            placements = len(self._placements)
        return protocol.ok_response(
            request_id,
            {
                "workers": len(self.pool),
                "start_method": self.pool.start_method,
                "sessions": sessions,
                "placements": placements,
                "routed_requests": routed,
                "worker_requests": worker_requests,
                "restarts": restarts,
                "lru_evictions": lru_evictions,
                "ttl_evictions": ttl_evictions,
                "preprocess_cache": {
                    "hits": hits,
                    "misses": misses,
                    "evictions": evictions,
                    "entries": entries,
                    "hit_rate": (hits / total) if total else 0.0,
                    "disk_hits": disk_hits,
                    "disk_misses": disk_misses,
                    "disk_writes": disk_writes,
                },
                "per_worker": per_worker,
            },
        )

    def _merge_storage(self, request_id, envelopes: list[dict]) -> dict:
        """Cluster view of the durable tier.

        Every worker shares one data dir, so the dataset/table listing
        comes from the first healthy worker; the per-worker artifact
        *activity* counters (saves/loads) are summed — they live in each
        worker's process, not on disk.
        """
        merged: dict = {
            "workers": len(self.pool),
            "data_dir": None,
            "datasets": [],
            "preprocess_artifacts": None,
        }
        saves = loads = load_failures = entries = 0
        seen_artifacts = False
        first_ok = None
        for envelope in envelopes:
            if not envelope.get("ok"):
                continue
            result = envelope["result"]
            if first_ok is None:
                first_ok = result
            artifacts = result.get("preprocess_artifacts")
            if isinstance(artifacts, dict):
                seen_artifacts = True
                saves += int(artifacts.get("saves", 0))
                loads += int(artifacts.get("loads", 0))
                load_failures += int(artifacts.get("load_failures", 0))
                entries = max(entries, int(artifacts.get("entries", 0)))
        if first_ok is not None:
            merged["data_dir"] = first_ok.get("data_dir")
            merged["datasets"] = first_ok.get("datasets", [])
        if seen_artifacts:
            merged["preprocess_artifacts"] = {
                "entries": entries,
                "saves": saves,
                "loads": loads,
                "load_failures": load_failures,
            }
        return protocol.ok_response(request_id, merged)

    def _merge_sessions(self, request_id, envelopes: list[dict]) -> dict:
        """Every worker's session list, each entry tagged with its worker."""
        merged = []
        for index, envelope in enumerate(envelopes):
            if not envelope.get("ok"):
                continue
            for info in envelope["result"].get("sessions", []):
                info = dict(info)
                info["worker"] = index
                merged.append(info)
        return protocol.ok_response(request_id, {"sessions": merged})

    def _merge_metrics(self, request_id, envelopes: list[dict]) -> dict:
        """Cluster exposition: scatter registries, merge correctly.

        Counters and gauges sum; histogram buckets sum; nothing is ever
        averaged. The front end's own registry (request counters, worker
        crash/respawn/timeout counters) joins the merge alongside every
        worker's snapshot.
        """
        front = obs_metrics.registry().snapshot()
        snapshots = [front]
        per_worker = []
        slow = list(obs_logs.logger().recent("slow_request"))
        for index, envelope in enumerate(envelopes):
            if envelope.get("ok"):
                result = envelope["result"]
                snapshot = result.get("merged")
                if isinstance(snapshot, dict):
                    snapshots.append(snapshot)
                per_worker.append({"worker": index, "metrics": snapshot})
                slow.extend(result.get("slow_requests") or ())
            else:
                per_worker.append(
                    {"worker": index, "error": envelope.get("error")}
                )
        slow.sort(key=lambda record: record.get("ts", 0.0))
        return protocol.ok_response(
            request_id,
            {
                "workers": len(self.pool),
                "merged": obs_metrics.merge_snapshots(snapshots),
                "per_worker": per_worker,
                "slow_requests": slow[-SLOW_LOG_LIMIT:],
            },
        )

    def _trace_resolve(
        self, request_id, message: dict, args: dict
    ) -> dict | tuple:
        """Resolve the target trace id on the front end.

        The default trace id resolves *here* (most recently finished
        front-end trace, excluding the in-flight request's own) and the
        broadcast carries it explicitly, so every worker contributes the
        spans it recorded for that exact trace. Returns an early
        envelope when there is nothing to gather, else
        ``(trace_id, front_spans, front_dropped, explicit_message)``.
        """
        tracer = obs_trace.tracer()
        trace_id = args.get("trace_id")
        if trace_id is None:
            current = tracer.current()
            trace_id = tracer.last_trace_id(
                exclude=current[0] if current else None
            )
        if not isinstance(trace_id, str) or not trace_id:
            return protocol.ok_response(
                request_id,
                {"trace_id": None, "spans": [], "tree": [], "dropped": 0},
            )
        spans = tracer.spans(trace_id)
        dropped = tracer.dropped(trace_id)
        explicit = {
            **message,
            "args": {**args, "trace_id": trace_id},
        }
        return trace_id, spans, dropped, explicit

    def _merge_trace(
        self, request_id, trace_id: str, spans: list, dropped: int,
        envelopes: list[dict],
    ) -> dict:
        """Worker span contributions folded into the front end's."""
        for envelope in envelopes:
            if not envelope.get("ok"):
                continue
            result = envelope["result"]
            spans.extend(result.get("spans") or ())
            dropped += int(result.get("dropped") or 0)
        return protocol.ok_response(
            request_id,
            {
                "trace_id": trace_id,
                "spans": spans,
                "tree": obs_trace.span_tree(spans),
                "dropped": dropped,
            },
        )

    # -- session routing -----------------------------------------------

    def _open_check(self, request_id, args: dict) -> dict | tuple[str, str, int]:
        """Validate an ``open`` and pick its worker by dataset hash.

        Returns an error envelope, or ``(name, dataset, worker)``.
        """
        name = args.get("name")
        dataset = args.get("dataset")
        if not isinstance(name, str) or not name:
            return protocol.error_response(
                request_id,
                "ProtocolError",
                "'open' needs a non-empty 'name' string in args",
            )
        if not isinstance(dataset, str) or not dataset:
            return protocol.error_response(
                request_id,
                "ProtocolError",
                "'open' needs a non-empty 'dataset' string in args",
            )
        with self._lock:
            placement = self._placements.get(name)
        if placement is not None and placement[1] != dataset:
            # Mirror the manager's reopen-on-another-dataset error at the
            # front: the old placement's worker owns the live session.
            return protocol.error_response(
                request_id,
                "ServiceError",
                f"session {name!r} is open on dataset {placement[1]!r}; "
                f"close it before reopening on {dataset!r}",
            )
        return name, dataset, self._placement_target(dataset)

    def _placement_target(self, dataset: str) -> int:
        """The first admissible worker in the dataset's replica set.

        The ring primary wins unless it is draining or its breaker is
        open, in which case placement slides to the next replica —
        new sessions steer around a flapping or departing worker. Falls
        back to the primary when every candidate is inadmissible.
        """
        candidates = [
            int(node) for node in self.ring.nodes_for(dataset, self.n_replicas)
        ]
        for worker in candidates:
            if worker >= len(self.pool):
                continue
            if self.pool.workers[worker].draining:
                continue
            breaker = self._breakers.get(worker)
            if breaker is not None and breaker.state == "open":
                continue
            return worker
        return candidates[0]

    def _open_finish(
        self, envelope: dict, worker: int, name: str, dataset: str
    ) -> dict:
        """Record (or roll back) the placement an ``open`` produced."""
        if envelope.get("ok"):
            with self._lock:
                self._placements[name] = (worker, dataset)
                self._routed += 1
            protocol.annotate_worker(envelope, worker)
        elif self._crashed(envelope) and self.journals is None:
            # No journals → sessions die with their process; drop their
            # placements so clients get a fast UnknownSession. With a
            # journal tier the placements stay and heal lazily by replay.
            self._drop_worker_placements(worker)
        return envelope

    def _route_session(
        self,
        request_id,
        cmd: str,
        session: str | None,
        args: dict,
        message: dict,
        emit_partial=None,
    ) -> dict:
        """Route one session-scoped command, healing as needed.

        Without a journal tier this is the pre-PR-10 path: resolve the
        placement, forward once, and let crashes drop placements. With
        journals it becomes the self-healing path: unplaced-but-journaled
        sessions are adopted, worker-side ``UnknownSession`` (a respawned
        or evicted worker) triggers in-place replay, and crash-class
        errors fail over along the dataset's replica set.
        """
        if not session:
            return protocol.error_response(
                request_id,
                "ProtocolError",
                f"command {cmd!r} needs a 'session' field",
            )
        with self._lock:
            placement = self._placements.get(session)
        if placement is None:
            placement = self._adopt(session)
        if placement is None:
            return protocol.error_response(
                request_id,
                "UnknownSession",
                f"unknown session {session!r}; open it first",
            )
        worker, dataset = placement
        on_partial = None
        if emit_partial is not None and args.get("stream"):

            def on_partial(envelope, _emit=emit_partial):
                _emit(envelope.get("seq", 0), envelope.get("result"))

        if self.journals is None:
            envelope = self._forward(worker, cmd, message, on_partial=on_partial)
            return self._route_finish(envelope, cmd, session, worker)
        return self._route_with_failover(
            request_id, cmd, session, dataset, worker, message, on_partial
        )

    def _adopt(self, session: str) -> tuple[int, str] | None:
        """Re-admit a journaled session that has no placement.

        This is how sessions survive a front-end restart: the placement
        map is in-memory, but the journal names the dataset, so the
        session is re-placed on the dataset's current primary and the
        first forwarded command heals it by replay (the worker answers
        ``UnknownSession``, the router recovers in place and re-sends).
        """
        if self.journals is None or not self.journals.exists(session):
            return None
        dataset = self.journals.peek(session)
        if dataset is None:
            return None
        worker = self._placement_target(dataset)
        with self._lock:
            current = self._placements.get(session)
            if current is None:
                current = (worker, dataset)
                self._placements[session] = current
        return current

    def _route_with_failover(
        self,
        request_id,
        cmd: str,
        session: str,
        dataset: str,
        worker: int,
        message: dict,
        on_partial=None,
    ) -> dict:
        """Forward with replay-based healing and replica failover.

        The candidate list is ``[primary, replicas…, primary]`` — the
        final entry retries the primary once more because a crashed
        worker has been respawned by the time the replicas were tried.
        Attempt 0 is a plain forward; every later attempt backs off
        (jittered, honouring ``retry_after``) and replays the session's
        journal on the candidate before re-sending the command.
        """
        candidates = [worker]
        for node in self.ring.nodes_for(dataset, self.n_replicas):
            node = int(node)
            if node != worker and node < len(self.pool):
                candidates.append(node)
        candidates.append(worker)
        if self._max_failover_attempts is not None:
            candidates = candidates[: max(1, int(self._max_failover_attempts))]
        last_envelope: dict | None = None
        attempted = False
        for attempt, target in enumerate(candidates):
            if attempt:
                if not self._breaker_allows(target):
                    continue
                self._failover_backoff(attempt, last_envelope)
                recovered = self._recover_on(target, session)
                if recovered is None:
                    break  # no journal: replay impossible, stop here
                if not recovered:
                    self._breaker_failure(target)
                    continue
            elif not self._breaker_allows(target):
                # Primary's breaker is open: skip straight to replicas.
                last_envelope = protocol.error_response(
                    request_id,
                    "WorkerCrashed",
                    f"worker {target} circuit breaker is open",
                )
                continue
            attempted = True
            envelope = self._forward(target, cmd, message, on_partial=on_partial)
            last_envelope = envelope
            kind = self._error_kind(envelope)
            if kind == "UnknownSession" and cmd != "close":
                # Healthy worker, lost session (respawn/eviction/adopted
                # placement): replay in place once and re-send.
                if self._recover_on(target, session) is True:
                    envelope = self._forward(
                        target, cmd, message, on_partial=on_partial
                    )
                    last_envelope = envelope
                    kind = self._error_kind(envelope)
            if kind in FAILOVER_KINDS:
                self._breaker_failure(target)
                if obs_enabled() and target in self._m_failovers:
                    self._m_failovers[target].inc()
                continue
            self._breaker_success(target)
            return self._failover_finish(
                envelope, cmd, session, dataset, worker, target
            )
        if not attempted:
            # Every candidate was inadmissible (breakers open): force one
            # real attempt at the primary rather than failing on a guess.
            envelope = self._forward(worker, cmd, message, on_partial=on_partial)
            return self._failover_finish(
                envelope, cmd, session, dataset, worker, worker
            )
        # Exhausted (or journal-less): restore the legacy contract.
        if last_envelope is not None and self._crashed(last_envelope):
            self._drop_worker_placements(worker)
        with self._lock:
            self._routed += 1
        return last_envelope

    def _failover_finish(
        self,
        envelope: dict,
        cmd: str,
        session: str,
        dataset: str,
        worker: int,
        target: int,
    ) -> dict:
        """Bookkeeping after a settled (non-crash) session command."""
        with self._lock:
            self._routed += 1
            if envelope.get("ok") and target != worker:
                self._placements[session] = (target, dataset)
        if cmd == "close" and (
            envelope.get("ok") or self._error_kind(envelope) == "UnknownSession"
        ):
            with self._lock:
                self._placements.pop(session, None)
            if self.journals is not None:
                self.journals.discard(session)
        return envelope

    def _recover_on(self, target: int, session: str) -> bool | None:
        """Ask ``target`` to replay ``session``'s journal.

        Returns ``True`` when the session is live on the target (replayed
        or already open there), ``False`` when the recover attempt itself
        failed (crash/timeout on the target — try elsewhere), and
        ``None`` when there is no journal (recovery impossible anywhere).
        """
        message = {
            "id": f"recover::{session}",
            "cmd": "recover",
            "args": {"session": session},
        }
        envelope = self._forward(target, "recover", message)
        if envelope.get("ok"):
            return True
        if self._error_kind(envelope) == "NoJournal":
            return None
        return False

    def _failover_backoff(self, attempt: int, last_envelope: dict | None) -> None:
        """Jittered exponential delay before failover attempt ``attempt``.

        Honours the ``retry_after`` hint of the previous error envelope
        when it asks for a longer wait than the schedule would.
        """
        delay = min(self._backoff_max, self._backoff_base * (2 ** (attempt - 1)))
        delay *= 0.5 + self._rng.random()  # jitter in [0.5x, 1.5x)
        error = (last_envelope or {}).get("error")
        if isinstance(error, dict) and error.get("retry_after") is not None:
            try:
                delay = max(delay, float(error["retry_after"]))
            except (TypeError, ValueError):
                pass
        if delay > 0:
            self._sleep(delay)

    def _route_finish(
        self, envelope: dict, cmd: str, session: str | None, worker: int
    ) -> dict:
        """Placement bookkeeping after a routed session command
        (journal-less mode — crashes lose sessions)."""
        with self._lock:
            self._routed += 1
        if cmd == "close" and (
            envelope.get("ok") or self._error_kind(envelope) == "UnknownSession"
        ):
            with self._lock:
                self._placements.pop(session, None)
        if self._crashed(envelope):
            # The dead process took its sessions with it; drop their
            # placements so clients get a fast UnknownSession and reopen
            # onto the respawned worker.
            self._drop_worker_placements(worker)
        return envelope

    # -- recover / drain / resize --------------------------------------

    def _recover_command(
        self, request_id, session: str | None, args: dict
    ) -> dict:
        """Wire-level ``recover``: replay one session where it belongs."""
        name = args.get("session") or session
        if not isinstance(name, str) or not name:
            return protocol.error_response(
                request_id,
                "ProtocolError",
                "'recover' needs a non-empty 'session' (args or field)",
            )
        with self._lock:
            placement = self._placements.get(name)
        if placement is None:
            placement = self._adopt(name)
        if placement is None:
            return protocol.error_response(
                request_id,
                "NoJournal",
                f"session {name!r} has no placement and no journal to replay",
            )
        worker, _dataset = placement
        envelope = self._forward(
            worker,
            "recover",
            {"id": request_id, "cmd": "recover", "args": {"session": name}},
        )
        if envelope.get("ok"):
            protocol.annotate_worker(envelope, worker)
            self._breaker_success(worker)
        with self._lock:
            self._routed += 1
        return envelope

    def _drain_command(self, request_id, args: dict) -> dict:
        worker = args.get("worker")
        if isinstance(worker, bool) or not isinstance(worker, int):
            return protocol.error_response(
                request_id,
                "ProtocolError",
                "'drain' needs an integer 'worker' in args",
            )
        try:
            deadline = float(args.get("deadline", 5.0))
        except (TypeError, ValueError):
            return protocol.error_response(
                request_id, "ProtocolError", "'deadline' must be a number"
            )
        restart = bool(args.get("restart", False))
        try:
            summary = self.drain(worker, deadline=deadline, restart=restart)
        except ReproError as error:
            kind = getattr(error, "kind", None) or type(error).__name__
            return protocol.error_response(request_id, kind, str(error))
        return protocol.ok_response(request_id, summary)

    def _resize_command(self, request_id, args: dict) -> dict:
        workers = args.get("workers")
        if isinstance(workers, bool) or not isinstance(workers, int):
            return protocol.error_response(
                request_id,
                "ProtocolError",
                "'resize' needs an integer 'workers' in args",
            )
        try:
            summary = self.resize(workers)
        except ReproError as error:
            kind = getattr(error, "kind", None) or type(error).__name__
            return protocol.error_response(request_id, kind, str(error))
        return protocol.ok_response(request_id, summary)

    def drain(
        self, worker: int, deadline: float = 5.0, restart: bool = False
    ) -> dict:
        """Gracefully take one worker out of rotation.

        Stops new-session admission (the draining flag steers
        :meth:`_placement_target` away), waits for the worker's in-flight
        requests bounded by ``deadline`` seconds, asks it to flush every
        live session's journal (``drain_prepare`` — which also repairs
        journals corrupted on disk, the in-memory records being
        authoritative), then hands its placements to replicas by replay.
        With ``restart=True`` the worker process is finally replaced and
        re-admitted — the rolling-restart primitive.
        """
        worker = int(worker)
        if not 0 <= worker < len(self.pool):
            raise ServiceError(
                f"worker index {worker} out of range (pool has {len(self.pool)})"
            )
        handle = self.pool.workers[worker]
        handle.draining = True
        start = self._clock()
        deadline_at = start + max(0.0, deadline)
        while handle.in_flight > 0 and self._clock() < deadline_at:
            self._sleep(0.02)
        waited = self._clock() - start
        residual = handle.in_flight
        journaled = 0
        prepare = self._forward(
            worker,
            "drain_prepare",
            {"id": f"drain::{worker}", "cmd": "drain_prepare", "args": {}},
        )
        if prepare.get("ok"):
            journaled = int(prepare["result"].get("journaled", 0))
        moved = failed = kept = 0
        with self._lock:
            owned = [
                (name, placement[1])
                for name, placement in self._placements.items()
                if placement[0] == worker
            ]
        for name, dataset in owned:
            target = self._handoff_target(worker, dataset)
            if target is None or self.journals is None:
                kept += 1
                continue
            if self._recover_on(target, name) is True:
                with self._lock:
                    self._placements[name] = (target, dataset)
                moved += 1
            else:
                failed += 1
        restarted = False
        if restart:
            restarted = handle.restart()
            handle.draining = False
            self._breaker_success(worker)
        if obs_enabled():
            self._m_drains.inc()
        return {
            "worker": worker,
            "waited_seconds": waited,
            "residual_in_flight": residual,
            "journaled": journaled,
            "sessions_moved": moved,
            "sessions_failed": failed,
            "sessions_kept": kept,
            "restarted": restarted,
            "draining": handle.draining,
        }

    def _handoff_target(self, worker: int, dataset: str) -> int | None:
        """Where a draining worker's session should land: the first
        admissible replica, else any healthy worker, else nowhere."""
        candidates = [
            int(node) for node in self.ring.nodes_for(dataset, self.n_replicas)
        ]
        candidates += [
            index for index in range(len(self.pool)) if index not in candidates
        ]
        for index in candidates:
            if index == worker or index >= len(self.pool):
                continue
            if self.pool.workers[index].draining:
                continue
            breaker = self._breakers.get(index)
            if breaker is not None and breaker.state == "open":
                continue
            return index
        return None

    def resize(self, n_workers: int) -> dict:
        """Grow or shrink the worker tier, rebalancing placements.

        Shrinking flushes the doomed workers' journals, replays each of
        their sessions onto the new ring's owner, and only then closes
        the processes — journaled sessions move instead of dying.
        Sessions without a journal tier are dropped with a count.
        Growing spawns workers and rebuilds the ring; existing placements
        stay put (consistent hashing moves only new opens).
        """
        n_workers = int(n_workers)
        if n_workers < 1:
            raise ServiceError("resize needs at least one worker")
        old = len(self.pool)
        moved = dropped = 0
        if n_workers < old:
            new_ring = HashRing(
                list(range(n_workers)), replicas=self._ring_points
            )
            for index in range(n_workers, old):
                self.pool.workers[index].draining = True
                self._forward(
                    index,
                    "drain_prepare",
                    {
                        "id": f"resize::{index}",
                        "cmd": "drain_prepare",
                        "args": {},
                    },
                )
            with self._lock:
                doomed = [
                    (name, placement)
                    for name, placement in self._placements.items()
                    if placement[0] >= n_workers
                ]
            for name, (_index, dataset) in doomed:
                target = int(new_ring.node_for(dataset))
                if (
                    self.journals is not None
                    and self._recover_on(target, name) is True
                ):
                    with self._lock:
                        self._placements[name] = (target, dataset)
                    moved += 1
                else:
                    with self._lock:
                        self._placements.pop(name, None)
                    dropped += 1
            self.pool.resize(n_workers)
            self.ring = new_ring
            for index in range(n_workers, old):
                self._breakers.pop(index, None)
        else:
            self.pool.resize(n_workers)
            self.ring = HashRing(
                list(range(n_workers)), replicas=self._ring_points
            )
            for index in range(old, n_workers):
                self._track_worker(index)
        with self._lock:
            placements = len(self._placements)
        return {
            "workers": len(self.pool),
            "sessions_moved": moved,
            "sessions_dropped": dropped,
            "placements": placements,
        }

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _error_kind(envelope: dict) -> str | None:
        error = envelope.get("error")
        return error.get("kind") if isinstance(error, dict) else None

    @classmethod
    def _crashed(cls, envelope: dict) -> bool:
        return cls._error_kind(envelope) == "WorkerCrashed"

    def _drop_worker_placements(self, worker: int) -> None:
        with self._lock:
            self._placements = {
                name: placement
                for name, placement in self._placements.items()
                if placement[0] != worker
            }

    def placement_of(self, session: str) -> tuple[int, str] | None:
        """The (worker, dataset) assignment of a session, if any."""
        with self._lock:
            return self._placements.get(session)

    def close(self) -> None:
        """Shut the pool down."""
        self.pool.close()
