"""Shared read-only state of the service: datasets and preprocess work.

Two levels of sharing make N concurrent sessions cheap:

* :class:`DatasetCatalog` — one :class:`~repro.db.Database` (and thus
  one :class:`~repro.db.table.Table`) per named dataset, built lazily
  and handed to every session that opens on that dataset. Because the
  base table is a shared object, downstream caches can key on object
  identity.
* :class:`~repro.core.preprocessor.PreprocessCache` (re-exported here)
  — one :class:`~repro.core.preprocessor.PreprocessResult` per
  (table, query, S, ε, aggregate), shared across sessions. The cached
  result carries the per-column memos that ride on it — segmented
  aggregates, numeric casts, frequency edges, and the tree-induction
  :class:`~repro.learn.split_index.SplitIndex` — so N sessions
  debugging the same selection share one threshold/bin derivation, not
  just one influence pass.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from functools import partial
from pathlib import Path
from typing import Callable

from ..core.preprocessor import PreprocessCache, preprocess_key
from ..db import Database
from ..errors import ServiceError, StorageError

__all__ = [
    "DatasetCatalog",
    "PreprocessCache",
    "preprocess_key",
]

#: Environment variable pointing at the durable data directory. Set by
#: ``serve --data-dir`` before forking so worker processes inherit it.
DATA_DIR_ENV = "REPRO_DATA_DIR"


class DatasetCatalog:
    """Named, lazily built, shared databases — optionally durable.

    A builder runs at most once per process; every session opened on the
    dataset receives the *same* :class:`~repro.db.Database` object. The
    backing tables are treated as read-only by the service (cleaning
    happens via query rewriting, never by mutating data), so sharing is
    safe.

    With a ``data_dir`` (argument or ``REPRO_DATA_DIR``), the catalog is
    durable: the first build of a dataset persists it as memory-mapped
    columnar table directories under ``<data_dir>/tables/<dataset>/``,
    and every later open — in this process, a forked worker, or a
    restarted server — reads the manifests instead of regenerating data.
    Datasets imported out-of-band (``python -m repro store import``) are
    discovered from the same directory at construction time. Persisted
    datasets are served *from the mmap copy*, so all serving modes run
    the identical durable bytes (byte-identity is locked by the store
    parity tests).
    """

    def __init__(self, data_dir: str | Path | None = None) -> None:
        self._lock = threading.Lock()
        self._builders: dict[str, Callable[[], Database]] = {}
        self._bootstraps: dict[str, str | None] = {}
        self._built: dict[str, Database] = {}
        self._build_locks: dict[str, threading.Lock] = {}
        if data_dir is None:
            data_dir = os.environ.get(DATA_DIR_ENV) or None
        self._data_dir = Path(data_dir).expanduser() if data_dir else None
        self._scan_disk()

    @classmethod
    def with_demo_datasets(
        cls, data_dir: str | Path | None = None
    ) -> "DatasetCatalog":
        """A catalog preloaded with the paper's demo datasets (§3).

        The builders and bootstrap queries are the CLI's own (one
        definition serves both the local shell and the service).
        """
        from ..cli import BOOTSTRAP_QUERIES, load_dataset

        catalog = cls(data_dir=data_dir)
        for name, bootstrap in BOOTSTRAP_QUERIES.items():
            catalog.register(name, partial(load_dataset, name), bootstrap=bootstrap)
        return catalog

    # -- durable layout ----------------------------------------------------

    @property
    def data_dir(self) -> Path | None:
        """The durable root, or ``None`` for a memory-only catalog."""
        return self._data_dir

    def _dataset_dir(self, name: str) -> Path | None:
        if self._data_dir is None:
            return None
        return self._data_dir / "tables" / name

    def _scan_disk(self) -> None:
        """Register datasets already persisted under the data dir."""
        if self._data_dir is None:
            return
        root = self._data_dir / "tables"
        if not root.is_dir():
            return
        for child in sorted(root.iterdir()):
            if not child.is_dir() or ".tmp-" in child.name:
                continue
            bootstrap = None
            meta_path = child / "dataset.json"
            if meta_path.exists():
                try:
                    with meta_path.open() as handle:
                        bootstrap = json.load(handle).get("bootstrap")
                except (OSError, json.JSONDecodeError):
                    bootstrap = None
            self.register(
                child.name, partial(Database.open, child), bootstrap=bootstrap
            )

    def _open_from_disk(self, name: str) -> Database | None:
        """Open the persisted copy of a dataset, or ``None`` if absent."""
        ds_dir = self._dataset_dir(name)
        if ds_dir is None or not ds_dir.is_dir():
            return None
        try:
            return Database.open(ds_dir)
        except StorageError:
            # Half-removed or foreign directory: fall back to building.
            return None

    def _persist(
        self, name: str, db: Database, chunk_rows: int | None = None
    ) -> Database:
        """Persist a freshly built dataset; returns the mmap-backed copy.

        Stages the whole dataset (tables + ``dataset.json``) in a
        per-pid sibling directory and publishes it with one atomic
        rename. When N forked workers race to build the same cold
        dataset, the first rename wins and every loser adopts the
        winner's copy — the builders are deterministic, so the copies
        are interchangeable and nothing is ever clobbered.
        """
        ds_dir = self._dataset_dir(name)
        assert ds_dir is not None
        staging = ds_dir.parent / f"{ds_dir.name}.tmp-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        try:
            db.save(staging, chunk_rows=chunk_rows)
            meta = {
                "dataset": name,
                "bootstrap": self._bootstraps.get(name),
                "tables": list(db.table_names),
            }
            with (staging / "dataset.json").open("w") as handle:
                json.dump(meta, handle, indent=1)
            try:
                os.rename(staging, ds_dir)
            except OSError:
                opened = self._open_from_disk(name)
                if opened is not None:
                    return opened
                raise
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        opened = self._open_from_disk(name)
        if opened is None:  # pragma: no cover - defensive
            raise StorageError(f"failed to reopen persisted dataset {name!r}")
        return opened

    def register(
        self,
        name: str,
        source: Database | Callable[[], Database],
        bootstrap: str | None = None,
    ) -> None:
        """Register a dataset by prebuilt database or zero-arg builder."""
        with self._lock:
            if isinstance(source, Database):
                self._built[name] = source
                self._builders.pop(name, None)
            else:
                self._builders[name] = source
                self._built.pop(name, None)
            self._bootstraps[name] = bootstrap
            self._build_locks.setdefault(name, threading.Lock())

    def get(self, name: str) -> Database:
        """The shared database for ``name``.

        Resolution order: the in-process built copy, then the persisted
        copy under the data dir (warm restart — manifests only, no data
        generation), then the registered builder (whose output is
        persisted for next time when a data dir is configured).
        """
        with self._lock:
            db = self._built.get(name)
            if db is not None:
                return db
            if name not in self._builders:
                known = sorted(set(self._builders) | set(self._built))
                available = ", ".join(known) or "<none>"
                raise ServiceError(
                    f"unknown dataset {name!r} (available: {available})",
                    kind="UnknownDataset",
                )
            build_lock = self._build_locks[name]
        # Build outside the catalog lock (dataset generation can take a
        # while) but under a per-dataset lock so it happens exactly once.
        with build_lock:
            with self._lock:
                db = self._built.get(name)
                if db is not None:
                    return db
                builder = self._builders[name]
            db = self._open_from_disk(name)
            if db is None:
                db = builder()
                if self._data_dir is not None:
                    db = self._persist(name, db)
            with self._lock:
                self._built[name] = db
            return db

    def import_dataset(
        self, name: str, chunk_rows: int | None = None
    ) -> tuple[Database, bool]:
        """Persist ``name`` to the data dir now (``store import``).

        Returns ``(database, created)`` — ``created`` is False when a
        persisted copy already existed, in which case it is adopted
        as-is (matching the first-writer-wins build semantics) and
        ``chunk_rows`` has no effect.
        """
        if self._data_dir is None:
            raise StorageError(
                "import needs a data dir (--data-dir or REPRO_DATA_DIR)"
            )
        ds_dir = self._dataset_dir(name)
        assert ds_dir is not None
        existing = self._open_from_disk(name)
        if existing is not None:
            with self._lock:
                self._built.setdefault(name, existing)
            return existing, False
        with self._lock:
            builder = self._builders.get(name)
        if builder is None:
            known = ", ".join(self.names) or "<none>"
            raise ServiceError(
                f"unknown dataset {name!r} (available: {known})",
                kind="UnknownDataset",
            )
        db = self._persist(name, builder(), chunk_rows=chunk_rows)
        with self._lock:
            self._built[name] = db
        return db, True

    def bootstrap(self, name: str) -> str | None:
        """The suggested first query for ``name`` (None when unset)."""
        with self._lock:
            return self._bootstraps.get(name)

    @property
    def names(self) -> tuple[str, ...]:
        """Every registered dataset name, sorted."""
        with self._lock:
            return tuple(sorted(set(self._builders) | set(self._built)))

    def is_built(self, name: str) -> bool:
        """Whether the dataset has been materialized yet."""
        with self._lock:
            return name in self._built

    def storage_info(self) -> dict:
        """A JSON-safe snapshot of the durable tier (``storage`` command).

        Reads only manifests — calling this never materializes a table.
        """
        from ..db import MmapColumnStore
        from ..db.store import MANIFEST_NAME

        datasets = []
        for name in self.names:
            entry: dict = {"name": name, "built": self.is_built(name)}
            ds_dir = self._dataset_dir(name)
            persisted = ds_dir is not None and ds_dir.is_dir()
            entry["persisted"] = persisted
            if persisted:
                tables = []
                for child in sorted(ds_dir.iterdir()):
                    if child.is_dir() and (child / MANIFEST_NAME).exists():
                        try:
                            tables.append(MmapColumnStore.open(child).describe())
                        except StorageError:
                            continue
                entry["tables"] = tables
            datasets.append(entry)
        return {
            "data_dir": str(self._data_dir) if self._data_dir else None,
            "datasets": datasets,
        }
