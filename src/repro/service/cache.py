"""Shared read-only state of the service: datasets and preprocess work.

Two levels of sharing make N concurrent sessions cheap:

* :class:`DatasetCatalog` — one :class:`~repro.db.Database` (and thus
  one :class:`~repro.db.table.Table`) per named dataset, built lazily
  and handed to every session that opens on that dataset. Because the
  base table is a shared object, downstream caches can key on object
  identity.
* :class:`~repro.core.preprocessor.PreprocessCache` (re-exported here)
  — one :class:`~repro.core.preprocessor.PreprocessResult` per
  (table, query, S, ε, aggregate), shared across sessions. The cached
  result carries the per-column memos that ride on it — segmented
  aggregates, numeric casts, frequency edges, and the tree-induction
  :class:`~repro.learn.split_index.SplitIndex` — so N sessions
  debugging the same selection share one threshold/bin derivation, not
  just one influence pass.
"""

from __future__ import annotations

import threading
from functools import partial
from typing import Callable

from ..core.preprocessor import PreprocessCache, preprocess_key
from ..db import Database
from ..errors import ServiceError

__all__ = [
    "DatasetCatalog",
    "PreprocessCache",
    "preprocess_key",
]


class DatasetCatalog:
    """Named, lazily built, shared databases.

    A builder runs at most once; every session opened on the dataset
    receives the *same* :class:`~repro.db.Database` object. The backing
    tables are treated as read-only by the service (cleaning happens via
    query rewriting, never by mutating data), so sharing is safe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._builders: dict[str, Callable[[], Database]] = {}
        self._bootstraps: dict[str, str | None] = {}
        self._built: dict[str, Database] = {}
        self._build_locks: dict[str, threading.Lock] = {}

    @classmethod
    def with_demo_datasets(cls) -> "DatasetCatalog":
        """A catalog preloaded with the paper's demo datasets (§3).

        The builders and bootstrap queries are the CLI's own (one
        definition serves both the local shell and the service).
        """
        from ..cli import BOOTSTRAP_QUERIES, load_dataset

        catalog = cls()
        for name, bootstrap in BOOTSTRAP_QUERIES.items():
            catalog.register(name, partial(load_dataset, name), bootstrap=bootstrap)
        return catalog

    def register(
        self,
        name: str,
        source: Database | Callable[[], Database],
        bootstrap: str | None = None,
    ) -> None:
        """Register a dataset by prebuilt database or zero-arg builder."""
        with self._lock:
            if isinstance(source, Database):
                self._built[name] = source
                self._builders.pop(name, None)
            else:
                self._builders[name] = source
                self._built.pop(name, None)
            self._bootstraps[name] = bootstrap
            self._build_locks.setdefault(name, threading.Lock())

    def get(self, name: str) -> Database:
        """The shared database for ``name``, building it on first use."""
        with self._lock:
            db = self._built.get(name)
            if db is not None:
                return db
            if name not in self._builders:
                known = sorted(set(self._builders) | set(self._built))
                available = ", ".join(known) or "<none>"
                raise ServiceError(
                    f"unknown dataset {name!r} (available: {available})",
                    kind="UnknownDataset",
                )
            build_lock = self._build_locks[name]
        # Build outside the catalog lock (dataset generation can take a
        # while) but under a per-dataset lock so it happens exactly once.
        with build_lock:
            with self._lock:
                db = self._built.get(name)
                if db is not None:
                    return db
                builder = self._builders[name]
            db = builder()
            with self._lock:
                self._built[name] = db
            return db

    def bootstrap(self, name: str) -> str | None:
        """The suggested first query for ``name`` (None when unset)."""
        with self._lock:
            return self._bootstraps.get(name)

    @property
    def names(self) -> tuple[str, ...]:
        """Every registered dataset name, sorted."""
        with self._lock:
            return tuple(sorted(set(self._builders) | set(self._built)))

    def is_built(self, name: str) -> bool:
        """Whether the dataset has been materialized yet."""
        with self._lock:
            return name in self._built
