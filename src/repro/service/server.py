"""The concurrent DBWipes server: JSON lines over TCP.

A thread-per-connection :class:`socketserver.ThreadingTCPServer` whose
handler reads newline-delimited JSON requests and writes one response
line per request (see :mod:`repro.service.protocol`). All shared state
lives in the :class:`~repro.service.sessions.SessionManager`; the server
itself is just transport.

Dependency-free by design: the standard library's ``socketserver`` plus
the repo's own session/pipeline code — nothing to install, so the demo
serves from any laptop (and the same wire protocol can later be fronted
by an async or sharded transport without touching the handlers).
"""

from __future__ import annotations

import socket
import socketserver
import threading

from .handlers import dispatch
from .protocol import MAX_LINE_BYTES, decode_line, encode, error_response
from .sessions import SessionManager


class _RequestHandler(socketserver.StreamRequestHandler):
    """One client connection: a loop of (read line, dispatch, write line)."""

    server: "_TCPServer"

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        while True:
            try:
                line = self.rfile.readline(MAX_LINE_BYTES + 1)
            except (ConnectionError, OSError):
                return
            if not line:
                return  # client closed the connection
            if not line.endswith(b"\n"):
                # Oversized (truncated by the readline limit) or a partial
                # final line: the stream cannot be resynchronized to the
                # next request boundary, so report and close — never parse
                # the remainder as if it were a fresh request.
                self._write(
                    error_response(
                        None,
                        "ProtocolError",
                        f"request line exceeds {MAX_LINE_BYTES} bytes "
                        "or is truncated; closing connection",
                    )
                )
                return
            if line.strip() == b"":
                continue
            if not self._write(self._respond_to(line)):
                return

    def _write(self, response: dict) -> bool:
        data = encode(response)
        if len(data) > MAX_LINE_BYTES:
            # Never emit a line the client cannot frame; tell it to
            # request less instead.
            data = encode(
                error_response(
                    response.get("id"),
                    "ProtocolError",
                    f"response exceeds {MAX_LINE_BYTES} bytes; "
                    "request fewer rows/points (max_rows / max_points)",
                )
            )
        try:
            self.wfile.write(data)
            self.wfile.flush()
        except (ConnectionError, OSError):
            return False
        return True

    def _respond_to(self, line: bytes) -> dict:
        try:
            message = decode_line(line)
        except Exception as error:
            return error_response(None, type(error).__name__, str(error))
        return dispatch(self.server.manager, message)


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], manager: SessionManager):
        super().__init__(address, _RequestHandler)
        self.manager = manager


class DBWipesServer:
    """The serving tier: many sessions, one process, one port.

    >>> server = DBWipesServer(port=0)      # 0 = pick a free port
    >>> host, port = server.start()         # background thread
    >>> ...                                 # clients connect
    >>> server.stop()

    ``serve_forever()`` is the blocking entry used by
    ``python -m repro serve``.
    """

    def __init__(
        self,
        manager: SessionManager | None = None,
        host: str = "127.0.0.1",
        port: int = 8642,
    ):
        self.manager = manager if manager is not None else SessionManager()
        self._server = _TCPServer((host, port), self.manager)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolved even when created with port 0."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        """Serve from a daemon thread; returns the bound address."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="dbwipes-server",
                daemon=True,
            )
            self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` or interrupt."""
        self._server.serve_forever()

    def stop(self) -> None:
        """Stop accepting connections and release the socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "DBWipesServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def connect_socket(host: str, port: int, timeout: float | None) -> socket.socket:
    """A connected TCP socket (shared by the client and health checks)."""
    return socket.create_connection((host, port), timeout=timeout)
