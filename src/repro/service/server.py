"""The concurrent DBWipes server: JSON lines over TCP.

A thread-per-connection :class:`socketserver.ThreadingTCPServer` whose
handler reads newline-delimited JSON requests and hands each to a
*dispatcher* (see :mod:`repro.service.protocol` for the wire format).
Two dispatchers exist:

* :class:`~repro.service.handlers.LocalDispatcher` (``workers=0``) —
  the original single-process mode: one
  :class:`~repro.service.sessions.SessionManager` in this process.
* :class:`~repro.service.router.RoutingDispatcher` (``workers=N``) —
  the partitioned serving tier: the front end routes session commands
  to N worker processes by consistent hash of the dataset id, so each
  worker's caches stay hot for its shard of the catalog.

Dependency-free by design: the standard library's ``socketserver`` and
``multiprocessing`` plus the repo's own session/pipeline code — nothing
to install, so the demo serves from any laptop.
"""

from __future__ import annotations

import socket
import socketserver
import threading

from .handlers import LocalDispatcher
from .protocol import (
    MAX_LINE_BYTES,
    decode_line,
    encode,
    error_response,
    partial_response,
)
from .sessions import SessionManager


class _RequestHandler(socketserver.StreamRequestHandler):
    """One client connection: a loop of (read line, dispatch, write line)."""

    server: "_TCPServer"

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        while True:
            try:
                line = self.rfile.readline(MAX_LINE_BYTES + 1)
            except (ConnectionError, OSError):
                return
            if not line:
                return  # client closed the connection
            if not line.endswith(b"\n"):
                # Oversized (truncated by the readline limit) or a partial
                # final line: the stream cannot be resynchronized to the
                # next request boundary, so report and close — never parse
                # the remainder as if it were a fresh request.
                self._write(
                    error_response(
                        None,
                        "ProtocolError",
                        f"request line exceeds {MAX_LINE_BYTES} bytes "
                        "or is truncated; closing connection",
                    )
                )
                return
            if line.strip() == b"":
                continue
            if not self._write(self._respond_to(line)):
                return

    def _write(self, response: dict) -> bool:
        data = encode(response)
        if len(data) > MAX_LINE_BYTES:
            # Never emit a line the client cannot frame; tell it to
            # request less instead.
            data = encode(
                error_response(
                    response.get("id"),
                    "ProtocolError",
                    f"response exceeds {MAX_LINE_BYTES} bytes; "
                    "request fewer rows/points (max_rows / max_points)",
                )
            )
        try:
            self.wfile.write(data)
            self.wfile.flush()
        except (ConnectionError, OSError):
            return False
        return True

    def _respond_to(self, line: bytes) -> dict:
        try:
            message = decode_line(line)
        except Exception as error:
            return error_response(None, type(error).__name__, str(error))
        dispatcher = self.server.dispatcher
        emit = None
        if getattr(dispatcher, "supports_streaming", False):
            args = message.get("args") if isinstance(message, dict) else None
            if isinstance(args, dict) and args.get("stream"):
                emit = self._make_emit(message.get("id"))
        return dispatcher.handle(message, emit)

    def _make_emit(self, request_id):
        """A partial-frame writer for one streamed request.

        Partials are written as they arrive (possibly from a worker
        handle's reader thread) strictly before the dispatcher returns
        the terminating envelope, so frame order on the wire matches
        emit order. A client that went away mid-stream is tolerated —
        the final write in :meth:`_write` reports the broken pipe.
        """

        def emit(seq: int, payload: dict) -> None:
            try:
                data = encode(partial_response(request_id, seq, payload))
                if len(data) > MAX_LINE_BYTES:
                    return  # skip the frame; the final envelope decides
                self.wfile.write(data)
                self.wfile.flush()
            except (ConnectionError, OSError):
                pass

        return emit


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    # socketserver's default listen backlog is 5: a hundred clients
    # connecting at once get kernel RSTs before accept() ever runs.
    request_queue_size = 512

    def __init__(self, address: tuple[str, int], dispatcher):
        super().__init__(address, _RequestHandler)
        self.dispatcher = dispatcher


class DBWipesServer:
    """The serving tier: many sessions, one port — one process or many.

    >>> server = DBWipesServer(port=0)      # 0 = pick a free port
    >>> host, port = server.start()         # background thread
    >>> ...                                 # clients connect
    >>> server.stop()

    ``workers=N`` (N >= 1) swaps the in-process
    :class:`~repro.service.sessions.SessionManager` for a
    :class:`~repro.service.workers.WorkerPool` behind a
    :class:`~repro.service.router.RoutingDispatcher` — each worker owns
    a catalog shard by consistent hash of the dataset id. In that mode
    ``manager`` is ignored (``None``); ``catalog_factory``, ``config``,
    ``max_sessions``, and ``ttl_seconds`` configure every worker's own
    manager instead. ``serve_forever()`` is the blocking entry used by
    ``python -m repro serve``.
    """

    def __init__(
        self,
        manager: SessionManager | None = None,
        host: str = "127.0.0.1",
        port: int = 8642,
        workers: int = 0,
        catalog_factory=None,
        config=None,
        max_sessions: int = 64,
        ttl_seconds: float | None = None,
    ):
        self.pool = None
        if workers and int(workers) > 0:
            from .router import RoutingDispatcher
            from .workers import WorkerPool

            self.manager = None
            self.pool = WorkerPool(
                int(workers),
                catalog_factory=catalog_factory,
                config=config,
                max_sessions=max_sessions,
                ttl_seconds=ttl_seconds,
            )
            self.dispatcher = RoutingDispatcher(self.pool)
        else:
            self.manager = manager if manager is not None else SessionManager()
            self.dispatcher = LocalDispatcher(self.manager)
        self._server = _TCPServer((host, port), self.dispatcher)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolved even when created with port 0."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        """Serve from a daemon thread; returns the bound address."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="dbwipes-server",
                daemon=True,
            )
            self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` or interrupt."""
        self._server.serve_forever()

    def stop(self) -> None:
        """Stop accepting connections, release the socket, stop workers."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "DBWipesServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def connect_socket(host: str, port: int, timeout: float | None) -> socket.socket:
    """A connected TCP socket (shared by the client and health checks)."""
    return socket.create_connection((host, port), timeout=timeout)
