"""The JSON-line wire protocol of the DBWipes service.

One request, one response, one line each — newline-delimited JSON over a
TCP stream. Requests are objects::

    {"id": 7, "cmd": "select_results", "session": "alice",
     "args": {"brush": {"y1": 0.0}, "y": "std_temp"}}

``id`` is an arbitrary client token echoed back verbatim; ``session``
names the target session (omitted for server-scoped commands such as
``ping``/``stats``); ``args`` is the command's keyword arguments.

Responses either succeed::

    {"id": 7, "ok": true, "result": {...}}

or carry an error envelope whose ``kind`` is the server-side exception
class name, so clients can distinguish user mistakes
(``SessionError``, ``SQLSyntaxError``) from protocol violations
(``ProtocolError``) and crashes (``InternalError``)::

    {"id": 7, "ok": false, "error": {"kind": "SessionError",
                                     "message": "select ... first"}}

The multi-process front end adds kinds of its own: a request whose
worker process died mid-flight gets ``WorkerCrashed`` (the worker is
respawned) and one whose worker stopped answering gets
``WorkerTimeout`` — a routed request always ends in an envelope, never
a hung connection. When the server runs with a data dir, the router
first *heals* such requests transparently: every mutating command is
journaled per session, and on a crash the router replays the journal
on a replica (or the respawned primary) and re-sends the request, so
these kinds surface only after failover is exhausted. ``NoJournal``
marks the one unrecoverable case — a session with neither live state
nor a journal to replay.

Three lifecycle commands ride the same framing on the routed tier:
``recover`` (``args: {"session": ...}`` or the ``session`` field)
replays one session's journal where it belongs; ``drain``
(``args: {"worker": N, "deadline": S, "restart": bool}``) takes a
worker out of rotation gracefully — waits out in-flight work, flushes
journals, hands placements to replicas, optionally restarts the
process; ``resize`` (``args: {"workers": N}``) grows or shrinks the
pool, rebalancing placements by replay. On the single-process tier
``recover`` works the same (journals permitting) while ``drain``/
``resize`` return a structured ``ServiceError``.

The async gateway (:mod:`repro.service.async_server`) adds two more
wire forms. A request shed by admission control or per-client rate
limiting gets a ``ServerBusy`` error envelope whose error object
carries ``retry_after`` (seconds the client should back off before
retrying)::

    {"id": 7, "ok": false, "error": {"kind": "ServerBusy",
                                     "message": "...",
                                     "retry_after": 0.25}}

And a ``debug`` request carrying ``args: {"stream": true}`` may receive
zero or more *partial frames* before its final envelope — the current
ranked rules after the rank stage and after each surviving merge
round::

    {"id": 7, "partial": true, "seq": 0, "result": {"stage": "rank",
                                                    "predicates": [...],
                                                    "n_predicates": 3}}

Partial frames are marked ``"partial": true`` and carry no ``ok`` key;
the exchange always ends with one ordinary final envelope that is
byte-identical to the non-streamed response. Both additions are why
``PROTOCOL_VERSION`` is 2. Partial frames also cross the worker pipe
on the routed tier (the threaded server and the gateway both forward
them), with one caveat: a mid-stream failover replays the stream from
the replica, so partial frames are at-least-once — the final envelope
is exact either way.

Telemetry rides the same framing. Every response envelope is stamped
with a top-level ``"trace"`` string — the request's trace id — and a
request *may* carry ``"trace": {"id": ..., "parent": ...}`` to join an
existing trace (the router adds this when forwarding to workers, so one
client request is one trace across processes). Two server-scoped
commands expose what was recorded: ``metrics`` returns the
cluster-merged registry snapshot (counters summed across workers,
histograms merged bucket-wise) plus recent slow-request records, and
``trace`` returns one trace's spans as a flat list and a nested tree
(``args: {"trace_id": ...}``; defaults to the most recent trace).

Everything on the wire is JSON-safe: numpy scalars are unwrapped,
arrays become lists, and NaN/±inf become ``null`` (the protocol is
strict JSON — ``allow_nan`` is off in both directions).
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable

import numpy as np

from ..core.report import DebugReport, RankedPredicate
from ..db.result import ResultSet
from ..errors import ProtocolError
from ..frontend.forms import FormOption
from ..frontend.scatter import ScatterData
from ..frontend.selection import Brush

#: Bumped on wire-incompatible changes; served by ``ping``.
#: 2 = ``ServerBusy``/``retry_after`` envelopes and streamed partial
#: ``debug`` frames (the async gateway).
PROTOCOL_VERSION = 2

#: Upper bound on one wire line in either direction; longer lines are a
#: protocol error (keeps a misbehaving peer from ballooning memory, and
#: a truncated line can never be re-framed). The command tables live in
#: :mod:`repro.service.handlers`.
MAX_LINE_BYTES = 8 * 1024 * 1024


# ----------------------------------------------------------------------
# JSON-safe conversion
# ----------------------------------------------------------------------


def jsonify(value: Any) -> Any:
    """Recursively convert ``value`` into strict-JSON-safe data.

    Numpy integers/floats/bools unwrap to Python scalars; arrays become
    lists; non-finite floats become ``None``.
    """
    if value is None or isinstance(value, (str, bool, int)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return jsonify(float(value))
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonify(v) for v in value]
    return str(value)


def encode(message: dict) -> bytes:
    """One wire line: compact JSON + newline."""
    return (
        json.dumps(jsonify(message), separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """Parse one wire line into a message object.

    Raises :class:`~repro.errors.ProtocolError` for malformed JSON or a
    non-object payload.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"request is not valid UTF-8: {error}") from None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"request is not valid JSON: {error.msg}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    return message


def validate_request(message: dict) -> tuple[str, str | None, dict]:
    """Check a decoded request's shape; returns (cmd, session, args)."""
    cmd = message.get("cmd")
    if not isinstance(cmd, str) or not cmd:
        raise ProtocolError("request needs a string 'cmd' field")
    session = message.get("session")
    if session is not None and not isinstance(session, str):
        raise ProtocolError("'session' must be a string when present")
    args = message.get("args", {})
    if args is None:
        args = {}
    if not isinstance(args, dict):
        raise ProtocolError("'args' must be a JSON object when present")
    return cmd, session, args


def ok_response(request_id: Any, result: Any) -> dict:
    """A success envelope echoing the request id."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, kind: str, message: str) -> dict:
    """An error envelope echoing the request id."""
    return {"id": request_id, "ok": False, "error": {"kind": kind, "message": message}}


def busy_response(request_id: Any, message: str, retry_after: float) -> dict:
    """A ``ServerBusy`` load-shed envelope with a suggested backoff.

    ``retry_after`` is the gateway's estimate (seconds) of when capacity
    frees up, derived from the per-stage timing counters of recently
    served requests — never a bare constant.
    """
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "kind": "ServerBusy",
            "message": message,
            "retry_after": round(float(retry_after), 4),
        },
    }


def partial_response(request_id: Any, seq: int, result: Any) -> dict:
    """One streamed partial frame (``"partial": true``, no ``ok`` key)."""
    return {"id": request_id, "partial": True, "seq": int(seq), "result": result}


def annotate_worker(envelope: dict, worker: int) -> dict:
    """Tag a success envelope's object result with the answering worker.

    The routing front end stamps ``open`` responses this way so clients
    can observe the consistent-hash placement without a ``stats`` call.
    """
    result = envelope.get("result")
    if envelope.get("ok") and isinstance(result, dict):
        result["worker"] = worker
    return envelope


# ----------------------------------------------------------------------
# payload builders (server -> client)
# ----------------------------------------------------------------------


def result_payload(result: ResultSet, max_rows: int | None = None) -> dict:
    """A query result as columns + row lists (optionally truncated)."""
    num_rows = result.num_rows
    shown = num_rows if max_rows is None else min(num_rows, int(max_rows))
    rows = [list(result.row(i)) for i in range(shown)]
    return {
        "columns": list(result.column_names),
        "group_keys": list(result.group_key_names),
        "aggregates": list(result.aggregate_names),
        "num_rows": num_rows,
        "rows": rows,
        "truncated": shown < num_rows,
    }


def scatter_payload(scatter: ScatterData, max_points: int | None = None) -> dict:
    """A scatterplot as parallel coordinate/key lists."""
    n = len(scatter)
    shown = n if max_points is None else min(n, int(max_points))
    return {
        "kind": scatter.kind,
        "x_label": scatter.x_label,
        "y_label": scatter.y_label,
        "n": n,
        "x": scatter.x[:shown],
        "y": scatter.y[:shown],
        "keys": scatter.keys[:shown],
        "truncated": shown < n,
    }


def ranked_payload(ranked: RankedPredicate) -> dict:
    """One ranked predicate, with both SQL and display renderings."""
    return {
        "predicate": ranked.predicate.describe(),
        "sql": ranked.predicate.to_sql(),
        "score": ranked.score,
        "epsilon_before": ranked.epsilon_before,
        "epsilon_after": ranked.epsilon_after,
        "error_reduction": ranked.error_reduction,
        "accuracy": ranked.accuracy,
        "precision": ranked.precision,
        "recall": ranked.recall,
        "complexity": ranked.complexity,
        "n_matched": ranked.n_matched,
        "candidate_origin": ranked.candidate_origin,
        "source": ranked.source,
    }


def report_payload(report: DebugReport, max_rows: int | None = None) -> dict:
    """A debug report: ranked predicates plus request-level stats."""
    shown = len(report) if max_rows is None else min(len(report), int(max_rows))
    return {
        "predicates": [ranked_payload(report[i]) for i in range(shown)],
        "n_predicates": len(report),
        "epsilon": report.epsilon,
        "metric": report.metric_description,
        "selected_rows": list(report.selected_rows),
        "n_inputs": report.n_inputs,
        "n_dprime": report.n_dprime,
        "n_candidates": report.n_candidates,
        "timings": dict(report.timings),
    }


def partial_report_payload(
    ranked: Iterable[RankedPredicate],
    stage: str,
    max_rows: int | None = None,
) -> dict:
    """A streamed snapshot of the ranked rules mid-``debug``.

    ``stage`` names where the snapshot was taken (``"rank"`` or
    ``"merge"``); the predicates are presented in final ranking order
    (best first) so a client can render each frame as-is.
    """
    ordered = sorted(
        ranked, key=lambda r: (-r.score, r.complexity, r.predicate.describe())
    )
    shown = len(ordered) if max_rows is None else min(len(ordered), int(max_rows))
    return {
        "stage": stage,
        "predicates": [ranked_payload(r) for r in ordered[:shown]],
        "n_predicates": len(ordered),
    }


def forms_payload(options: Iterable[FormOption]) -> list[dict]:
    """The error-metric form options (Figure 5) as JSON objects."""
    return [
        {
            "form_id": option.form_id,
            "label": option.label,
            "params": list(option.params),
            "defaults": dict(option.defaults),
        }
        for option in options
    ]


# ----------------------------------------------------------------------
# argument parsers (client -> server)
# ----------------------------------------------------------------------


def brush_from_json(obj: Any) -> Brush:
    """A :class:`Brush` from its wire form.

    Accepts ``{"x0":…,"x1":…,"y0":…,"y1":…}`` with any subset of bounds
    (missing or ``null`` bounds are unbounded), or the shorthands
    ``{"above": v}`` / ``{"below": v}``.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("brush must be a JSON object")
    if "above" in obj:
        return Brush.above(_bound(obj["above"], "above"))
    if "below" in obj:
        return Brush.below(_bound(obj["below"], "below"))
    allowed = {"x0", "x1", "y0", "y1"}
    unknown = set(obj) - allowed
    if unknown:
        raise ProtocolError(f"unknown brush fields: {sorted(unknown)}")
    def pick(name: str, default: float) -> float:
        value = obj.get(name)
        return default if value is None else _bound(value, name)

    return Brush(
        x0=pick("x0", -math.inf),
        x1=pick("x1", math.inf),
        y0=pick("y0", -math.inf),
        y1=pick("y1", math.inf),
    )


def selection_from_args(args: dict, keys_field: str) -> Any:
    """The selection argument for select_results / select_inputs.

    ``keys_field`` is ``"rows"`` or ``"tids"``; exactly one of that
    field or ``"brush"`` must be present.
    """
    has_keys = keys_field in args and args[keys_field] is not None
    has_brush = "brush" in args and args["brush"] is not None
    if has_keys == has_brush:
        raise ProtocolError(
            f"selection needs exactly one of {keys_field!r} or 'brush'"
        )
    if has_brush:
        brush = args["brush"]
        if isinstance(brush, list):
            return [brush_from_json(b) for b in brush]
        return brush_from_json(brush)
    keys = args[keys_field]
    if not isinstance(keys, list):
        raise ProtocolError(f"{keys_field!r} must be a list of integers")
    try:
        return [int(k) for k in keys]
    except (TypeError, ValueError):
        raise ProtocolError(f"{keys_field!r} must be a list of integers") from None


def _bound(value: Any, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"brush bound {name!r} must be a number")
    return float(value)
