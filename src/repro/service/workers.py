"""The multiprocessing worker pool behind the routing front end.

Each worker is a separate OS process owning its *own*
:class:`~repro.service.sessions.SessionManager` over its own
:class:`~repro.service.cache.DatasetCatalog`. The catalog builds
datasets lazily, so a worker only ever materializes the datasets the
router hashes onto it — that is the catalog shard, and with it the
worker's ``PreprocessCache`` / ``SplitIndex`` / ``MaskSet`` memos stay
local to exactly the sessions that hit them (cache affinity).

Transport is one duplex :func:`multiprocessing.Pipe` per worker carrying
``(request_token, message)`` tuples down and ``(request_token,
envelope)`` tuples back. The parent side multiplexes: sends happen under
a lock, a daemon reader thread completes pending calls as responses
arrive, and many front-end connection threads can have calls in flight
on one worker at once.

A worker that dies — killed, OOMed, crashed — must never strand a
client connection: the reader thread sees the pipe close, fails every
pending call with a structured ``WorkerCrashed`` error envelope (the
same ``kind`` convention every other service error uses), and respawns
the process. What happens to the dead worker's sessions depends on the
durable tier: with a data dir, each session's journal
(:mod:`repro.service.journal`) lets the router replay it onto a
replica or the respawned process; without one, clients re-``open``.

Streamed ``debug`` partials also cross the pipe: a worker emits
``(token, partial_frame)`` tuples mid-dispatch and the reader routes
them to the call's ``on_partial`` hook without completing the call, so
the routed tier streams exactly like the in-process dispatcher.

Two lifecycle verbs beyond crash-respawn: :meth:`WorkerHandle.restart`
swaps in a fresh process (rolling restarts, via ``drain``), and
:attr:`WorkerHandle.draining` marks a worker closed to *new* session
placements while in-flight work finishes. Pool shutdown is two-phase —
every handle is marked closed before any is reaped — so a worker crash
that lands mid-``close()`` can no longer race the reader thread into
respawning an orphan process.

Deterministic fault injection (:mod:`repro.service.faults`) hooks the
request path here: an active plan can SIGKILL a worker right after its
Nth request hits the pipe, or discard a reply so the caller observes a
``WorkerTimeout``.

The ``fork`` start method is preferred (prebuilt catalogs and closures
cross to the child without pickling); ``spawn`` is the fallback where
fork is unavailable, and there the ``catalog_factory`` / ``config``
arguments must be picklable.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
from typing import Any, Callable

from ..errors import ServiceError
from ..obs.flags import enabled as obs_enabled
from ..obs.metrics import registry as obs_registry
from . import faults
from .cache import DatasetCatalog
from .protocol import error_response, partial_response

#: Default seconds a routed call waits before giving up with a
#: ``WorkerTimeout`` envelope (None = wait forever).
DEFAULT_CALL_TIMEOUT: float | None = 300.0


def _worker_main(
    conn,
    index: int,
    catalog_factory: Callable[[], DatasetCatalog] | None,
    config,
    max_sessions: int,
    ttl_seconds: float | None,
) -> None:
    """Worker process entry: a (recv, dispatch, send) loop until EOF."""
    from ..obs import flags as obs_flags
    from ..obs import trace as obs_trace_mod
    from .handlers import dispatch
    from .sessions import SessionManager

    # A fresh telemetry slate: under ``fork`` the child inherits the
    # parent's registry and trace buffer as they stood at spawn time,
    # and reporting those inherited values again would double-count them
    # in the cluster merge. Under ``spawn`` these are no-ops.
    obs_registry().clear()
    obs_trace_mod.tracer().clear()
    obs_flags.reset_from_env()

    # Durable-tier fork safety mirrors the registry reset above: each
    # worker builds its own catalog + artifact store against the shared
    # REPRO_DATA_DIR, and every disk write in that tier stages under a
    # per-*pid* temp name published by atomic rename with first-writer-
    # wins — so N forked workers racing on a cold dataset or artifact
    # produce one file, never a clobber (and a parent forked mid-persist
    # cannot collide with any child's staging paths).
    catalog = (
        catalog_factory()
        if catalog_factory is not None
        else DatasetCatalog.with_demo_datasets()
    )
    manager = SessionManager(
        catalog=catalog,
        config=config,
        max_sessions=max_sessions,
        ttl_seconds=ttl_seconds,
    )
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            break
        if item is None:  # orderly shutdown sentinel
            break
        token, message = item
        emit = None
        if isinstance(message, dict):
            args = message.get("args")
            if isinstance(args, dict) and bool(args.get("stream")):
                request_id = message.get("id")

                def emit(seq, payload, _token=token, _rid=request_id):
                    # Partial frames interleave with the final (token,
                    # envelope) send on the same single-threaded loop,
                    # so frame order on the pipe matches emit order.
                    try:
                        conn.send((_token, partial_response(_rid, seq, payload)))
                    except (BrokenPipeError, OSError):
                        pass

        try:
            envelope = dispatch(manager, message, role="worker", emit_partial=emit)
        except BaseException as error:  # noqa: BLE001 — dispatch shields, belt and braces
            envelope = error_response(
                message.get("id") if isinstance(message, dict) else None,
                "InternalError",
                f"{type(error).__name__}: {error}",
            )
        try:
            conn.send((token, envelope))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _Pending:
    """One in-flight call: the caller's event and the response slot.

    A blocking caller waits on ``event``; an asyncio caller additionally
    passes a ``callback`` invoked (from the reader thread) on completion
    so the envelope can be marshalled onto the event loop. Streamed
    calls pass ``on_partial``, invoked (also from the reader thread) for
    each partial frame *without* completing the call.
    """

    __slots__ = ("request_id", "event", "envelope", "callback", "on_partial")

    def __init__(
        self,
        request_id: Any,
        callback: Callable[[dict], None] | None = None,
        on_partial: Callable[[dict], None] | None = None,
    ):
        self.request_id = request_id
        self.event = threading.Event()
        self.envelope: dict | None = None
        self.callback = callback
        self.on_partial = on_partial

    def complete(self, envelope: dict) -> None:
        self.envelope = envelope
        self.event.set()
        if self.callback is not None:
            self.callback(envelope)


class WorkerHandle:
    """One worker process plus the parent-side request multiplexing."""

    def __init__(
        self,
        index: int,
        ctx,
        catalog_factory: Callable[[], DatasetCatalog] | None = None,
        config=None,
        max_sessions: int = 64,
        ttl_seconds: float | None = None,
        call_timeout: float | None = DEFAULT_CALL_TIMEOUT,
    ):
        self.index = index
        self._ctx = ctx
        self._catalog_factory = catalog_factory
        self._config = config
        self._max_sessions = max_sessions
        self._ttl_seconds = ttl_seconds
        self.call_timeout = call_timeout
        self.requests = 0
        self.restarts = 0
        #: Set by the router's drain path: a draining worker serves its
        #: in-flight and already-placed work but admits no new sessions.
        self.draining = False
        # Parent-side failure telemetry: these counters live in the
        # front-end process (where crashes/timeouts are *observed*) and
        # join the cluster merge through the router's own snapshot.
        reg = obs_registry()
        labels = {"worker": str(index)}
        self._m_requests = reg.counter(
            "dbwipes_worker_requests_total",
            labels=labels,
            help="Requests forwarded to a worker process.",
        )
        self._m_respawns = reg.counter(
            "dbwipes_worker_respawns_total",
            labels=labels,
            help="Worker processes respawned after a crash.",
        )
        self._m_timeouts = reg.counter(
            "dbwipes_worker_timeouts_total",
            labels=labels,
            help="Forwarded requests that hit the call timeout.",
        )
        self._m_crashed = reg.counter(
            "dbwipes_worker_crashed_requests_total",
            labels=labels,
            help="Forwarded requests failed by a worker crash.",
        )
        #: Guards the connection, the pending map, and the generation
        #: counter (sends are serialized; only the reader thread recvs).
        self._lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        #: Tokens whose replies a fault plan ordered discarded; the
        #: reader drops them so the caller observes a WorkerTimeout.
        self._drop_tokens: set[int] = set()
        self._next_token = 0
        self._generation = 0
        self._closed = False
        self.process = None
        self._conn = None
        with self._lock:
            self._spawn_locked()

    # -- lifecycle -----------------------------------------------------

    def _spawn_locked(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self.index,
                self._catalog_factory,
                self._config,
                self._max_sessions,
                self._ttl_seconds,
            ),
            name=f"dbwipes-worker-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.process = process
        self._conn = parent_conn
        self._generation += 1
        reader = threading.Thread(
            target=self._read_loop,
            args=(parent_conn, self._generation),
            name=f"dbwipes-worker-{self.index}-reader",
            daemon=True,
        )
        reader.start()

    def request_close(self) -> None:
        """Phase one of shutdown: latch the closed flag and nudge.

        Once the flag is up the reader thread can never respawn this
        worker again — crashes that land between now and :meth:`reap`
        strand no orphan process. Idempotent; never blocks.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send(None)
            except (BrokenPipeError, OSError):
                pass

    def reap(self) -> None:
        """Phase two of shutdown: join, escalate to terminate, clean up."""
        with self._lock:
            conn, process = self._conn, self.process
            stranded = list(self._pending.values())
            self._pending.clear()
        if process is not None:
            process.join(timeout=2)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2)
        try:
            conn.close()
        except OSError:
            pass
        for pending in stranded:
            pending.complete(
                error_response(
                    pending.request_id, "WorkerCrashed", "worker pool is closed"
                )
            )

    def close(self) -> None:
        """Orderly shutdown: sentinel, join briefly, then terminate."""
        self.request_close()
        self.reap()

    def restart(self) -> bool:
        """Swap in a fresh worker process (the rolling-restart verb).

        Unlike a crash respawn this is deliberate: the old process gets
        the shutdown sentinel and a bounded join before termination,
        and any in-flight calls (the drain path waits those out first,
        so normally none) fail with a structured envelope. Returns
        False when the handle is already closed.
        """
        with self._lock:
            if self._closed:
                return False
            old_conn, old_process = self._conn, self.process
            stranded = list(self._pending.values())
            self._pending.clear()
            self._drop_tokens.clear()
            try:
                old_conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            # Bumping the generation inside _spawn_locked makes the old
            # reader thread exit silently at EOF instead of respawning.
            self._spawn_locked()
            self.restarts += 1
        old_process.join(timeout=5)
        if old_process.is_alive():
            old_process.terminate()
            old_process.join(timeout=2)
        try:
            old_conn.close()
        except OSError:
            pass
        for pending in stranded:
            pending.complete(
                error_response(
                    pending.request_id,
                    "WorkerCrashed",
                    f"worker {self.index} restarted while handling the request",
                )
            )
        return True

    @property
    def alive(self) -> bool:
        """Whether the current worker process is running."""
        return self.process is not None and self.process.is_alive()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def in_flight(self) -> int:
        """Calls sent and not yet answered (the drain path polls this)."""
        with self._lock:
            return len(self._pending)

    # -- request path --------------------------------------------------

    def _begin_call(self, message: dict, pending: _Pending) -> int | dict:
        """Register ``pending`` and send; an error envelope on failure.

        Returns the pipe token on success so the caller can cancel the
        pending entry on its own timeout path.
        """
        plan = faults.active_plan()
        kill_now = drop_reply = False
        if plan is not None:
            kill_now, drop_reply = plan.worker_request(self.index)
        with self._lock:
            if self._closed:
                return error_response(
                    pending.request_id, "WorkerCrashed", "worker pool is closed"
                )
            token = self._next_token
            self._next_token += 1
            self._pending[token] = pending
            if drop_reply:
                self._drop_tokens.add(token)
            self.requests += 1
            if obs_enabled():
                self._m_requests.inc()
            try:
                self._conn.send((token, message))
            except (BrokenPipeError, OSError):
                # The reader thread handles the respawn on EOF; this
                # call just reports the crash.
                self._pending.pop(token, None)
                self._drop_tokens.discard(token)
                self._m_crashed.inc()
                return error_response(
                    pending.request_id,
                    "WorkerCrashed",
                    f"worker {self.index} is down; it is being restarted",
                )
            process = self.process
        if kill_now and process is not None:
            # After the send, so the worker dies with the request in its
            # pipe or mid-dispatch — the scripted version of kill -9.
            process.kill()
        return token

    def _timed_out(self, token: int, request_id, timeout) -> dict:
        with self._lock:
            self._pending.pop(token, None)
            self._drop_tokens.discard(token)
        self._m_timeouts.inc()
        return error_response(
            request_id,
            "WorkerTimeout",
            f"worker {self.index} did not answer within {timeout}s",
        )

    def call(
        self,
        message: dict,
        timeout: float | None = None,
        on_partial: Callable[[dict], None] | None = None,
    ) -> dict:
        """Send one request to the worker and wait for its envelope.

        Never raises for worker failures: a dead worker yields a
        ``WorkerCrashed`` envelope (and a respawn), an unresponsive one a
        ``WorkerTimeout`` envelope — the connection is never left hung.
        ``on_partial`` receives streamed partial frames (reader thread)
        ahead of the returned terminating envelope.
        """
        if timeout is None:
            timeout = self.call_timeout
        request_id = message.get("id") if isinstance(message, dict) else None
        pending = _Pending(request_id, on_partial=on_partial)
        outcome = self._begin_call(message, pending)
        if isinstance(outcome, dict):
            return outcome
        if pending.event.wait(timeout):
            assert pending.envelope is not None
            return pending.envelope
        return self._timed_out(outcome, request_id, timeout)

    async def call_async(
        self,
        message: dict,
        timeout: float | None = None,
        on_partial: Callable[[dict], None] | None = None,
    ) -> dict:
        """Awaitable twin of :meth:`call` for the asyncio gateway.

        The reader thread still does the waiting; completion is
        marshalled onto the running loop via ``call_soon_threadsafe``,
        so a stuck worker parks one coroutine instead of one OS thread —
        and can never stall the event loop itself. Failure semantics are
        identical to :meth:`call` (envelopes, never exceptions).
        """
        if timeout is None:
            timeout = self.call_timeout
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def deliver(envelope: dict) -> None:
            def _resolve() -> None:
                if not future.done():
                    future.set_result(envelope)

            try:
                loop.call_soon_threadsafe(_resolve)
            except RuntimeError:
                pass  # the loop shut down before the worker answered

        request_id = message.get("id") if isinstance(message, dict) else None
        pending = _Pending(request_id, callback=deliver, on_partial=on_partial)
        outcome = self._begin_call(message, pending)
        if isinstance(outcome, dict):
            return outcome
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            return self._timed_out(outcome, request_id, timeout)

    def _read_loop(self, conn, generation: int) -> None:
        while True:
            try:
                token, envelope = conn.recv()
            except (EOFError, OSError):
                break
            except (ValueError, TypeError):
                continue  # unframeable response; keep the worker alive
            if isinstance(envelope, dict) and envelope.get("partial"):
                # A streamed frame: route to the call's hook without
                # completing it (the terminating envelope still comes).
                with self._lock:
                    pending = self._pending.get(token)
                    dropped = token in self._drop_tokens
                if pending is not None and not dropped:
                    hook = pending.on_partial
                    if hook is not None:
                        hook(envelope)
                continue
            with self._lock:
                if token in self._drop_tokens:
                    # Fault plan: discard the reply; the caller times out.
                    self._drop_tokens.discard(token)
                    self._pending.pop(token, None)
                    continue
                pending = self._pending.pop(token, None)
            if pending is not None:
                pending.complete(envelope)
        # The pipe closed: orderly shutdown, a superseded generation, or
        # a crash. Only the crash respawns and fails the in-flight calls.
        with self._lock:
            if self._closed or generation != self._generation:
                return
            stranded = list(self._pending.values())
            self._pending.clear()
            self._drop_tokens.clear()
            self.restarts += 1
            self._spawn_locked()
        self._m_respawns.inc()
        if stranded:
            self._m_crashed.inc(len(stranded))
        for pending in stranded:
            pending.complete(
                error_response(
                    pending.request_id,
                    "WorkerCrashed",
                    f"worker {self.index} exited while handling the request; "
                    "it has been restarted — reopen the session and retry",
                )
            )

    def stats(self) -> dict:
        """Process-level counters (requests, restarts, liveness)."""
        with self._lock:
            return {
                "worker": self.index,
                "pid": self.process.pid if self.process else None,
                "alive": self.alive,
                "requests": self.requests,
                "restarts": self.restarts,
                "in_flight": len(self._pending),
                "draining": self.draining,
            }


class WorkerPool:
    """N workers, one handle each, addressed by index.

    The pool knows nothing about routing — the
    :class:`~repro.service.router.RoutingDispatcher` decides which index
    serves which dataset/session; the pool just moves envelopes.
    """

    def __init__(
        self,
        n_workers: int,
        catalog_factory: Callable[[], DatasetCatalog] | None = None,
        config=None,
        max_sessions: int = 64,
        ttl_seconds: float | None = None,
        start_method: str | None = None,
        call_timeout: float | None = DEFAULT_CALL_TIMEOUT,
    ):
        if n_workers < 1:
            raise ServiceError("n_workers must be >= 1")
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self._ctx = ctx
        self._catalog_factory = catalog_factory
        self._config = config
        self._max_sessions = max_sessions
        self._ttl_seconds = ttl_seconds
        self._call_timeout = call_timeout
        self._closed = False
        self.workers = [
            self._make_worker(index) for index in range(n_workers)
        ]

    def _make_worker(self, index: int) -> WorkerHandle:
        return WorkerHandle(
            index,
            self._ctx,
            catalog_factory=self._catalog_factory,
            config=self._config,
            max_sessions=self._max_sessions,
            ttl_seconds=self._ttl_seconds,
            call_timeout=self._call_timeout,
        )

    def __len__(self) -> int:
        return len(self.workers)

    @property
    def closed(self) -> bool:
        return self._closed

    def resize(self, n_workers: int) -> None:
        """Grow or shrink the pool to ``n_workers`` handles.

        Growing spawns fresh workers at the next indexes; shrinking
        closes the highest-indexed handles (worker identity is its list
        position, so removal only ever happens at the tail). The router
        drains and rebalances placements around this — the pool itself
        just changes the process count.
        """
        if n_workers < 1:
            raise ServiceError("n_workers must be >= 1")
        if self._closed:
            raise ServiceError("worker pool is closed")
        while len(self.workers) < n_workers:
            self.workers.append(self._make_worker(len(self.workers)))
        if len(self.workers) > n_workers:
            removed = self.workers[n_workers:]
            del self.workers[n_workers:]
            for worker in removed:
                worker.request_close()
            for worker in removed:
                worker.reap()

    def call(
        self,
        index: int,
        message: dict,
        timeout: float | None = None,
        on_partial: Callable[[dict], None] | None = None,
    ) -> dict:
        """One request to one worker; always returns an envelope."""
        return self.workers[index].call(
            message, timeout=timeout, on_partial=on_partial
        )

    def broadcast(self, message: dict) -> list[dict]:
        """The same request to every worker; envelopes in worker order."""
        return [worker.call(message) for worker in self.workers]

    async def call_async(
        self,
        index: int,
        message: dict,
        timeout: float | None = None,
        on_partial: Callable[[dict], None] | None = None,
    ) -> dict:
        """Awaitable :meth:`call` — parks a coroutine, not a thread."""
        return await self.workers[index].call_async(
            message, timeout=timeout, on_partial=on_partial
        )

    async def broadcast_async(self, message: dict) -> list[dict]:
        """Concurrent :meth:`broadcast`; envelopes still in worker order."""
        return list(
            await asyncio.gather(
                *(worker.call_async(message) for worker in self.workers)
            )
        )

    def stats(self) -> list[dict]:
        """Per-worker process counters, in worker order."""
        return [worker.stats() for worker in self.workers]

    def close(self) -> None:
        """Shut every worker down, two-phase.

        Every handle latches its closed flag *before* any handle is
        joined: a worker that crashes while an earlier sibling is being
        reaped finds its own respawn guard already up, so pool close can
        never leak a freshly respawned orphan process.
        """
        self._closed = True
        for worker in self.workers:
            worker.request_close()
        for worker in self.workers:
            worker.reap()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
