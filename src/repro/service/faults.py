"""Deterministic fault injection for the serving tier.

A :class:`FaultPlan` describes a small set of scripted failures —
kill a worker on its Nth forwarded request, delay matching calls,
drop (discard) a worker's reply, or corrupt one journal record — and
is consumed at well-defined points:

- :class:`~repro.service.workers.WorkerHandle` asks the plan on every
  forwarded request whether to SIGKILL the worker (after the request
  is on the pipe, so the worker dies mid-processing) or to discard the
  eventual reply (the caller then observes a ``WorkerTimeout``).
- :class:`~repro.service.router.RoutingDispatcher` asks for a delay
  before forwarding a matching command.
- :class:`~repro.service.journal.JournalStore` asks whether to write a
  deliberately corrupted line for one ``(session, seq)`` record.

Plans are deterministic by construction: triggers count requests from
the moment the plan is installed and fire exactly once, so a chaos
test or benchmark replays the same failure at the same point every
run. Install a plan either in-process (:func:`install`, used by
tests) or via the ``REPRO_FAULT_PLAN`` environment variable (JSON,
inherited by forked workers — the only way to reach worker-side
consumers like the journal writer).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "active_plan",
    "clear",
    "install",
]

#: Environment variable holding a JSON fault plan (see
#: :meth:`FaultPlan.from_json` for the shape).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


@dataclass
class FaultPlan:
    """A scripted, one-shot set of failures for the worker tier.

    All triggers are consumed at most ``once`` (or ``times`` for
    delays); a fired trigger never re-fires, so the surrounding system
    is observed *recovering*, not failing forever.
    """

    #: SIGKILL this worker index on its Nth forwarded request
    #: (1-based, counted from plan installation). ``None`` disables.
    kill_worker: int | None = None
    kill_on_request: int = 1

    #: Discard the reply to this worker's Nth forwarded request — the
    #: caller sees a ``WorkerTimeout`` once its patience runs out.
    drop_worker: int | None = None
    drop_on_request: int = 1

    #: Sleep this long before forwarding the next ``delay_times``
    #: requests whose command equals ``delay_cmd``.
    delay_cmd: str | None = None
    delay_seconds: float = 0.0
    delay_times: int = 1

    #: Write a deliberately corrupted journal line for this
    #: ``(session, seq)`` record (bad checksum, detected on replay).
    corrupt_session: str | None = None
    corrupt_seq: int | None = None

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _requests: dict[int, int] = field(default_factory=dict, repr=False)
    _killed: bool = field(default=False, repr=False)
    _dropped: bool = field(default=False, repr=False)
    _delays_left: int = field(default=-1, repr=False)
    _corrupted: bool = field(default=False, repr=False)

    @classmethod
    def from_json(cls, spec: dict) -> "FaultPlan":
        """Build a plan from the wire/env JSON shape::

            {"kill":    {"worker": 1, "request": 1},
             "drop":    {"worker": 0, "request": 2},
             "delay":   {"cmd": "debug", "seconds": 0.2, "times": 1},
             "corrupt_journal": {"session": "alice", "seq": 3}}
        """
        kill = spec.get("kill") or {}
        drop = spec.get("drop") or {}
        delay = spec.get("delay") or {}
        corrupt = spec.get("corrupt_journal") or {}
        return cls(
            kill_worker=kill.get("worker"),
            kill_on_request=int(kill.get("request", 1)),
            drop_worker=drop.get("worker"),
            drop_on_request=int(drop.get("request", 1)),
            delay_cmd=delay.get("cmd"),
            delay_seconds=float(delay.get("seconds", 0.0)),
            delay_times=int(delay.get("times", 1)),
            corrupt_session=corrupt.get("session"),
            corrupt_seq=(
                int(corrupt["seq"]) if corrupt.get("seq") is not None else None
            ),
        )

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        raw = os.environ.get(FAULT_PLAN_ENV)
        if not raw:
            return None
        try:
            spec = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(spec, dict):
            return None
        return cls.from_json(spec)

    # -- trigger points ------------------------------------------------

    def worker_request(self, worker: int) -> tuple[bool, bool]:
        """Count one forwarded request; returns ``(kill_now, drop_reply)``."""
        with self._lock:
            count = self._requests.get(worker, 0) + 1
            self._requests[worker] = count
            kill = (
                not self._killed
                and self.kill_worker == worker
                and count >= self.kill_on_request
            )
            if kill:
                self._killed = True
            drop = (
                not self._dropped
                and self.drop_worker == worker
                and count >= self.drop_on_request
            )
            if drop:
                self._dropped = True
            return kill, drop

    def delay_before(self, cmd: str) -> float:
        """Seconds to sleep before forwarding ``cmd`` (0.0 = no fault)."""
        if self.delay_cmd is None or cmd != self.delay_cmd:
            return 0.0
        with self._lock:
            if self._delays_left < 0:
                self._delays_left = max(0, self.delay_times)
            if self._delays_left == 0:
                return 0.0
            self._delays_left -= 1
            return max(0.0, self.delay_seconds)

    def corrupts_record(self, session: str, seq: int) -> bool:
        """True exactly once for the configured ``(session, seq)`` record."""
        if self.corrupt_session is None or self.corrupt_seq is None:
            return False
        with self._lock:
            if self._corrupted:
                return False
            if session != self.corrupt_session or seq != self.corrupt_seq:
                return False
            self._corrupted = True
            return True

    def describe(self) -> dict:
        """Introspection for tests and the chaos benchmark."""
        with self._lock:
            return {
                "kill": {"worker": self.kill_worker, "fired": self._killed},
                "drop": {"worker": self.drop_worker, "fired": self._dropped},
                "delay": {"cmd": self.delay_cmd, "left": self._delays_left},
                "corrupt": {
                    "session": self.corrupt_session,
                    "fired": self._corrupted,
                },
                "requests": dict(self._requests),
            }


# ----------------------------------------------------------------------
# the process-active plan
# ----------------------------------------------------------------------

_INSTALLED: FaultPlan | None = None
_ENV_PLAN: FaultPlan | None = None
_ENV_RAW: str | None = None
_GUARD = threading.Lock()


def install(plan: FaultPlan | None) -> None:
    """Activate ``plan`` in this process (tests); ``None`` clears it."""
    global _INSTALLED
    with _GUARD:
        _INSTALLED = plan


def clear() -> None:
    """Drop both the installed plan and the cached env parse."""
    global _INSTALLED, _ENV_PLAN, _ENV_RAW
    with _GUARD:
        _INSTALLED = None
        _ENV_PLAN = None
        _ENV_RAW = None


def active_plan() -> FaultPlan | None:
    """The plan in force: an installed one wins over the environment.

    The env parse is cached against the raw variable value, so the
    common no-fault case is one ``os.environ`` lookup per call — cheap
    enough to sit on the per-request path — while changing the
    variable mid-process (tests) still takes effect.
    """
    global _ENV_PLAN, _ENV_RAW
    with _GUARD:
        if _INSTALLED is not None:
            return _INSTALLED
        raw = os.environ.get(FAULT_PLAN_ENV)
        if raw != _ENV_RAW:
            _ENV_RAW = raw
            _ENV_PLAN = FaultPlan.from_env()
        return _ENV_PLAN
