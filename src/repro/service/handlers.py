"""Command dispatch: one wire request in, one response envelope out.

Each handler is a pure function of ``(manager, session_name, args)``.
Session-scoped handlers run with the target session *borrowed* (under
its per-session lock), so a handler never observes another client's
half-applied mutation. Any :class:`~repro.errors.ReproError` becomes an
error envelope carrying the exception class name; anything else is
reported as ``InternalError`` without killing the connection.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import ProtocolError, ReproError
from ..frontend.session import DBWipesSession
from . import protocol
from .sessions import SessionManager

#: Default row/point truncation for result and scatter payloads; clients
#: can ask for more (or fewer) via ``max_rows`` / ``max_points``.
DEFAULT_MAX_ROWS = 200
DEFAULT_MAX_POINTS = 2000


class LocalDispatcher:
    """The single-process front end: every command runs in this process.

    Shares the ``handle(message) -> envelope`` shape with
    :class:`~repro.service.router.RoutingDispatcher`, so the TCP server
    is indifferent to whether a worker pool sits behind it.
    """

    def __init__(self, manager: SessionManager):
        self.manager = manager

    def handle(self, message: dict) -> dict:
        return dispatch(self.manager, message)

    def close(self) -> None:
        """Nothing to shut down in-process."""


def dispatch(manager: SessionManager, message: dict) -> dict:
    """Handle one decoded request message; always returns an envelope."""
    request_id = message.get("id")
    try:
        cmd, session_name, args = protocol.validate_request(message)
        if cmd in _SERVER_HANDLERS:
            result = _SERVER_HANDLERS[cmd](manager, args)
        elif cmd in _SESSION_HANDLERS:
            if not session_name:
                raise ProtocolError(f"command {cmd!r} needs a 'session' field")
            if cmd == "close":
                manager.close(session_name)
                result = {"closed": session_name}
            else:
                with manager.borrow(session_name) as session:
                    result = _SESSION_HANDLERS[cmd](session, args)
        else:
            known = sorted(set(_SERVER_HANDLERS) | set(_SESSION_HANDLERS))
            raise ProtocolError(f"unknown command {cmd!r} (known: {known})")
    except ReproError as error:
        kind = getattr(error, "kind", None) or type(error).__name__
        return protocol.error_response(request_id, kind, str(error))
    except Exception as error:  # noqa: BLE001 — a handler bug must not kill the server
        return protocol.error_response(
            request_id, "InternalError", f"{type(error).__name__}: {error}"
        )
    return protocol.ok_response(request_id, result)


# ----------------------------------------------------------------------
# server-scoped commands
# ----------------------------------------------------------------------


def _ping(manager: SessionManager, args: dict) -> dict:
    return {"pong": True, "version": protocol.PROTOCOL_VERSION}


def _stats(manager: SessionManager, args: dict) -> dict:
    return manager.stats()


def _sessions(manager: SessionManager, args: dict) -> dict:
    return {"sessions": manager.list()}


def _open(manager: SessionManager, args: dict) -> dict:
    name = args.get("name")
    dataset = args.get("dataset")
    if not isinstance(name, str) or not name:
        raise ProtocolError("'open' needs a non-empty 'name' string in args")
    if not isinstance(dataset, str) or not dataset:
        raise ProtocolError("'open' needs a non-empty 'dataset' string in args")
    managed = manager.open(name, dataset)
    return {
        "session": managed.name,
        "dataset": managed.dataset,
        "bootstrap": manager.catalog.bootstrap(dataset),
        "snapshot": managed.session.snapshot(),
    }


_SERVER_HANDLERS: dict[str, Callable[[SessionManager, dict], Any]] = {
    "ping": _ping,
    "stats": _stats,
    "sessions": _sessions,
    "open": _open,
}


# ----------------------------------------------------------------------
# session-scoped commands (run under the session's lock)
# ----------------------------------------------------------------------


def _execute(session: DBWipesSession, args: dict) -> dict:
    sql = args.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        raise ProtocolError("'execute' needs a non-empty 'sql' string in args")
    result = session.execute(sql)
    return protocol.result_payload(result, _max_rows(args))


def _result(session: DBWipesSession, args: dict) -> dict:
    return protocol.result_payload(session.result, _max_rows(args))


def _render(session: DBWipesSession, args: dict) -> dict:
    width = int(args.get("width", 72))
    height = int(args.get("height", 14))
    y = args.get("y")
    return {"text": session.render(y=y, width=width, height=height)}


def _select_results(session: DBWipesSession, args: dict) -> dict:
    selection = protocol.selection_from_args(args, "rows")
    x = args.get("x")
    y = args.get("y")
    rows = session.select_results(selection, x=x, y=y)
    return {"selected_rows": list(rows)}


def _zoom(session: DBWipesSession, args: dict) -> dict:
    scatter = session.zoom(x=args.get("x"), y=args.get("y"))
    max_points = args.get("max_points", DEFAULT_MAX_POINTS)
    return protocol.scatter_payload(
        scatter, None if max_points is None else int(max_points)
    )


def _select_inputs(session: DBWipesSession, args: dict) -> dict:
    selection = protocol.selection_from_args(args, "tids")
    dprime = session.select_inputs(selection)
    return {"n_dprime": len(dprime), "dprime": dprime}


def _error_form(session: DBWipesSession, args: dict) -> dict:
    options = session.error_form(args.get("agg"))
    return {"options": protocol.forms_payload(options)}


def _set_metric(session: DBWipesSession, args: dict) -> dict:
    form = args.get("form")
    if not isinstance(form, str) or not form:
        raise ProtocolError("'set_metric' needs a 'form' id string in args")
    params = args.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be a JSON object when present")
    metric = session.set_metric(form, agg_name=args.get("agg"), **params)
    return {"metric": metric.describe()}


def _debug(session: DBWipesSession, args: dict) -> dict:
    report = session.debug(args.get("agg"))
    return protocol.report_payload(report, args.get("max_rows"))


def _apply(session: DBWipesSession, args: dict) -> dict:
    index = args.get("index")
    if not isinstance(index, int) or isinstance(index, bool):
        raise ProtocolError("'apply' needs an integer 'index' (0-based rank) in args")
    result = session.apply_predicate(index)
    applied = session.applied_predicates[-1]
    return {
        "applied": applied.describe(),
        "applied_sql": applied.to_sql(),
        "sql": session.current_sql(),
        "result": protocol.result_payload(result, _max_rows(args)),
    }


def _undo(session: DBWipesSession, args: dict) -> dict:
    result = session.undo_cleaning()
    return {
        "sql": session.current_sql(),
        "result": protocol.result_payload(result, _max_rows(args)),
    }


def _redo(session: DBWipesSession, args: dict) -> dict:
    result = session.redo_cleaning()
    return {
        "sql": session.current_sql(),
        "result": protocol.result_payload(result, _max_rows(args)),
    }


def _sql(session: DBWipesSession, args: dict) -> dict:
    return {"sql": session.current_sql()}


def _snapshot(session: DBWipesSession, args: dict) -> dict:
    return session.snapshot()


def _max_rows(args: dict) -> int | None:
    max_rows = args.get("max_rows", DEFAULT_MAX_ROWS)
    return None if max_rows is None else int(max_rows)


_SESSION_HANDLERS: dict[str, Callable[[DBWipesSession, dict], Any]] = {
    "execute": _execute,
    "result": _result,
    "render": _render,
    "select_results": _select_results,
    "zoom": _zoom,
    "select_inputs": _select_inputs,
    "error_form": _error_form,
    "set_metric": _set_metric,
    "debug": _debug,
    "apply": _apply,
    "undo": _undo,
    "redo": _redo,
    "sql": _sql,
    "snapshot": _snapshot,
    "close": lambda session, args: {},  # handled in dispatch (needs the manager)
}
