"""Command dispatch: one wire request in, one response envelope out.

Each handler is a pure function of ``(manager, session_name, args)``.
Session-scoped handlers run with the target session *borrowed* (under
its per-session lock), so a handler never observes another client's
half-applied mutation. Any :class:`~repro.errors.ReproError` becomes an
error envelope carrying the exception class name; anything else is
reported as ``InternalError`` without killing the connection.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from ..errors import ProtocolError, ReproError, ServiceError
from ..frontend.session import DBWipesSession
from ..obs import logs as obs_logs
from ..obs import trace as obs_trace
from ..obs.flags import enabled as obs_enabled
from ..obs.metrics import registry as obs_registry
from . import protocol
from .journal import JOURNALED_COMMANDS
from .sessions import SessionManager

#: Default row/point truncation for result and scatter payloads; clients
#: can ask for more (or fewer) via ``max_rows`` / ``max_points``.
DEFAULT_MAX_ROWS = 200
DEFAULT_MAX_POINTS = 2000

#: Commands cheap enough for the async gateway to answer directly on the
#: event loop: read-only manager/registry lookups that never run the
#: pipeline, touch a dataset, or block on a session lock. Everything
#: else is "heavy" and goes through admission control + the executor.
CHEAP_COMMANDS = frozenset(
    {"ping", "stats", "sessions", "metrics", "trace", "storage", "drain"}
)
# ``drain`` rides the cheap lane deliberately: it is the operator's
# overload-recovery lever, so it must not be shed by the very admission
# control it exists to relieve. The routing dispatcher runs its waiting
# in a thread, never on the event loop.


class LocalDispatcher:
    """The single-process front end: every command runs in this process.

    Shares the ``handle(message) -> envelope`` shape with
    :class:`~repro.service.router.RoutingDispatcher`, so the TCP server
    is indifferent to whether a worker pool sits behind it.
    """

    #: Streamed partial ``debug`` frames work here (the pipeline runs in
    #: this process, so ``emit_partial`` can observe merge rounds live).
    supports_streaming = True

    def __init__(self, manager: SessionManager):
        self.manager = manager

    def handle(self, message: dict, emit_partial: Callable | None = None) -> dict:
        return dispatch(self.manager, message, emit_partial=emit_partial)

    def close(self) -> None:
        """Nothing to shut down in-process."""


def dispatch(
    manager: SessionManager,
    message: dict,
    role: str = "server",
    emit_partial: Callable[[int, dict], None] | None = None,
) -> dict:
    """Handle one decoded request message; always returns an envelope.

    Instrumented entry point shared by the single-process server
    (``role="server"``) and every worker process (``role="worker"``):
    each request runs under a ``<role>.<cmd>`` span (continuing the
    trace carried in the message's ``trace`` field, or minting one at a
    root), bumps the per-command request counter/latency histogram, may
    land in the slow-request log, and has its trace id stamped on the
    response envelope so clients can fetch the span tree afterwards.

    ``emit_partial(seq, payload)``, when given and the request is a
    ``debug`` with ``args: {"stream": true}``, receives partial ranked
    payloads as the pipeline produces them — the transport (async
    gateway) turns each into a ``partial`` wire frame ahead of this
    function's returned terminating envelope.
    """
    request_id = message.get("id") if isinstance(message, dict) else None
    raw_cmd = message.get("cmd") if isinstance(message, dict) else None
    cmd_label = raw_cmd if isinstance(raw_cmd, str) and raw_cmd else "invalid"
    trace_id, parent_id = obs_trace.from_wire(message)
    start = time.perf_counter()
    with obs_trace.span(
        f"{role}.{cmd_label}", trace_id=trace_id, parent_id=parent_id
    ) as span:
        envelope = _dispatch_inner(manager, message, request_id, emit_partial)
        if not envelope.get("ok"):
            span.set(error=envelope["error"]["kind"])
        stamped_trace = span.trace_id
    seconds = time.perf_counter() - start
    if obs_enabled():
        labels = {"cmd": cmd_label, "role": role}
        reg = obs_registry()
        reg.counter(
            "dbwipes_requests_total",
            labels=labels,
            help="Requests dispatched, by command and process role.",
        ).inc()
        reg.histogram(
            "dbwipes_request_seconds",
            labels=labels,
            help="Request wall seconds, by command and process role.",
        ).observe(seconds)
        obs_logs.maybe_log_slow(
            cmd_label,
            seconds,
            role=role,
            session=message.get("session") if isinstance(message, dict) else None,
        )
    if stamped_trace is not None:
        envelope.setdefault("trace", stamped_trace)
    return envelope


def _dispatch_inner(
    manager: SessionManager,
    message: dict,
    request_id,
    emit_partial: Callable[[int, dict], None] | None = None,
) -> dict:
    try:
        cmd, session_name, args = protocol.validate_request(message)
        if cmd in _SERVER_HANDLERS:
            if cmd == "recover" and not args.get("session") and session_name:
                # Let clients address recover like any session command.
                args = {**args, "session": session_name}
            result = _SERVER_HANDLERS[cmd](manager, args)
        elif cmd in _SESSION_HANDLERS:
            if not session_name:
                raise ProtocolError(f"command {cmd!r} needs a 'session' field")
            if cmd == "close":
                manager.close(session_name)
                result = {"closed": session_name}
            else:
                with manager.borrow(session_name) as session:
                    if (
                        cmd == "debug"
                        and emit_partial is not None
                        and bool(args.get("stream"))
                    ):
                        result = _debug_streaming(session, args, emit_partial)
                    else:
                        result = _SESSION_HANDLERS[cmd](session, args)
                if cmd in JOURNALED_COMMANDS:
                    # Journaled only after the handler succeeds, so the
                    # replay history never contains a failed mutation.
                    manager.record(session_name, cmd, args)
        else:
            known = sorted(set(_SERVER_HANDLERS) | set(_SESSION_HANDLERS))
            raise ProtocolError(f"unknown command {cmd!r} (known: {known})")
    except ReproError as error:
        kind = getattr(error, "kind", None) or type(error).__name__
        return protocol.error_response(request_id, kind, str(error))
    except Exception as error:  # noqa: BLE001 — a handler bug must not kill the server
        return protocol.error_response(
            request_id, "InternalError", f"{type(error).__name__}: {error}"
        )
    return protocol.ok_response(request_id, result)


# ----------------------------------------------------------------------
# server-scoped commands
# ----------------------------------------------------------------------


def _ping(manager: SessionManager, args: dict) -> dict:
    return {"pong": True, "version": protocol.PROTOCOL_VERSION}


def _stats(manager: SessionManager, args: dict) -> dict:
    return manager.stats()


def _sessions(manager: SessionManager, args: dict) -> dict:
    return {"sessions": manager.list()}


def _open(manager: SessionManager, args: dict) -> dict:
    name = args.get("name")
    dataset = args.get("dataset")
    if not isinstance(name, str) or not name:
        raise ProtocolError("'open' needs a non-empty 'name' string in args")
    if not isinstance(dataset, str) or not dataset:
        raise ProtocolError("'open' needs a non-empty 'dataset' string in args")
    managed = manager.open(name, dataset)
    return {
        "session": managed.name,
        "dataset": managed.dataset,
        "bootstrap": manager.catalog.bootstrap(dataset),
        "snapshot": managed.session.snapshot(),
    }


#: How many recent slow-request records ride along with ``metrics``.
SLOW_LOG_LIMIT = 20


def _metrics(manager: SessionManager, args: dict) -> dict:
    """This process's registry snapshot (the scatter half of exposition).

    In the single-process server this *is* the cluster view; behind the
    routing front end each worker answers with its own snapshot and the
    router merges them (counters summed — never averaged).
    """
    snapshot = obs_registry().snapshot()
    return {
        "workers": 0,
        "merged": snapshot,
        "slow_requests": obs_logs.logger().recent("slow_request")[-SLOW_LOG_LIMIT:],
    }


def _storage(manager: SessionManager, args: dict) -> dict:
    """The durable tier's state: data dir, persisted datasets, artifacts.

    Manifest reads only — never materializes a table or touches column
    bytes, so it stays in the cheap lane.
    """
    info = manager.catalog.storage_info()
    disk = manager.preprocess_cache.disk
    info["preprocess_artifacts"] = disk.stats() if disk is not None else None
    return info


def _trace(manager: SessionManager, args: dict) -> dict:
    """Spans of one recent trace from this process's ring buffer.

    With no ``trace_id`` the most recently finished trace is returned
    (excluding the in-flight ``trace`` request's own). The routing front
    end resolves the default on the front, then broadcasts the explicit
    id so every worker contributes the spans it recorded for that trace.
    """
    tracer = obs_trace.tracer()
    trace_id = args.get("trace_id")
    if trace_id is None:
        current = tracer.current()
        trace_id = tracer.last_trace_id(
            exclude=current[0] if current else None
        )
    if not isinstance(trace_id, str) or not trace_id:
        return {"trace_id": None, "spans": [], "tree": [], "dropped": 0}
    spans = tracer.spans(trace_id)
    return {
        "trace_id": trace_id,
        "spans": spans,
        "tree": obs_trace.span_tree(spans),
        "dropped": tracer.dropped(trace_id),
    }


def _recover(manager: SessionManager, args: dict) -> dict:
    """Rebuild a session by replaying its journal (idempotent).

    The self-healing primitive: the router sends ``recover`` to a
    replica (or a respawned primary) before re-forwarding a request
    whose owner crashed, and ``drain`` uses it to hand sessions off.
    Replay stops at the first failing command — a truncated journal or
    changed dataset yields the longest valid prefix, never an error
    loop — and re-journals as it goes, so the rebuilt session's journal
    is clean even when the on-disk copy had a corrupt tail.
    """
    name = args.get("session")
    if not isinstance(name, str) or not name:
        raise ProtocolError(
            "'recover' needs a non-empty 'session' string in args"
        )
    if name in manager:
        managed = manager.get(name)
        return {
            "recovered": name,
            "dataset": managed.dataset,
            "replayed": 0,
            "already_live": True,
            "corrupt_records": 0,
            "truncated_at": None,
            "state": managed.session.state,
        }
    journals = manager.journals
    if journals is None:
        raise ServiceError(
            "session journaling is disabled (no data dir): nothing to "
            "recover",
            kind="NoJournal",
        )
    loaded = journals.load(name)
    if loaded is None:
        raise ServiceError(
            f"no journal for session {name!r}", kind="NoJournal"
        )
    manager.open(name, loaded.dataset)
    replayed = 0
    truncated_at = None
    for cmd, cmd_args in loaded.records:
        handler = _SESSION_HANDLERS.get(cmd)
        if cmd not in JOURNALED_COMMANDS or handler is None:
            continue
        try:
            with manager.borrow(name) as session:
                handler(session, cmd_args)
        except ReproError as error:
            truncated_at = f"{cmd}: {error}"
            break
        manager.record(name, cmd, cmd_args)
        replayed += 1
    manager.mark_recovered()
    managed = manager.get(name)
    return {
        "recovered": name,
        "dataset": loaded.dataset,
        "replayed": replayed,
        "already_live": False,
        "corrupt_records": loaded.corrupt_records,
        "truncated_at": truncated_at,
        "state": managed.session.state,
    }


def _drain_prepare(manager: SessionManager, args: dict) -> dict:
    """Flush every live session's journal from memory to disk.

    Sent by the router's drain path before handing sessions off; the
    in-memory records are authoritative, so this also repairs journal
    files corrupted on disk since their last publish.
    """
    return {"journaled": manager.journal_all(), "sessions": len(manager)}


def _drain(manager: SessionManager, args: dict) -> dict:
    # The routing front end intercepts ``drain`` before dispatch; only
    # a single-process server ever reaches this handler.
    raise ServiceError(
        "'drain' needs the multi-worker tier; start the server with "
        "--workers N"
    )


def _resize(manager: SessionManager, args: dict) -> dict:
    raise ServiceError(
        "'resize' needs the multi-worker tier; start the server with "
        "--workers N"
    )


_SERVER_HANDLERS: dict[str, Callable[[SessionManager, dict], Any]] = {
    "ping": _ping,
    "stats": _stats,
    "sessions": _sessions,
    "open": _open,
    "metrics": _metrics,
    "trace": _trace,
    "storage": _storage,
    "recover": _recover,
    "drain_prepare": _drain_prepare,
    "drain": _drain,
    "resize": _resize,
}


# ----------------------------------------------------------------------
# session-scoped commands (run under the session's lock)
# ----------------------------------------------------------------------


def _execute(session: DBWipesSession, args: dict) -> dict:
    sql = args.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        raise ProtocolError("'execute' needs a non-empty 'sql' string in args")
    result = session.execute(sql)
    return protocol.result_payload(result, _max_rows(args))


def _result(session: DBWipesSession, args: dict) -> dict:
    return protocol.result_payload(session.result, _max_rows(args))


def _render(session: DBWipesSession, args: dict) -> dict:
    width = int(args.get("width", 72))
    height = int(args.get("height", 14))
    y = args.get("y")
    return {"text": session.render(y=y, width=width, height=height)}


def _select_results(session: DBWipesSession, args: dict) -> dict:
    selection = protocol.selection_from_args(args, "rows")
    x = args.get("x")
    y = args.get("y")
    rows = session.select_results(selection, x=x, y=y)
    return {"selected_rows": list(rows)}


def _zoom(session: DBWipesSession, args: dict) -> dict:
    scatter = session.zoom(x=args.get("x"), y=args.get("y"))
    max_points = args.get("max_points", DEFAULT_MAX_POINTS)
    return protocol.scatter_payload(
        scatter, None if max_points is None else int(max_points)
    )


def _select_inputs(session: DBWipesSession, args: dict) -> dict:
    selection = protocol.selection_from_args(args, "tids")
    dprime = session.select_inputs(selection)
    return {"n_dprime": len(dprime), "dprime": dprime}


def _error_form(session: DBWipesSession, args: dict) -> dict:
    options = session.error_form(args.get("agg"))
    return {"options": protocol.forms_payload(options)}


def _set_metric(session: DBWipesSession, args: dict) -> dict:
    form = args.get("form")
    if not isinstance(form, str) or not form:
        raise ProtocolError("'set_metric' needs a 'form' id string in args")
    params = args.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be a JSON object when present")
    metric = session.set_metric(form, agg_name=args.get("agg"), **params)
    return {"metric": metric.describe()}


def _debug(session: DBWipesSession, args: dict) -> dict:
    report = session.debug(args.get("agg"))
    return protocol.report_payload(report, args.get("max_rows"))


def _debug_streaming(
    session: DBWipesSession, args: dict, emit_partial: Callable[[int, dict], None]
) -> dict:
    """``debug`` with live partial frames: same report, early glimpses.

    Emits one frame after the rank stage and one per surviving merge
    round, each a sorted snapshot shaped like a miniature report. The
    terminating envelope carries exactly what a non-streamed ``debug``
    would have returned — byte-identical by the observe-only contract
    of the ``on_partial`` hooks underneath.
    """
    seq = 0
    max_rows = args.get("max_rows")

    def on_partial(stage: str, ranked: list) -> None:
        nonlocal seq
        emit_partial(seq, protocol.partial_report_payload(ranked, stage, max_rows))
        seq += 1

    report = session.debug(args.get("agg"), on_partial=on_partial)
    return protocol.report_payload(report, max_rows)


def _apply(session: DBWipesSession, args: dict) -> dict:
    index = args.get("index")
    if not isinstance(index, int) or isinstance(index, bool):
        raise ProtocolError("'apply' needs an integer 'index' (0-based rank) in args")
    result = session.apply_predicate(index)
    applied = session.applied_predicates[-1]
    return {
        "applied": applied.describe(),
        "applied_sql": applied.to_sql(),
        "sql": session.current_sql(),
        "result": protocol.result_payload(result, _max_rows(args)),
    }


def _undo(session: DBWipesSession, args: dict) -> dict:
    result = session.undo_cleaning()
    return {
        "sql": session.current_sql(),
        "result": protocol.result_payload(result, _max_rows(args)),
    }


def _redo(session: DBWipesSession, args: dict) -> dict:
    result = session.redo_cleaning()
    return {
        "sql": session.current_sql(),
        "result": protocol.result_payload(result, _max_rows(args)),
    }


def _sql(session: DBWipesSession, args: dict) -> dict:
    return {"sql": session.current_sql()}


def _snapshot(session: DBWipesSession, args: dict) -> dict:
    return session.snapshot()


def _max_rows(args: dict) -> int | None:
    max_rows = args.get("max_rows", DEFAULT_MAX_ROWS)
    return None if max_rows is None else int(max_rows)


_SESSION_HANDLERS: dict[str, Callable[[DBWipesSession, dict], Any]] = {
    "execute": _execute,
    "result": _result,
    "render": _render,
    "select_results": _select_results,
    "zoom": _zoom,
    "select_inputs": _select_inputs,
    "error_form": _error_form,
    "set_metric": _set_metric,
    "debug": _debug,
    "apply": _apply,
    "undo": _undo,
    "redo": _redo,
    "sql": _sql,
    "snapshot": _snapshot,
    "close": lambda session, args: {},  # handled in dispatch (needs the manager)
}
