"""Execution backends: how one ``debug()`` request is physically run.

The pipeline's five stages (Preprocessor → Dataset Enumerator →
Predicate Enumerator → Ranker → optional Merger) are *what* to compute;
a backend decides *how*:

* :class:`InProcessBackend` — the original single-pass engine: every
  stage runs over the whole table in one process.
* :class:`PartitionedBackend` — the scatter-gather engine: the segment
  array is split into contiguous, group-aligned row blocks
  (:func:`~repro.core.influence.partition_segments`), the influence and
  Δε kernels — and on the per-rule path the predicate masks themselves —
  run per block, and a combine step concatenates the per-group partials
  before one global metric application. Because every grouped kernel is
  a per-group-local fold and partitions never split a group, the
  combined results are **byte-identical** to the in-process engine's:
  the established parity contract extends to every partition count.

``RankedProvenance`` is a thin facade over a backend; the service tier
reads :meth:`ExecutionBackend.stats` into ``snapshot()`` so clients can
see the physical fan-out behind their answers.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..db.result import ResultSet
from ..errors import PipelineError
from ..obs.flags import enabled as obs_enabled
from ..obs.metrics import registry as obs_registry
from ..obs.trace import span as obs_span
from .enumerator import DatasetEnumerator
from .error_metrics import ErrorMetric
from .influence import (
    DeltaEpsilonScorer,
    PartitionedDeltaEpsilonScorer,
    partition_segments,
)
from .predicates import PredicateEnumerator
from .preprocessor import PreprocessCache, Preprocessor, PreprocessResult
from .ranker import PredicateRanker
from .report import DebugReport

#: Recognized ``PipelineConfig.backend`` values.
BACKENDS = ("in_process", "partitioned")


def make_backend(config, preprocess_cache: PreprocessCache | None = None):
    """Build the execution backend selected by ``config.backend``."""
    name = getattr(config, "backend", "in_process")
    if name == "in_process":
        return InProcessBackend(config, preprocess_cache=preprocess_cache)
    if name == "partitioned":
        return PartitionedBackend(config, preprocess_cache=preprocess_cache)
    raise PipelineError(f"backend must be one of {BACKENDS}, got {name!r}")


class InProcessBackend:
    """The single-process engine: one pass over the whole table.

    Also the base class of :class:`PartitionedBackend` — the stage
    wiring and the ``debug()`` loop are identical; subclasses override
    the scorer injection and the influence partition count.
    """

    name = "in_process"

    def __init__(self, config, preprocess_cache: PreprocessCache | None = None):
        self.config = config
        self._scatter: dict = {}
        self._debug_count = 0
        self._preprocessor = Preprocessor(
            fast_influence=config.fast_influence,
            cache=preprocess_cache,
            partitions=self.influence_partitions(),
            scatter_stats=self._scatter,
        )
        self._enumerator = DatasetEnumerator(
            clean_strategy=config.clean_strategy,
            extend=config.extend_with_subgroups,
            influence_quantile=config.influence_quantile,
            subgroup=config.subgroup,
            feature_columns=config.feature_columns,
            max_candidates=config.max_candidates,
            seed=config.seed,
        )
        self._predicates = PredicateEnumerator(
            strategies=config.strategies,
            feature_columns=config.feature_columns,
            min_precision=config.min_precision,
            weight_by_influence=config.weight_by_influence,
            tree_algorithm=config.tree_algorithm,
            seed=config.seed,
        )
        self._ranker = PredicateRanker(
            weights=config.ranker_weights,
            max_terms=config.max_terms,
            algorithm=config.score_algorithm,
            scorer=self._make_scorer(),
        )
        self._merger = None
        if config.merge_predicates:
            from .merger import PredicateMerger

            self._merger = PredicateMerger(
                weights=config.ranker_weights,
                max_terms=config.max_terms,
                algorithm=config.score_algorithm,
                scorer=self._make_scorer(),
            )

    # -- backend-specific hooks ----------------------------------------

    def influence_partitions(self) -> int:
        """How many blocks the Preprocessor's influence stage scatters over."""
        return 1

    def _make_scorer(self) -> DeltaEpsilonScorer:
        return DeltaEpsilonScorer()

    def _note_preprocess(self, pre: PreprocessResult) -> None:
        """Record backend-specific fan-out after the preprocess stage."""

    # -- shared machinery ----------------------------------------------

    @property
    def preprocess_cache(self) -> PreprocessCache | None:
        """The shared preprocess cache, when one is attached."""
        return self._preprocessor.cache

    def stats(self) -> dict:
        """Physical-execution counters for ``snapshot()`` / observability."""
        return {
            "backend": self.name,
            "n_partitions": self.influence_partitions(),
            "debug_count": self._debug_count,
            "scatter": dict(self._scatter),
        }

    def debug(
        self,
        result: ResultSet,
        selected_rows: Sequence[int] | np.ndarray,
        metric: ErrorMetric,
        dprime_tids: Sequence[int] | np.ndarray = (),
        agg_name: str | None = None,
        on_partial: Callable[[str, list], None] | None = None,
    ) -> DebugReport:
        """Run the full pipeline and return the ranked predicate report.

        ``on_partial(stage, ranked)``, when given, is invoked with
        intermediate ranked lists as they become available — once after
        the rank stage and once per surviving merge round — so a
        streaming front end can push early answers. The hook observes
        snapshot copies only; the report is identical either way.
        """
        timings: dict[str, float] = {}

        with obs_span("pipeline.debug", backend=self.name):
            start = time.perf_counter()
            with obs_span("stage.preprocess"):
                pre = self._preprocessor.run(
                    result, selected_rows, metric, agg_name=agg_name
                )
            timings["preprocess"] = time.perf_counter() - start
            self._note_preprocess(pre)

            start = time.perf_counter()
            with obs_span("stage.enumerate_datasets"):
                candidates = self._enumerator.run(pre, dprime_tids)
            timings["enumerate_datasets"] = time.perf_counter() - start

            start = time.perf_counter()
            with obs_span("stage.enumerate_predicates"):
                candidate_rules = self._predicates.run(pre, candidates)
            timings["enumerate_predicates"] = time.perf_counter() - start

            start = time.perf_counter()
            with obs_span("stage.rank"):
                ranked = self._ranker.run(pre, candidates, candidate_rules)
            timings["rank"] = time.perf_counter() - start
            if on_partial is not None:
                on_partial("rank", list(ranked))

            if self._merger is not None:
                start = time.perf_counter()
                with obs_span("stage.merge"):
                    ranked = self._merger.run(
                        pre,
                        candidates,
                        ranked,
                        on_round=(
                            None
                            if on_partial is None
                            else lambda rs: on_partial("merge", rs)
                        ),
                    )
                timings["merge"] = time.perf_counter() - start

        self._debug_count += 1
        if obs_enabled():
            reg = obs_registry()
            reg.counter(
                "dbwipes_debugs_total",
                labels={"backend": self.name},
                help="Pipeline debug() executions.",
            ).inc()
            for stage, seconds in timings.items():
                reg.histogram(
                    "dbwipes_stage_seconds",
                    labels={"stage": stage},
                    help="Wall seconds per pipeline stage.",
                ).observe(seconds)
        return DebugReport(
            predicates=tuple(ranked),
            epsilon=pre.epsilon,
            metric_description=metric.describe(),
            selected_rows=pre.selected_rows,
            n_inputs=len(pre.F),
            n_dprime=len(np.asarray(list(dprime_tids), dtype=np.int64)),
            n_candidates=len(candidates),
            timings=timings,
        )


class PartitionedBackend(InProcessBackend):
    """The scatter-gather engine over contiguous group-aligned blocks.

    ``config.n_partitions`` sets the fan-out; every stage that touches
    flat tuple volume (influence, Δε previews, per-rule masks) scatters
    over the blocks and combines exactly. The scorer and this backend
    share one scatter-counter dict, surfaced via :meth:`stats`.
    """

    name = "partitioned"

    def __init__(self, config, preprocess_cache: PreprocessCache | None = None):
        self.n_partitions = max(1, int(getattr(config, "n_partitions", 1)))
        super().__init__(config, preprocess_cache=preprocess_cache)

    def influence_partitions(self) -> int:
        return self.n_partitions

    def _make_scorer(self) -> DeltaEpsilonScorer:
        return PartitionedDeltaEpsilonScorer(self.n_partitions, stats=self._scatter)

    def _note_preprocess(self, pre: PreprocessResult) -> None:
        plan = partition_segments(pre.segments, self.n_partitions)
        self._scatter["influence_blocks"] = (
            self._scatter.get("influence_blocks", 0) + plan.n_blocks
        )

    def stats(self) -> dict:
        data = super().stats()
        timed = int(self._scatter.get("blocks_timed", 0))
        total = float(self._scatter.get("block_seconds_total", 0.0))
        data["partition"] = {
            "blocks_timed": timed,
            "block_seconds_total": total,
            "block_seconds_max": float(
                self._scatter.get("block_seconds_max", 0.0)
            ),
            "block_seconds_mean": (total / timed) if timed else 0.0,
        }
        return data
