"""User-specified error metrics ε(S).

The paper (§2.1) defines an error metric as a function over the selected
aggregate results S that is 0 when S is error-free and positive
otherwise, e.g.::

    diff(S) = max(0, max_{s in S} (s - c))

Every metric here decomposes as ``combine(per_value_error(s) for s in S)``
with ``combine ∈ {max, sum}``. The decomposition is what makes
leave-one-out influence cheap: removing one input tuple changes exactly
one group's aggregate value, so ε can be re-evaluated in O(1) given the
per-value error of the other groups (see :mod:`repro.core.influence`).

NaN group values (a group that lost all its inputs) contribute zero
error: deleting every tuple of a bad group *fixes* it.
"""

from __future__ import annotations

import numpy as np

from ..errors import PipelineError

COMBINES = ("max", "sum")


class ErrorMetric:
    """Base class: ε(S) = combine of per-value errors."""

    #: Form identifier (what the frontend's error form submits).
    form_id: str = ""
    #: +1 if large values are suspect, -1 if small, 0 if distance-based.
    direction: int = 0

    def __init__(self, combine: str = "max"):
        if combine not in COMBINES:
            raise PipelineError(f"combine must be one of {COMBINES}")
        self.combine = combine

    def per_value_error(self, values: np.ndarray) -> np.ndarray:
        """φ(s) for each aggregate value; NaN inputs yield 0."""
        raise NotImplementedError

    def __call__(self, values: np.ndarray) -> float:
        """ε over a vector of selected-group aggregate values."""
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            return 0.0
        errors = self.per_value_error(values)
        if self.combine == "max":
            return float(errors.max()) if len(errors) else 0.0
        return float(errors.sum())

    def describe(self) -> str:
        """Human-readable description shown in the error form."""
        raise NotImplementedError

    def _zero_nan(self, values: np.ndarray, errors: np.ndarray) -> np.ndarray:
        errors = np.asarray(errors, dtype=np.float64)
        errors[np.isnan(values)] = 0.0
        return errors


class TooHigh(ErrorMetric):
    """"Values are too high": φ(s) = max(0, s − threshold).

    With ``combine="max"`` this is exactly the paper's ``diff`` metric.
    """

    form_id = "too_high"
    direction = +1

    def __init__(self, threshold: float, combine: str = "max"):
        super().__init__(combine)
        self.threshold = float(threshold)

    def per_value_error(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            errors = np.maximum(values - self.threshold, 0.0)
        return self._zero_nan(values, errors)

    def describe(self) -> str:
        return f"values are too high (expected <= {self.threshold:g})"


class TooLow(ErrorMetric):
    """"Values are too low": φ(s) = max(0, threshold − s)."""

    form_id = "too_low"
    direction = -1

    def __init__(self, threshold: float, combine: str = "max"):
        super().__init__(combine)
        self.threshold = float(threshold)

    def per_value_error(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            errors = np.maximum(self.threshold - values, 0.0)
        return self._zero_nan(values, errors)

    def describe(self) -> str:
        return f"values are too low (expected >= {self.threshold:g})"


class NotEqual(ErrorMetric):
    """"Should equal c": φ(s) = |s − expected|."""

    form_id = "not_equal"
    direction = 0

    def __init__(self, expected: float, combine: str = "max"):
        super().__init__(combine)
        self.expected = float(expected)

    def per_value_error(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            errors = np.abs(values - self.expected)
        return self._zero_nan(values, errors)

    def describe(self) -> str:
        return f"values should equal {self.expected:g}"


class DiffFromConstant(TooHigh):
    """The paper's ``diff(S) = max(0, max_{s∈S}(s − c))`` by its own name."""

    form_id = "diff"

    def describe(self) -> str:
        return f"diff from expected constant {self.threshold:g}"


_METRICS: dict[str, type[ErrorMetric]] = {
    cls.form_id: cls for cls in (TooHigh, TooLow, NotEqual, DiffFromConstant)
}


def metric_from_form(form_id: str, **params) -> ErrorMetric:
    """Instantiate a metric from an error-form submission.

    ``params`` carries the form fields: ``threshold`` for too_high /
    too_low / diff, ``expected`` for not_equal, plus optional ``combine``.
    """
    try:
        cls = _METRICS[form_id]
    except KeyError:
        raise PipelineError(
            f"unknown error metric {form_id!r}; known: {sorted(_METRICS)}"
        ) from None
    return cls(**params)


def available_metric_ids() -> tuple[str, ...]:
    """All registered error-form metric identifiers."""
    return tuple(sorted(_METRICS))


def metric_spec(metric: ErrorMetric) -> dict | None:
    """A JSON-safe parameter spec that round-trips through
    :func:`metric_from_spec`, or ``None`` for unknown subclasses.

    Used by the durable preprocess-artifact store: a persisted artifact
    must rebuild the exact metric after a restart, so only the built-in
    form metrics (whose behaviour is fully determined by their
    parameters) are eligible — a user-defined subclass returns ``None``
    and its results simply stay memory-only.
    """
    if _METRICS.get(type(metric).form_id) is not type(metric):
        return None
    spec: dict = {"form_id": metric.form_id, "combine": metric.combine}
    if isinstance(metric, NotEqual):
        spec["expected"] = metric.expected
    else:
        spec["threshold"] = metric.threshold
    return spec


def metric_from_spec(spec: dict) -> ErrorMetric:
    """Rebuild a metric from a :func:`metric_spec` dict."""
    params = {k: v for k, v in spec.items() if k != "form_id"}
    return metric_from_form(spec["form_id"], **params)
