"""Leave-one-out influence of input tuples on the error metric.

For each tuple t feeding a selected group g, the influence is the
reduction in that group's error contribution when t is removed::

    inf(t) = φ(O(D_g)) − φ(O(D_g − {t}))

where φ is the metric's per-value error. A positive influence means
removing the tuple *reduces* the error — the tuple is part of the
problem. The Preprocessor ranks all of F by this score (paper §2.2.2:
"uses leave-one-out analysis to rank each tuple in F by how much it
influences ε").

Influence is deliberately *local to the group*: under a max-combined
metric, the global ε only moves when the worst group improves, which
would zero out the ranking for every other selected group — useless for
finding suspicious tuples across all of S. For sum-combined metrics the
local and global deltas coincide. The *global* ε and the ranker's Δε do
use the metric's combine (see :func:`subset_epsilon`).

Two implementations are provided:

* **fast** — one grouped pass over a
  :class:`~repro.db.segments.SegmentedValues` holding every selected
  group (:meth:`~repro.db.aggregates.Aggregate.leave_one_out_grouped`)
  plus the max/sum decomposition of the metric: O(|F|) total with no
  Python per-group loop.
* **naive** — recomputes the aggregate from scratch per removal:
  O(|F|²) within each group. Exists for correctness testing and the A1
  ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..db.aggregates import Aggregate
from ..db.segments import SegmentedValues, as_segments
from ..errors import PipelineError


@dataclass(frozen=True)
class GroupInfluence:
    """Influence details for one selected result row (group)."""

    row: int
    tids: np.ndarray
    values: np.ndarray
    loo_values: np.ndarray
    influence: np.ndarray
    group_value: float


@dataclass(frozen=True)
class InfluenceResult:
    """Ranked leave-one-out influence over all tuples of F."""

    tids: np.ndarray
    scores: np.ndarray
    epsilon: float
    groups: tuple[GroupInfluence, ...] = field(default_factory=tuple)

    def ranked_tids(self) -> np.ndarray:
        """Tids sorted by descending influence."""
        order = np.argsort(-self.scores, kind="stable")
        return self.tids[order]

    def top_tids(self, quantile: float) -> np.ndarray:
        """Tids whose influence is at or above the given score quantile.

        Only tuples with strictly positive influence are eligible: a tuple
        whose removal does not reduce ε is never "suspicious".
        """
        if len(self.scores) == 0:
            return self.tids
        positive = self.scores > 0
        if not positive.any():
            return np.empty(0, dtype=np.int64)
        cutoff = float(np.quantile(self.scores[positive], quantile))
        return self.tids[positive & (self.scores >= cutoff)]

    @cached_property
    def _tid_index(self) -> tuple[np.ndarray, np.ndarray]:
        """``(sorted_tids, matching_scores)`` for binary-search lookups.

        Built once per result (``cached_property`` writes straight to
        ``__dict__``, so it coexists with the frozen dataclass): callers
        like the enumerator and ranker probe scores once per candidate
        predicate, and rebuilding a dict each probe made scoring
        O(|F|·|predicates|).
        """
        order = np.argsort(self.tids, kind="stable")
        return self.tids[order], self.scores[order]

    def score_of(self, tids: np.ndarray) -> np.ndarray:
        """Influence scores for specific tids (0 for unknown tids)."""
        tids = np.asarray(tids, dtype=np.int64)
        sorted_tids, sorted_scores = self._tid_index
        if len(sorted_tids) == 0:
            return np.zeros(len(tids), dtype=np.float64)
        pos = np.searchsorted(sorted_tids, tids)
        pos = np.minimum(pos, len(sorted_tids) - 1)
        found = sorted_tids[pos] == tids
        return np.where(found, sorted_scores[pos], 0.0)


def leave_one_out_influence(
    group_values: list[np.ndarray],
    group_tids: list[np.ndarray],
    rows: list[int],
    aggregate: Aggregate,
    metric,
    fast: bool = True,
) -> InfluenceResult:
    """Compute influence for every tuple of the selected groups.

    Parameters
    ----------
    group_values:
        Per selected group, the aggregate's input values for its tuples.
    group_tids:
        Per selected group, the tids matching ``group_values``.
    rows:
        The selected result-row index for each group (for reporting).
    aggregate:
        The aggregate implementation of the debugged output column.
    metric:
        The user's :class:`~repro.core.error_metrics.ErrorMetric`.
    fast:
        Use closed-form leave-one-out (True) or naive recomputation.
    """
    if len(group_values) != len(group_tids) or len(group_values) != len(rows):
        raise PipelineError("group_values, group_tids, and rows must align")
    seg = as_segments(group_values)
    if fast:
        # One grouped pass over every selected group at once: current
        # values, leave-one-out values, and per-value errors are all
        # flat vectorized computations with no Python per-group loop.
        current = aggregate.compute_grouped(seg)
        loo_flat = aggregate.leave_one_out_grouped(seg)
    else:
        current = np.array(
            [aggregate.compute(values) for values in group_values],
            dtype=np.float64,
        )
        loo_flat = (
            np.concatenate(
                [aggregate.leave_one_out_naive(v) for v in group_values]
            )
            if len(group_values)
            else np.empty(0, dtype=np.float64)
        )
    epsilon = metric(current)
    phi = metric.per_value_error(current)
    phi_new_flat = metric.per_value_error(loo_flat)
    scores = phi[seg.segment_ids] - phi_new_flat

    tids = (
        np.concatenate([np.asarray(t, dtype=np.int64) for t in group_tids])
        if len(group_tids)
        else np.empty(0, dtype=np.int64)
    )
    loo_parts = seg.split_flat(loo_flat)
    score_parts = seg.split_flat(scores)
    groups = tuple(
        GroupInfluence(
            row=rows[g],
            tids=np.asarray(group_tids[g], dtype=np.int64),
            values=seg.segment(g),
            loo_values=loo_parts[g],
            influence=score_parts[g],
            group_value=float(current[g]),
        )
        for g in range(seg.n_segments)
    )
    return InfluenceResult(
        tids=tids, scores=scores, epsilon=epsilon, groups=groups
    )


def subset_epsilon(
    group_values: list[np.ndarray],
    group_remove_masks: list[np.ndarray],
    aggregate: Aggregate,
    metric,
) -> float:
    """ε(S) after removing a per-group masked subset of input tuples.

    This is the ranker's Δε evaluator: it answers "what would the error be
    if this predicate's tuples were deleted" using the removable-aggregate
    sufficient statistics rather than re-running the query.
    """
    if len(group_values) != len(group_remove_masks):
        raise PipelineError("group_values and masks must align")
    seg = as_segments(group_values)
    remove_mask = (
        np.concatenate(
            [np.asarray(m, dtype=bool) for m in group_remove_masks]
        )
        if len(group_remove_masks)
        else np.empty(0, dtype=bool)
    )
    return subset_epsilon_grouped(seg, remove_mask, aggregate, metric)


def subset_epsilon_grouped(
    seg: SegmentedValues,
    remove_mask: np.ndarray,
    aggregate: Aggregate,
    metric,
) -> float:
    """:func:`subset_epsilon` over an already-segmented selection.

    The Ranker and Merger call this once per candidate predicate with a
    single flat mask over the segment table, so the whole Δε preview is
    one grouped :meth:`~repro.db.aggregates.Aggregate.compute_without_grouped`
    pass.
    """
    new_values = aggregate.compute_without_grouped(seg, remove_mask)
    return metric(new_values)


