"""Leave-one-out influence of input tuples on the error metric.

For each tuple t feeding a selected group g, the influence is the
reduction in that group's error contribution when t is removed::

    inf(t) = φ(O(D_g)) − φ(O(D_g − {t}))

where φ is the metric's per-value error. A positive influence means
removing the tuple *reduces* the error — the tuple is part of the
problem. The Preprocessor ranks all of F by this score (paper §2.2.2:
"uses leave-one-out analysis to rank each tuple in F by how much it
influences ε").

Influence is deliberately *local to the group*: under a max-combined
metric, the global ε only moves when the worst group improves, which
would zero out the ranking for every other selected group — useless for
finding suspicious tuples across all of S. For sum-combined metrics the
local and global deltas coincide. The *global* ε and the ranker's Δε do
use the metric's combine (see :func:`subset_epsilon`).

Two implementations are provided:

* **fast** — one grouped pass over a
  :class:`~repro.db.segments.SegmentedValues` holding every selected
  group (:meth:`~repro.db.aggregates.Aggregate.leave_one_out_grouped`)
  plus the max/sum decomposition of the metric: O(|F|) total with no
  Python per-group loop.
* **naive** — recomputes the aggregate from scratch per removal:
  O(|F|²) within each group. Exists for correctness testing and the A1
  ablation benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..db.aggregates import Aggregate
from ..db.segments import (
    SegmentedValues,
    SegmentPairs,
    as_segments,
    partition_offsets,
)
from ..errors import PipelineError
from ..obs.flags import enabled as obs_enabled
from ..obs.metrics import registry as obs_registry
from ..obs.trace import span as obs_span


#: (registry generation, blocks counter, block-seconds histogram) —
#: resolved lazily and re-resolved after a registry ``clear()`` (worker
#: startup), so the per-block hot path below pays one generation check
#: instead of two name lookups per event.
_BLOCK_METRICS: tuple[int, object, object] | None = None


def _block_metrics():
    global _BLOCK_METRICS
    reg = obs_registry()
    generation = reg.generation
    cached = _BLOCK_METRICS
    if cached is None or cached[0] != generation:
        cached = (
            generation,
            reg.counter(
                "dbwipes_partition_blocks_total",
                help="Partition blocks executed by the scatter-gather kernels.",
            ),
            reg.histogram(
                "dbwipes_partition_block_seconds",
                help="Wall seconds per partition block.",
            ),
        )
        _BLOCK_METRICS = cached
    return cached[1], cached[2]


def _record_block_time(seconds: float, stats: dict | None) -> None:
    """Account one partition block's wall time.

    Feeds two sinks: the backend's scatter-stats dict (surfaced as block
    count + max/mean in ``snapshot()["timings"]``) and, when telemetry
    is on, the shared registry's partition-block histogram/counter. This
    runs per block per scored predicate — keep it allocation-free.
    """
    if stats is not None:
        stats["blocks_timed"] = stats.get("blocks_timed", 0) + 1
        stats["block_seconds_total"] = (
            stats.get("block_seconds_total", 0.0) + seconds
        )
        if seconds > stats.get("block_seconds_max", 0.0):
            stats["block_seconds_max"] = seconds
    if obs_enabled():
        counter, histogram = _block_metrics()
        counter.inc()
        histogram.observe(seconds)


@dataclass(frozen=True)
class GroupInfluence:
    """Influence details for one selected result row (group)."""

    row: int
    tids: np.ndarray
    values: np.ndarray
    loo_values: np.ndarray
    influence: np.ndarray
    group_value: float


@dataclass(frozen=True)
class InfluenceResult:
    """Ranked leave-one-out influence over all tuples of F."""

    tids: np.ndarray
    scores: np.ndarray
    epsilon: float
    groups: tuple[GroupInfluence, ...] = field(default_factory=tuple)

    def ranked_tids(self) -> np.ndarray:
        """Tids sorted by descending influence."""
        order = np.argsort(-self.scores, kind="stable")
        return self.tids[order]

    def top_tids(self, quantile: float) -> np.ndarray:
        """Tids whose influence is at or above the given score quantile.

        Only tuples with strictly positive influence are eligible: a tuple
        whose removal does not reduce ε is never "suspicious".
        """
        if len(self.scores) == 0:
            return self.tids
        positive = self.scores > 0
        if not positive.any():
            return np.empty(0, dtype=np.int64)
        cutoff = float(np.quantile(self.scores[positive], quantile))
        return self.tids[positive & (self.scores >= cutoff)]

    @cached_property
    def _tid_index(self) -> tuple[np.ndarray, np.ndarray]:
        """``(sorted_tids, matching_scores)`` for binary-search lookups.

        Built once per result (``cached_property`` writes straight to
        ``__dict__``, so it coexists with the frozen dataclass): callers
        like the enumerator and ranker probe scores once per candidate
        predicate, and rebuilding a dict each probe made scoring
        O(|F|·|predicates|).
        """
        order = np.argsort(self.tids, kind="stable")
        return self.tids[order], self.scores[order]

    def score_of(self, tids: np.ndarray) -> np.ndarray:
        """Influence scores for specific tids (0 for unknown tids)."""
        tids = np.asarray(tids, dtype=np.int64)
        sorted_tids, sorted_scores = self._tid_index
        if len(sorted_tids) == 0:
            return np.zeros(len(tids), dtype=np.float64)
        pos = np.searchsorted(sorted_tids, tids)
        pos = np.minimum(pos, len(sorted_tids) - 1)
        found = sorted_tids[pos] == tids
        return np.where(found, sorted_scores[pos], 0.0)


@dataclass(frozen=True)
class SegmentPartitions:
    """A group-aligned partition plan over one :class:`SegmentedValues`.

    ``bounds`` are segment-index cut points (see
    :func:`~repro.db.segments.partition_offsets`); ``blocks`` are the
    matching contiguous sub-:class:`SegmentedValues` views. A block
    never splits a segment, so every per-segment statistic computed on a
    block is bit-identical to the same statistic computed globally —
    the combine step of the partitioned backend is therefore pure
    concatenation in segment order, followed by one global metric
    application.
    """

    seg: SegmentedValues
    bounds: np.ndarray
    blocks: tuple[SegmentedValues, ...]

    @property
    def n_blocks(self) -> int:
        """Number of contiguous partition blocks."""
        return len(self.blocks)

    def flat_bounds(self, block: int) -> tuple[int, int]:
        """The flat-position range ``[lo, hi)`` covered by ``block``."""
        return (
            int(self.seg.offsets[self.bounds[block]]),
            int(self.seg.offsets[self.bounds[block + 1]]),
        )


def partition_segments(seg: SegmentedValues, n_partitions: int) -> SegmentPartitions:
    """The (memoized) group-aligned partition plan for ``seg``.

    Plans ride on ``seg.memo`` keyed by the partition count, so the
    Preprocessor, Ranker, and Merger of one debugging request — and
    every later debug of a cached selection — share one plan and one
    set of block views (with their own per-block kernel memos).
    """
    key = ("partition_plan", int(n_partitions))
    plan = seg.memo.get(key)
    if plan is None:
        bounds = partition_offsets(seg.offsets, n_partitions)
        blocks = tuple(
            seg.slice_segments(int(bounds[b]), int(bounds[b + 1]))
            for b in range(len(bounds) - 1)
        )
        plan = SegmentPartitions(seg=seg, bounds=bounds, blocks=blocks)
        seg.memo[key] = plan
    return plan


def leave_one_out_influence(
    group_values: list[np.ndarray],
    group_tids: list[np.ndarray],
    rows: list[int],
    aggregate: Aggregate,
    metric,
    fast: bool = True,
    n_partitions: int = 1,
    scatter_stats: dict | None = None,
) -> InfluenceResult:
    """Compute influence for every tuple of the selected groups.

    Parameters
    ----------
    group_values:
        Per selected group, the aggregate's input values for its tuples.
    group_tids:
        Per selected group, the tids matching ``group_values``.
    rows:
        The selected result-row index for each group (for reporting).
    aggregate:
        The aggregate implementation of the debugged output column.
    metric:
        The user's :class:`~repro.core.error_metrics.ErrorMetric`.
    fast:
        Use closed-form leave-one-out (True) or naive recomputation.
    n_partitions:
        Scatter the grouped passes over this many group-aligned blocks
        (the partitioned backend's influence stage). Per-group results
        concatenate in group order, so any count is bit-identical to 1.
    scatter_stats:
        Optional dict accumulating per-block timing (the partitioned
        backend shares its scatter-counter dict here).
    """
    if len(group_values) != len(group_tids) or len(group_values) != len(rows):
        raise PipelineError("group_values, group_tids, and rows must align")
    seg = as_segments(group_values)
    if fast and n_partitions > 1:
        # Scatter: each block holds whole groups, and the grouped
        # kernels are per-group-local folds, so per-block current and
        # leave-one-out values concatenate into exactly the global ones.
        plan = partition_segments(seg, n_partitions)
        currents: list[np.ndarray] = []
        loos: list[np.ndarray] = []
        for index, block in enumerate(plan.blocks):
            with obs_span(
                "partition.block", index=index, rows=len(block.values)
            ):
                t0 = time.perf_counter()
                currents.append(aggregate.compute_grouped(block))
                loos.append(aggregate.leave_one_out_grouped(block))
                _record_block_time(time.perf_counter() - t0, scatter_stats)
        current = np.concatenate(currents)
        loo_flat = np.concatenate(loos)
    elif fast:
        # One grouped pass over every selected group at once: current
        # values, leave-one-out values, and per-value errors are all
        # flat vectorized computations with no Python per-group loop.
        current = aggregate.compute_grouped(seg)
        loo_flat = aggregate.leave_one_out_grouped(seg)
    else:
        current = np.array(
            [aggregate.compute(values) for values in group_values],
            dtype=np.float64,
        )
        loo_flat = (
            np.concatenate(
                [aggregate.leave_one_out_naive(v) for v in group_values]
            )
            if len(group_values)
            else np.empty(0, dtype=np.float64)
        )
    epsilon = metric(current)
    phi = metric.per_value_error(current)
    phi_new_flat = metric.per_value_error(loo_flat)
    scores = phi[seg.segment_ids] - phi_new_flat

    tids = (
        np.concatenate([np.asarray(t, dtype=np.int64) for t in group_tids])
        if len(group_tids)
        else np.empty(0, dtype=np.int64)
    )
    loo_parts = seg.split_flat(loo_flat)
    score_parts = seg.split_flat(scores)
    groups = tuple(
        GroupInfluence(
            row=rows[g],
            tids=np.asarray(group_tids[g], dtype=np.int64),
            values=seg.segment(g),
            loo_values=loo_parts[g],
            influence=score_parts[g],
            group_value=float(current[g]),
        )
        for g in range(seg.n_segments)
    )
    return InfluenceResult(
        tids=tids, scores=scores, epsilon=epsilon, groups=groups
    )


def subset_epsilon(
    group_values: list[np.ndarray],
    group_remove_masks: list[np.ndarray],
    aggregate: Aggregate,
    metric,
) -> float:
    """ε(S) after removing a per-group masked subset of input tuples.

    This is the ranker's Δε evaluator: it answers "what would the error be
    if this predicate's tuples were deleted" using the removable-aggregate
    sufficient statistics rather than re-running the query.
    """
    if len(group_values) != len(group_remove_masks):
        raise PipelineError("group_values and masks must align")
    seg = as_segments(group_values)
    remove_mask = (
        np.concatenate(
            [np.asarray(m, dtype=bool) for m in group_remove_masks]
        )
        if len(group_remove_masks)
        else np.empty(0, dtype=bool)
    )
    return subset_epsilon_grouped(seg, remove_mask, aggregate, metric)


def subset_epsilon_grouped(
    seg: SegmentedValues,
    remove_mask: np.ndarray,
    aggregate: Aggregate,
    metric,
    n_partitions: int = 1,
) -> float:
    """:func:`subset_epsilon` over an already-segmented selection.

    The Ranker and Merger call this once per candidate predicate with a
    single flat mask over the segment table, so the whole Δε preview is
    one grouped :meth:`~repro.db.aggregates.Aggregate.compute_without_grouped`
    pass. With ``n_partitions > 1`` the pass scatters over group-aligned
    blocks (flat-sliced masks) and the per-group values concatenate
    before the single global metric application — bit-identical.
    """
    if n_partitions > 1:
        plan = partition_segments(seg, n_partitions)
        new_values = np.concatenate(
            [
                aggregate.compute_without_grouped(
                    block, remove_mask[slice(*plan.flat_bounds(b))]
                )
                for b, block in enumerate(plan.blocks)
            ]
        )
    else:
        new_values = aggregate.compute_without_grouped(seg, remove_mask)
    return metric(new_values)


#: Soft cap on the elements of one batched Δε slab (rows × flat values).
#: Above this the mask matrix is split into row chunks so the float64
#: temporaries of the 2-D kernels stay within a few hundred MB even on
#: the 50× ablation workloads.
BATCH_MAX_ELEMENTS = 8_000_000


def subset_epsilon_grouped_batch(
    seg: SegmentedValues,
    remove_masks: np.ndarray,
    aggregate: Aggregate,
    metric,
    max_elements: int = BATCH_MAX_ELEMENTS,
) -> np.ndarray:
    """:func:`subset_epsilon_grouped` for R remove-masks in one pass.

    ``remove_masks`` is an ``(R, len(seg))`` boolean matrix — one
    candidate predicate's flat remove-mask per row. The whole batch is
    scored with a single grouped
    :meth:`~repro.db.aggregates.Aggregate.compute_without_grouped_batch`
    pass per row-chunk instead of R separate grouped passes; row ``r``
    of the result is bit-identical to
    ``subset_epsilon_grouped(seg, remove_masks[r], ...)``, which is what
    lets the batched Ranker stay byte-identical to the per-rule
    reference.
    """
    new_values = _new_values_grouped_batch(seg, remove_masks, aggregate, max_elements)
    return _metric_rows(new_values, metric)


def _metric_rows(new_values: np.ndarray, metric) -> np.ndarray:
    """The metric applied to each row of an after-removal value matrix."""
    out = np.empty(new_values.shape[0], dtype=np.float64)
    for row in range(new_values.shape[0]):
        out[row] = metric(new_values[row])
    return out


def _new_values_grouped_batch(
    seg: SegmentedValues,
    remove_masks: np.ndarray,
    aggregate: Aggregate,
    max_elements: int = BATCH_MAX_ELEMENTS,
) -> np.ndarray:
    """The dense ``(R, n_segments)`` after-removal value matrix.

    Row-chunked by ``max_elements`` so the 2-D kernel temporaries stay
    bounded; the chunking cannot perturb values because each chunk is an
    independent set of mask rows.
    """
    remove_masks = np.asarray(remove_masks, dtype=bool)
    if remove_masks.ndim != 2 or remove_masks.shape[1] != len(seg.values):
        raise PipelineError("remove mask matrix shape does not match segments")
    n_rows = remove_masks.shape[0]
    out = np.empty((n_rows, seg.n_segments), dtype=np.float64)
    if n_rows == 0:
        return out
    chunk = max(1, max_elements // max(len(seg.values), 1))
    for start in range(0, n_rows, chunk):
        block = remove_masks[start: start + chunk]
        out[start: start + block.shape[0]] = (
            aggregate.compute_without_grouped_batch(seg, block)
        )
    return out


#: Above this fraction of the dense (rows × n) work, the group-sparse
#: Δε path stops paying for its gathers and the dense kernels run
#: instead. Both paths are bit-identical, so the cutover is pure policy.
SPARSE_DENSITY_CUTOFF = 0.5


def subset_epsilon_for_mask_set(
    seg: SegmentedValues,
    mask_set,
    aggregate: Aggregate,
    metric,
    positions: np.ndarray | None = None,
    n_partitions: int = 1,
    scatter_stats: dict | None = None,
) -> np.ndarray:
    """Batched Δε over a :class:`~repro.core.maskset.MaskSet`.

    Three structural savings on top of the batch kernels, all provably
    bit-identical to scoring each rule alone:

    * ``positions`` maps mask bits onto the segment flat order (the
      segment table is F's rows re-ordered, so a predicate's segment
      mask is a gather of its F mask — no second mask evaluation);
    * candidate predicates frequently denote the *same* tuple set (that
      is what the ranker's dedupe exploits), so the packed-mask digests
      score each distinct remove-mask once and broadcast the result;
    * a rule leaves most groups untouched, and an untouched group's
      aggregate-after-removal is, fold-for-fold, the no-removal value —
      so only the touched (rule, group) pairs are re-aggregated, over a
      compacted copy of exactly those groups.

    With ``n_partitions > 1`` the unique masks score through
    :func:`_epsilons_partitioned` instead — and because the partitioned
    values are bit-identical to the global ones, the ε memo is safely
    shared across partition counts and backends.
    """
    digests = mask_set.digests()
    # ε per distinct mask is memoized on the segments: a repeated debug
    # of a cached selection — N service sessions, or the next cycle of
    # one session — pays only dictionary lookups for every predicate
    # whose tuple set has been previewed before. Cached values are the
    # very floats a fresh scoring would produce, so the memo cannot
    # perturb byte-identity.
    cache_key = (
        "subset_epsilon",
        aggregate.name,
        type(metric).__name__,
        metric.describe(),
        getattr(metric, "combine", None),
    )
    cache = seg.memo.get(cache_key)
    if cache is None:
        cache = {}
        seg.memo[cache_key] = cache
    first_row: dict[bytes, int] = {}
    unique_rows: list[int] = []
    for row, digest in enumerate(digests):
        if digest not in first_row and digest not in cache:
            first_row[digest] = len(unique_rows)
            unique_rows.append(row)
    if unique_rows:
        bools = mask_set.bools(np.asarray(unique_rows, dtype=np.int64))
        if positions is not None:
            bools = bools[:, positions]
        if n_partitions > 1:
            unique = _epsilons_partitioned(
                seg, bools, aggregate, metric, n_partitions, scatter_stats
            )
        else:
            unique = _epsilons_group_sparse(seg, bools, aggregate, metric)
        for digest, index in first_row.items():
            cache[digest] = float(unique[index])
    return np.fromiter(
        (cache[digest] for digest in digests),
        dtype=np.float64,
        count=len(digests),
    )


def _epsilons_group_sparse(
    seg: SegmentedValues,
    remove_masks: np.ndarray,
    aggregate: Aggregate,
    metric,
) -> np.ndarray:
    """ε per mask row, re-aggregating only the touched (row, group) pairs.

    A group none of whose flat positions are removed contributes its
    no-removal aggregate — computed once via the *same* masked kernel
    (``compute_without_grouped`` with an all-False mask), so the fold
    order matches the dense path exactly. The touched pairs are copied
    group-wholesale into one compacted :class:`SegmentedValues` and
    pushed through the 1-D grouped kernel in a single pass; since every
    grouped kernel is a per-group-local fold, the compacted results are
    bit-identical to the dense ones. Falls back to the dense batch
    kernels when the touched volume approaches the dense volume.
    """
    new_values = _new_values_group_sparse(seg, remove_masks, aggregate)
    return _metric_rows(new_values, metric)


def _new_values_group_sparse(
    seg: SegmentedValues,
    remove_masks: np.ndarray,
    aggregate: Aggregate,
) -> np.ndarray:
    """The ``(R, n_segments)`` after-removal matrix, touched pairs only.

    Value producer behind :func:`_epsilons_group_sparse`, factored out
    so the partitioned scatter can run it per block and concatenate the
    per-group columns (both the sparse and its dense-fallback values are
    bit-identical, so a block may take either branch independently).
    """
    from ..db.segments import _count_reduceat_batch

    n_rows = remove_masks.shape[0]
    n_flat = len(seg.values)
    if n_rows == 0:
        return np.empty((0, seg.n_segments), dtype=np.float64)
    removed_counts = _count_reduceat_batch(remove_masks, seg.offsets)
    row_idx, group_idx = np.nonzero(removed_counts > 0)
    lengths = seg.lengths[group_idx]
    touched_volume = int(lengths.sum())
    if touched_volume >= SPARSE_DENSITY_CUTOFF * n_rows * n_flat:
        return _new_values_grouped_batch(seg, remove_masks, aggregate)

    # The no-removal baseline, through the same masked kernel so the
    # accumulation of untouched groups matches the dense path; memoized
    # on the segments (shared by the Ranker, Merger, and later debugs).
    baseline_key = ("cwg_baseline", aggregate.name)
    baseline = seg.memo.get(baseline_key)
    if baseline is None:
        baseline = aggregate.compute_without_grouped(
            seg, np.zeros(n_flat, dtype=bool)
        )
        seg.memo[baseline_key] = baseline
    new_values = np.tile(baseline, (n_rows, 1))
    if touched_volume:
        # Ragged gather: for each touched (row, group) pair, the group's
        # whole flat range, concatenated.
        mini_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(lengths)]
        )
        starts = seg.offsets[:-1][group_idx]
        flat = (
            np.arange(touched_volume, dtype=np.int64)
            - np.repeat(mini_offsets[:-1], lengths)
            + np.repeat(starts, lengths)
        )
        pairs = SegmentPairs(seg, flat, mini_offsets, group_idx)
        mini_masks = remove_masks[np.repeat(row_idx, lengths), flat]
        new_values[row_idx, group_idx] = aggregate.compute_without_pairs(
            pairs, mini_masks
        )
    return new_values


def _epsilons_partitioned(
    seg: SegmentedValues,
    remove_masks: np.ndarray,
    aggregate: Aggregate,
    metric,
    n_partitions: int,
    stats: dict | None = None,
) -> np.ndarray:
    """ε per mask row via the partitioned scatter-gather.

    Scatter: each group-aligned block computes its own after-removal
    value sub-matrix over the flat-sliced mask columns — exactly the
    sparse-with-dense-fallback kernels the single-process path runs on
    the whole array. Gather: the blocks' per-group columns concatenate
    in group order (bit-identical, since every grouped kernel is a
    per-group-local fold) and the metric collapses each full row once.
    Byte-identity therefore holds even when a block's sparse/dense
    cutover decision differs from the global one. ``stats`` accumulates
    the scatter fan-out counters the backend surfaces in ``snapshot()``.
    """
    plan = partition_segments(seg, n_partitions)
    parts: list[np.ndarray] = []
    for b, block in enumerate(plan.blocks):
        t0 = time.perf_counter()
        parts.append(
            _new_values_group_sparse(
                block, remove_masks[:, slice(*plan.flat_bounds(b))], aggregate
            )
        )
        _record_block_time(time.perf_counter() - t0, stats)
    new_values = np.hstack(parts)
    if stats is not None:
        stats["delta_blocks"] = stats.get("delta_blocks", 0) + plan.n_blocks
        stats["delta_mask_rows"] = (
            stats.get("delta_mask_rows", 0) + int(remove_masks.shape[0])
        )
    return _metric_rows(new_values, metric)


class DeltaEpsilonScorer:
    """Default Δε scorer: single-pass global kernels.

    The Ranker and Merger call one of two hooks depending on their
    ``algorithm``: :meth:`epsilons_for_mask_set` on the batched path,
    :meth:`epsilon_for_predicate` on the per-rule reference path. The
    execution backend injects the scorer, so the partitioned engine can
    swap in scatter-gather evaluation without the Ranker or Merger
    knowing which backend is running.
    """

    def epsilons_for_mask_set(self, pre, mask_set) -> np.ndarray:
        """Δε previews for every row of a packed mask set."""
        return subset_epsilon_for_mask_set(
            pre.segments,
            mask_set,
            pre.aggregate,
            pre.metric,
            positions=pre.segment_positions,
        )

    def epsilon_for_predicate(self, pre, predicate) -> float:
        """ε after removing one predicate's tuples (mask included)."""
        remove_mask = predicate.mask(pre.segment_table)
        return subset_epsilon_grouped(
            pre.segments, remove_mask, pre.aggregate, pre.metric
        )


class PartitionedDeltaEpsilonScorer(DeltaEpsilonScorer):
    """Scatter-gather Δε scorer for the partitioned backend.

    Batched previews scatter over group-aligned blocks via
    :func:`_epsilons_partitioned`; the per-rule path goes further and
    evaluates each predicate's *mask* per block too, over the sliced
    :class:`~repro.learn.split_index.SplitIndex` views that
    :meth:`~repro.core.preprocessor.PreprocessResult.partition_blocks`
    builds — the whole rule pipeline (mask, masked aggregate, metric)
    runs block-local with one global combine. ``stats`` is shared with
    the owning backend and surfaces in ``snapshot()``.
    """

    def __init__(self, n_partitions: int, stats: dict | None = None):
        self.n_partitions = max(1, int(n_partitions))
        self.stats = stats if stats is not None else {}

    def epsilons_for_mask_set(self, pre, mask_set) -> np.ndarray:
        return subset_epsilon_for_mask_set(
            pre.segments,
            mask_set,
            pre.aggregate,
            pre.metric,
            positions=pre.segment_positions,
            n_partitions=self.n_partitions,
            scatter_stats=self.stats,
        )

    def epsilon_for_predicate(self, pre, predicate) -> float:
        plan = partition_segments(pre.segments, self.n_partitions)
        parts = []
        for block_table, engine, block_seg in pre.partition_blocks(
            self.n_partitions
        ):
            t0 = time.perf_counter()
            remove_block = engine.predicate_mask(block_table, predicate)
            parts.append(
                pre.aggregate.compute_without_grouped(block_seg, remove_block)
            )
            _record_block_time(time.perf_counter() - t0, self.stats)
        self.stats["rule_blocks"] = (
            self.stats.get("rule_blocks", 0) + plan.n_blocks
        )
        return pre.metric(np.concatenate(parts))


