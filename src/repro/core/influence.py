"""Leave-one-out influence of input tuples on the error metric.

For each tuple t feeding a selected group g, the influence is the
reduction in that group's error contribution when t is removed::

    inf(t) = φ(O(D_g)) − φ(O(D_g − {t}))

where φ is the metric's per-value error. A positive influence means
removing the tuple *reduces* the error — the tuple is part of the
problem. The Preprocessor ranks all of F by this score (paper §2.2.2:
"uses leave-one-out analysis to rank each tuple in F by how much it
influences ε").

Influence is deliberately *local to the group*: under a max-combined
metric, the global ε only moves when the worst group improves, which
would zero out the ranking for every other selected group — useless for
finding suspicious tuples across all of S. For sum-combined metrics the
local and global deltas coincide. The *global* ε and the ranker's Δε do
use the metric's combine (see :func:`subset_epsilon`).

Two implementations are provided:

* **fast** — uses the removable-aggregate closed forms
  (:meth:`~repro.db.aggregates.Aggregate.leave_one_out`) plus the
  max/sum decomposition of the metric: O(|F|) total.
* **naive** — recomputes the aggregate from scratch per removal:
  O(|F|²) within each group. Exists for correctness testing and the A1
  ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..db.aggregates import Aggregate
from ..errors import PipelineError


@dataclass(frozen=True)
class GroupInfluence:
    """Influence details for one selected result row (group)."""

    row: int
    tids: np.ndarray
    values: np.ndarray
    loo_values: np.ndarray
    influence: np.ndarray
    group_value: float


@dataclass(frozen=True)
class InfluenceResult:
    """Ranked leave-one-out influence over all tuples of F."""

    tids: np.ndarray
    scores: np.ndarray
    epsilon: float
    groups: tuple[GroupInfluence, ...] = field(default_factory=tuple)

    def ranked_tids(self) -> np.ndarray:
        """Tids sorted by descending influence."""
        order = np.argsort(-self.scores, kind="stable")
        return self.tids[order]

    def top_tids(self, quantile: float) -> np.ndarray:
        """Tids whose influence is at or above the given score quantile.

        Only tuples with strictly positive influence are eligible: a tuple
        whose removal does not reduce ε is never "suspicious".
        """
        if len(self.scores) == 0:
            return self.tids
        positive = self.scores > 0
        if not positive.any():
            return np.empty(0, dtype=np.int64)
        cutoff = float(np.quantile(self.scores[positive], quantile))
        return self.tids[positive & (self.scores >= cutoff)]

    def score_of(self, tids: np.ndarray) -> np.ndarray:
        """Influence scores for specific tids (0 for unknown tids)."""
        lookup = {int(t): float(s) for t, s in zip(self.tids, self.scores)}
        return np.array([lookup.get(int(t), 0.0) for t in tids], dtype=np.float64)


def leave_one_out_influence(
    group_values: list[np.ndarray],
    group_tids: list[np.ndarray],
    rows: list[int],
    aggregate: Aggregate,
    metric,
    fast: bool = True,
) -> InfluenceResult:
    """Compute influence for every tuple of the selected groups.

    Parameters
    ----------
    group_values:
        Per selected group, the aggregate's input values for its tuples.
    group_tids:
        Per selected group, the tids matching ``group_values``.
    rows:
        The selected result-row index for each group (for reporting).
    aggregate:
        The aggregate implementation of the debugged output column.
    metric:
        The user's :class:`~repro.core.error_metrics.ErrorMetric`.
    fast:
        Use closed-form leave-one-out (True) or naive recomputation.
    """
    if len(group_values) != len(group_tids) or len(group_values) != len(rows):
        raise PipelineError("group_values, group_tids, and rows must align")
    current = np.array(
        [aggregate.compute(values) for values in group_values], dtype=np.float64
    )
    epsilon = metric(current)
    phi = metric.per_value_error(current)

    all_tids: list[np.ndarray] = []
    all_scores: list[np.ndarray] = []
    groups: list[GroupInfluence] = []
    for g, (values, tids) in enumerate(zip(group_values, group_tids)):
        if fast:
            loo = aggregate.leave_one_out(values)
        else:
            loo = aggregate.leave_one_out_naive(values)
        phi_new = metric.per_value_error(loo)
        influence = phi[g] - phi_new
        all_tids.append(np.asarray(tids, dtype=np.int64))
        all_scores.append(influence)
        groups.append(
            GroupInfluence(
                row=rows[g],
                tids=np.asarray(tids, dtype=np.int64),
                values=np.asarray(values, dtype=np.float64),
                loo_values=loo,
                influence=influence,
                group_value=float(current[g]),
            )
        )
    if all_tids:
        tids = np.concatenate(all_tids)
        scores = np.concatenate(all_scores)
    else:
        tids = np.empty(0, dtype=np.int64)
        scores = np.empty(0, dtype=np.float64)
    return InfluenceResult(
        tids=tids, scores=scores, epsilon=epsilon, groups=tuple(groups)
    )


def subset_epsilon(
    group_values: list[np.ndarray],
    group_remove_masks: list[np.ndarray],
    aggregate: Aggregate,
    metric,
) -> float:
    """ε(S) after removing a per-group masked subset of input tuples.

    This is the ranker's Δε evaluator: it answers "what would the error be
    if this predicate's tuples were deleted" using the removable-aggregate
    sufficient statistics rather than re-running the query.
    """
    if len(group_values) != len(group_remove_masks):
        raise PipelineError("group_values and masks must align")
    new_values = np.array(
        [
            aggregate.compute_without(values, mask)
            for values, mask in zip(group_values, group_remove_masks)
        ],
        dtype=np.float64,
    )
    return metric(new_values)


