"""Result containers: ranked predicates and the debug report."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..db.predicate import Predicate


@dataclass(frozen=True)
class RankedPredicate:
    """One entry of the ranked predicate list (Figure 6 of the paper)."""

    predicate: Predicate
    #: Combined ranking score (higher is better).
    score: float
    #: ε before any cleaning.
    epsilon_before: float
    #: ε after hypothetically removing the predicate's tuples.
    epsilon_after: float
    #: F1 of the predicate against its candidate set over F.
    accuracy: float
    #: Precision / recall components of that accuracy.
    precision: float
    recall: float
    #: Number of atomic conditions in the predicate.
    complexity: int
    #: Number of tuples of F the predicate matches.
    n_matched: int
    #: Origin of the candidate set (dprime / influence / subgroup / ...).
    candidate_origin: str
    #: Learner that produced the predicate (tree:gini, cn2sd, ...).
    source: str

    @property
    def error_reduction(self) -> float:
        """Absolute ε improvement from applying this predicate."""
        return self.epsilon_before - self.epsilon_after

    @property
    def relative_error_reduction(self) -> float:
        """Fractional ε improvement (0 when ε was already 0)."""
        if self.epsilon_before <= 0:
            return 0.0
        return self.error_reduction / self.epsilon_before

    def describe(self) -> str:
        """Compact one-line rendering."""
        return (
            f"{self.predicate.describe()}  "
            f"[score={self.score:.3f} Δε={self.error_reduction:.3g} "
            f"({100 * self.relative_error_reduction:.0f}%) f1={self.accuracy:.2f} "
            f"terms={self.complexity}]"
        )


@dataclass(frozen=True)
class DebugReport:
    """The output of one ranked-provenance debugging request."""

    predicates: tuple[RankedPredicate, ...]
    epsilon: float
    metric_description: str
    selected_rows: tuple[int, ...]
    n_inputs: int
    n_dprime: int
    n_candidates: int
    timings: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self):
        return iter(self.predicates)

    def __getitem__(self, index: int) -> RankedPredicate:
        return self.predicates[index]

    @property
    def best(self) -> RankedPredicate | None:
        """The top-ranked predicate, or ``None`` when nothing was found."""
        return self.predicates[0] if self.predicates else None

    def top(self, k: int) -> tuple[RankedPredicate, ...]:
        """The best ``k`` predicates."""
        return self.predicates[:k]

    def total_time(self) -> float:
        """Wall-clock total across recorded pipeline stages (seconds)."""
        return sum(self.timings.values())

    def to_text(self, max_rows: int = 10) -> str:
        """The ranked-predicate panel, in the spirit of Figure 6."""
        lines = [
            f"Ranked predicates — {self.metric_description}",
            f"S = {list(self.selected_rows)}, |F| = {self.n_inputs}, "
            f"|D'| = {self.n_dprime}, candidates = {self.n_candidates}, "
            f"eps = {self.epsilon:.4g}",
            "-" * 72,
        ]
        if not self.predicates:
            lines.append("(no predicates found)")
        for rank, ranked in enumerate(self.predicates[:max_rows], start=1):
            lines.append(f"{rank:2d}. {ranked.describe()}")
        if len(self.predicates) > max_rows:
            lines.append(f"... ({len(self.predicates) - max_rows} more)")
        return "\n".join(lines)
