"""The Dataset Enumerator: clean D' and extend it into candidate D* sets.

Paper §2.2.2: *"The Dataset Enumerator cleans D' by identifying a self
consistent subset. We are currently experimenting with clustering (e.g.,
K-means) and classification based techniques that train classifiers on
D' and remove elements that are not consistent with the classifier. We
then extend the cleaned D' using subgroup discovery algorithms to find
groups of inputs that highly influence ε."*

Output: an ordered list of :class:`CandidateSet`, each a plausible
approximation of the true error set D*:

1. the cleaned D' itself;
2. the high-influence extension (cleaned D' ∪ tuples whose leave-one-out
   influence clears a quantile threshold);
3. one candidate per discovered subgroup (tuples covered by a CN2-SD
   rule learned with the extension as the positive class).

When the user supplied no examples at all, candidates fall back to pure
influence thresholds at several quantiles — ε still identifies which
inputs matter (this is the "pre-defined criteria" degenerate mode the
introduction contrasts against, available as a fallback rather than the
primary path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..db.table import Table
from ..errors import PipelineError
from ..learn.classify import MixedNaiveBayes
from ..learn.kmeans import dominant_cluster_mask
from ..learn.rules import Rule
from ..learn.subgroup import SubgroupDiscovery
from .preprocessor import PreprocessResult

CLEAN_STRATEGIES = ("kmeans", "nb", "none")


@dataclass(frozen=True)
class CandidateSet:
    """One candidate approximation of the true error set D*.

    ``rules`` carries the learner rules that *generated* this tid set
    (e.g. CN2-SD subgroups). Several subgroups may cover the identical
    tuple set — all their descriptions are kept, because the Predicate
    Ranker may prefer a different description than the one found first.
    """

    tids: np.ndarray
    origin: str
    rules: tuple[Rule, ...] = ()
    extra: dict = field(default_factory=dict, compare=False)

    @property
    def size(self) -> int:
        """Number of tuples in the candidate."""
        return len(self.tids)

    def label_mask(self, table: Table) -> np.ndarray:
        """Boolean labels over ``table``: True where the row is in this set."""
        return _tid_mask(table, self.tids)


class DatasetEnumerator:
    """Cleans D' and enumerates candidate error sets."""

    def __init__(
        self,
        clean_strategy: str = "kmeans",
        extend: bool = True,
        influence_quantile: float = 0.75,
        fallback_quantiles: tuple[float, ...] = (0.5, 0.75, 0.9),
        subgroup: SubgroupDiscovery | None = None,
        feature_columns: Sequence[str] | None = None,
        max_candidates: int = 8,
        nb_mad_threshold: float = 3.5,
        min_keep_fraction: float = 0.6,
        seed: int = 0,
    ):
        if clean_strategy not in CLEAN_STRATEGIES:
            raise PipelineError(
                f"clean_strategy must be one of {CLEAN_STRATEGIES}"
            )
        self.clean_strategy = clean_strategy
        self.extend = extend
        self.influence_quantile = influence_quantile
        self.fallback_quantiles = fallback_quantiles
        self.subgroup = subgroup or SubgroupDiscovery()
        self.feature_columns = tuple(feature_columns) if feature_columns else None
        self.max_candidates = max_candidates
        self.nb_mad_threshold = nb_mad_threshold
        self.min_keep_fraction = min_keep_fraction
        self.seed = seed

    # ------------------------------------------------------------------

    def run(
        self, pre: PreprocessResult, dprime_tids: Sequence[int] | np.ndarray = ()
    ) -> list[CandidateSet]:
        """Produce candidate D* sets from the preprocessed selection."""
        F = pre.F
        dprime = self._restrict_to_F(F, dprime_tids)
        candidates: list[CandidateSet] = []
        if len(dprime) > 0:
            cleaned = self.clean_dprime(F, dprime, pre=pre)
            candidates.append(CandidateSet(tids=cleaned, origin="dprime"))
            extension = self._extend_by_influence(pre, cleaned)
            if len(extension) > len(cleaned):
                candidates.append(CandidateSet(tids=extension, origin="influence"))
            positives = extension if len(extension) else cleaned
        else:
            for quantile in self.fallback_quantiles:
                tids = pre.influence.top_tids(quantile)
                if len(tids):
                    candidates.append(
                        CandidateSet(
                            tids=tids,
                            origin=f"influence@{quantile:g}",
                        )
                    )
            positives = (
                candidates[-1].tids if candidates else np.empty(0, dtype=np.int64)
            )
        if self.extend and len(positives):
            candidates.extend(self._subgroup_candidates(F, positives, pre=pre))
        return self._dedupe(candidates)[: self.max_candidates]

    # ------------------------------------------------------------------

    def clean_dprime(
        self, F: Table, dprime: np.ndarray, pre: PreprocessResult | None = None
    ) -> np.ndarray:
        """The self-consistent subset of the user's examples.

        ``pre`` (when available) supplies shared per-column numeric casts
        so each cleaning strategy reuses one float64 view of F instead of
        re-deriving it.
        """
        if len(dprime) < 4 or self.clean_strategy == "none":
            return dprime
        dprime_table = F.take_tids(dprime)
        if self.clean_strategy == "kmeans":
            keep = self._kmeans_keep(dprime_table, F=F, dprime=dprime, pre=pre)
        else:
            keep = self._nb_keep(dprime_table)
        # Cleaning removes *stray* examples; if it would discard close to
        # half of D', the "structure" is ambiguous and trusting the user's
        # selection wholesale is safer than gutting it.
        if keep.sum() < self.min_keep_fraction * len(dprime):
            return dprime
        return dprime[keep]

    def _kmeans_keep(
        self,
        dprime_table: Table,
        F: Table | None = None,
        dprime: np.ndarray | None = None,
        pre: PreprocessResult | None = None,
    ) -> np.ndarray:
        numeric = self._numeric_features(dprime_table)
        if not numeric:
            return np.ones(len(dprime_table), dtype=bool)
        if pre is not None and F is not None and F is pre.F and dprime is not None:
            # Slice the shared float64 casts of F instead of re-casting
            # the materialized D' table column by column.
            positions = F.positions_of(dprime)
            X = np.column_stack(
                [pre.numeric_values(name)[positions] for name in numeric]
            )
        else:
            X = np.column_stack(
                [
                    np.asarray(dprime_table.column(name), dtype=np.float64)
                    for name in numeric
                ]
            )
        X = np.nan_to_num(X, nan=0.0)
        return dominant_cluster_mask(X, seed=self.seed)

    def _nb_keep(self, dprime_table: Table) -> np.ndarray:
        features = self._all_features(dprime_table)
        if not features:
            return np.ones(len(dprime_table), dtype=bool)
        labels = np.ones(len(dprime_table), dtype=bool)
        # One-class mode: fit on D' only, score typicality, drop robust outliers.
        nb = MixedNaiveBayes().fit(dprime_table, labels, features=features)
        scores = nb.density_score(dprime_table)
        median = float(np.median(scores))
        mad = float(np.median(np.abs(scores - median)))
        if mad <= 0:
            return np.ones(len(dprime_table), dtype=bool)
        robust_z = 0.6745 * (scores - median) / mad
        return robust_z > -self.nb_mad_threshold

    # ------------------------------------------------------------------

    def _extend_by_influence(
        self, pre: PreprocessResult, cleaned: np.ndarray
    ) -> np.ndarray:
        high = pre.influence.top_tids(self.influence_quantile)
        if len(high) == 0:
            return cleaned
        return np.unique(np.concatenate([cleaned, high]))

    def _subgroup_candidates(
        self, F: Table, positives: np.ndarray, pre: PreprocessResult | None = None
    ) -> list[CandidateSet]:
        labels = _tid_mask(F, positives)
        if not labels.any() or labels.all():
            return []
        features = self._all_features(F)
        shared_edges = None
        if pre is not None and F is pre.F:
            # Equal-frequency cut points depend only on F's distribution;
            # compute them once on the PreprocessResult and hand them to
            # every CN2-SD invocation instead of re-deriving per call.
            shared_edges = {
                name: pre.frequency_edges(name, self.subgroup.numeric_bins)
                for name in features
                if F.schema.type_of(name).is_numeric
            }
        rules = self.subgroup.fit(
            F, labels, features=features, shared_edges=shared_edges
        )
        out: list[CandidateSet] = []
        for rule in rules:
            tids = rule.predicate.matching_tids(F)
            if len(tids) == 0:
                continue
            out.append(
                CandidateSet(
                    tids=np.asarray(tids, dtype=np.int64),
                    origin="subgroup",
                    rules=(rule,),
                )
            )
        return out

    # ------------------------------------------------------------------

    def _restrict_to_F(
        self, F: Table, dprime_tids: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        tids = np.asarray(list(dprime_tids), dtype=np.int64)
        if len(tids) == 0:
            return tids
        present = np.isin(tids, np.asarray(F.tids, dtype=np.int64))
        return np.unique(tids[present])

    def _numeric_features(self, table: Table) -> list[str]:
        names = self.feature_columns or table.schema.names
        return [n for n in names if n in table.schema and table.schema.type_of(n).is_numeric]

    def _all_features(self, table: Table) -> list[str]:
        names = self.feature_columns or table.schema.names
        return [n for n in names if n in table.schema]

    @staticmethod
    def _dedupe(candidates: list[CandidateSet]) -> list[CandidateSet]:
        """Merge candidates with identical tid sets, keeping every rule."""
        by_key: dict[frozenset, CandidateSet] = {}
        order: list[frozenset] = []
        for candidate in candidates:
            key = frozenset(int(t) for t in candidate.tids)
            if not key:
                continue
            existing = by_key.get(key)
            if existing is None:
                by_key[key] = candidate
                order.append(key)
            elif candidate.rules:
                merged_rules = existing.rules + tuple(
                    rule for rule in candidate.rules if rule not in existing.rules
                )
                by_key[key] = CandidateSet(
                    tids=existing.tids,
                    origin=existing.origin,
                    rules=merged_rules,
                    extra=existing.extra,
                )
        return [by_key[key] for key in order]


def _tid_mask(table: Table, tids: np.ndarray) -> np.ndarray:
    """Vectorized membership: True where the row's tid is in ``tids``."""
    wanted = np.asarray(tids, dtype=np.int64).ravel()
    table_tids = np.asarray(table.tids, dtype=np.int64)
    if len(wanted) == 0 or len(table_tids) == 0:
        return np.zeros(len(table_tids), dtype=bool)
    return np.isin(table_tids, wanted)
