"""Batched mask evaluation: each distinct clause once, bit-packed.

The Ranker and Merger both need, for every candidate predicate, a
boolean mask over F (accuracy, dedupe) and over the segment table (Δε).
Evaluated naively that is one :meth:`~repro.db.predicate.Predicate.mask`
call per (predicate, table) — and the candidate predicates of one debug
cycle share clauses heavily, because all K × S tree fits draw their
thresholds from one shared :class:`~repro.learn.split_index.SplitIndex`
grid. This module exploits both redundancies:

* **Distinct clauses are evaluated exactly once per table.** Numeric
  clauses whose bounds sit on the shared ``SplitIndex`` threshold grid
  (all tree rules do — their thresholds come from that grid) become
  range tests over the memoized int64 bin codes: one scalar
  ``np.searchsorted`` to locate the bound, then an integer code
  comparison — no per-row float work. Off-grid bounds (CN2-SD quantile
  edges, equality intervals) fall back to direct comparisons over the
  cached float64 cast, exactly the reference semantics. Categorical
  clauses become lookups into a cached per-column code table, so set
  membership is one fancy-index over int codes. Anything outside the
  fast paths (e.g. a categorical clause on a numeric column) falls back
  to the reference ``clause.mask`` — still cached, still evaluated
  once.
* **Masks are stored bit-packed** (``np.packbits``): a conjunction is a
  bitwise AND of uint8 rows (n/8 bytes per predicate), match counts are
  a 256-entry popcount table away, and dedupe keys are ``blake2b``
  digests of the packed bits instead of full ``tobytes()`` buffers.

A :class:`ClauseMaskCache` is memoized on
:class:`~repro.core.preprocessor.PreprocessResult` (see
:meth:`~repro.core.preprocessor.PreprocessResult.mask_engine`), so in
the service tier one cache serves every session debugging the same
selection — exactly like the segmented aggregates and the SplitIndex.
Concurrent use is safe the same way the other ``PreprocessResult``
memos are: races are benign because recomputation yields an identical
value and dict assignment is atomic.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..db.predicate import CategoricalClause, Clause, NumericClause, Predicate
from ..db.table import Table

__all__ = ["ClauseMaskCache", "MaskSet", "pack_mask", "unpack_masks"]

#: Per-byte popcount lookup: ``_POPCOUNT[packed].sum()`` counts set bits.
_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)


def pack_mask(mask: np.ndarray) -> np.ndarray:
    """A boolean mask as packed uint8 bits (zero-padded to a whole byte)."""
    return np.packbits(np.asarray(mask, dtype=bool))


def unpack_masks(packed: np.ndarray, n_rows: int) -> np.ndarray:
    """Packed rows back to a ``(rows, n_rows)`` boolean matrix."""
    if packed.ndim == 1:
        packed = packed[None, :]
    return np.unpackbits(packed, axis=1, count=n_rows).view(bool)


def popcount(packed: np.ndarray) -> np.ndarray:
    """Set-bit count per row of a packed matrix (padding bits are zero)."""
    if packed.ndim == 1:
        packed = packed[None, :]
    if packed.shape[1] == 0:
        return np.zeros(packed.shape[0], dtype=np.int64)
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0: one C-level pass
        return np.bitwise_count(packed).sum(axis=1, dtype=np.int64)
    return _POPCOUNT[packed].sum(axis=1)


class _NumericColumn:
    """One numeric column's mask artifacts over a fixed table.

    When the table carries a
    :class:`~repro.learn.split_index.NumericColumnIndex` for the column
    (the tree-induction grid memoized on ``PreprocessResult``), clause
    bounds that sit exactly on that threshold grid are range tests over
    the int64 bin codes — no per-row float work. Tree rules always take
    this path: their thresholds come from the grid, a left branch is
    ``value <= t`` (``codes <= k``) and a right branch ``value > t``
    (``codes > k``). Because every grid threshold is a midpoint of two
    consecutive distinct data values, ``codes <= k`` is exact for the
    inclusive upper bound and ``codes > k`` for the exclusive lower one
    even if a data value collides with a rounded midpoint. Bounds off
    the grid — CN2-SD quantile edges, equality intervals, user
    predicates — fall back to direct comparisons over the (lazily cast)
    float64 values, which the reference evaluator uses too; either way
    the clause is evaluated once and cached packed.
    """

    __slots__ = ("_values_provider", "thresholds", "codes", "_values", "_valid")

    def __init__(self, values_provider, thresholds=None, codes=None):
        self._values_provider = values_provider
        #: Grid thresholds + per-row bin codes (None without a SplitIndex).
        self.thresholds = thresholds
        self.codes = codes
        self._values: np.ndarray | None = None
        self._valid: np.ndarray | None = None

    @property
    def values(self) -> np.ndarray:
        if self._values is None:
            self._values = self._values_provider()
        return self._values

    @property
    def valid(self) -> np.ndarray:
        """Non-NaN rows (a NaN never satisfies a numeric clause)."""
        if self._valid is None:
            self._valid = ~np.isnan(self.values)
        return self._valid

    def _grid_position(self, bound: float) -> int | None:
        """The index of ``bound`` on the threshold grid, if exactly there."""
        if self.codes is None or self.thresholds is None or not len(self.thresholds):
            return None
        position = int(np.searchsorted(self.thresholds, bound, side="left"))
        if position < len(self.thresholds) and self.thresholds[position] == bound:
            return position
        return None

    def clause_mask(self, clause: NumericClause) -> np.ndarray:
        """The clause's boolean mask, matching ``NumericClause.mask``."""
        lo, hi = clause.lo, clause.hi
        if (lo is not None and np.isnan(lo)) or (hi is not None and np.isnan(hi)):
            # A NaN bound satisfies no comparison in the reference path.
            n = len(self.codes) if self.codes is not None else len(self.values)
            return np.zeros(n, dtype=bool)
        result: np.ndarray | None = None
        with np.errstate(invalid="ignore"):
            if lo is not None:
                position = None if clause.lo_inclusive else self._grid_position(lo)
                if position is not None:
                    # value > thresholds[k]  ⇔  code > k; NaN codes sit
                    # one past the last bin and must be masked out.
                    result = (self.codes > position) & self.valid
                elif clause.lo_inclusive:
                    result = self.values >= lo
                else:
                    result = self.values > lo
            if hi is not None:
                position = self._grid_position(hi) if clause.hi_inclusive else None
                if position is not None:
                    # value <= thresholds[k]  ⇔  code <= k (NaN excluded
                    # automatically: its code is past every bin).
                    hi_mask = self.codes <= position
                elif clause.hi_inclusive:
                    hi_mask = self.values <= hi
                else:
                    hi_mask = self.values < hi
                result = hi_mask if result is None else (result & hi_mask)
        assert result is not None  # a clause bounds at least one side
        return result


class _CategoricalCodes:
    """Value codes of one object (categorical) column over a fixed table.

    NULL (``None``) and unseen values share the one-past-the-end code,
    which no clause value can select — matching the reference's
    ``v is not None and v in values`` semantics.
    """

    __slots__ = ("code_by_value", "codes", "n_distinct")

    def __init__(self, values: np.ndarray):
        code_by_value: dict = {}
        for value in values:
            if value is not None and value not in code_by_value:
                code_by_value[value] = len(code_by_value)
        self.code_by_value = code_by_value
        self.n_distinct = len(code_by_value)
        null_code = self.n_distinct
        self.codes = np.fromiter(
            (
                null_code if value is None else code_by_value.get(value, null_code)
                for value in values
            ),
            dtype=np.int64,
            count=len(values),
        )

    def clause_mask(self, clause: CategoricalClause) -> np.ndarray:
        """The clause's boolean mask, matching ``CategoricalClause.mask``."""
        lookup = np.zeros(self.n_distinct + 1, dtype=bool)
        for value in clause.values:
            code = self.code_by_value.get(value)
            if code is not None:
                lookup[code] = True
        mask = lookup[self.codes]
        return ~mask if clause.negated else mask


class _TableMasks:
    """All cached mask artifacts of one table: column codes, packed
    clause masks, packed predicate conjunctions."""

    __slots__ = (
        "table",
        "n_rows",
        "numeric_values",
        "column_index",
        "_numeric",
        "_categorical",
        "_clauses",
        "_predicates",
        "_true_packed",
    )

    def __init__(self, table: Table, numeric_values=None, column_index=None):
        self.table = table
        self.n_rows = len(table)
        #: Optional provider of pre-cast float64 columns
        #: (e.g. ``PreprocessResult.numeric_values`` for F).
        self.numeric_values = numeric_values
        #: Optional provider of a row-aligned
        #: :class:`~repro.learn.split_index.NumericColumnIndex` per
        #: column (``None`` when the column has no shared grid).
        self.column_index = column_index
        self._numeric: dict[str, _NumericColumn] = {}
        self._categorical: dict[str, _CategoricalCodes] = {}
        self._clauses: dict[Clause, np.ndarray] = {}
        self._predicates: dict[Predicate, tuple[np.ndarray, int]] = {}
        self._true_packed: np.ndarray | None = None

    # -- column code tables -------------------------------------------

    def _numeric_column(self, column: str) -> _NumericColumn:
        cached = self._numeric.get(column)
        if cached is None:
            if self.numeric_values is not None:
                values_provider = lambda: self.numeric_values(column)  # noqa: E731
            else:
                values_provider = lambda: np.asarray(  # noqa: E731
                    self.table.column(column), dtype=np.float64
                )
            index = self.column_index(column) if self.column_index else None
            thresholds = index.thresholds if index is not None else None
            codes = index.codes if index is not None else None
            cached = _NumericColumn(values_provider, thresholds, codes)
            self._numeric[column] = cached
        return cached

    def _categorical_codes(self, column: str) -> _CategoricalCodes:
        codes = self._categorical.get(column)
        if codes is None:
            codes = _CategoricalCodes(self.table.column(column))
            self._categorical[column] = codes
        return codes

    # -- clause and predicate masks -----------------------------------

    def clause_packed(self, clause: Clause) -> np.ndarray:
        """The packed mask of one clause, computed at most once."""
        packed = self._clauses.get(clause)
        if packed is None:
            packed = pack_mask(self._evaluate_clause(clause))
            self._clauses[clause] = packed
        return packed

    def _evaluate_clause(self, clause: Clause) -> np.ndarray:
        column_type = self.table.schema.type_of(clause.column)
        if isinstance(clause, NumericClause) and column_type.is_numeric:
            return self._numeric_column(clause.column).clause_mask(clause)
        if (
            isinstance(clause, CategoricalClause)
            and self.table.column(clause.column).dtype == object
        ):
            return self._categorical_codes(clause.column).clause_mask(clause)
        # Off the fast paths (e.g. a categorical clause over a numeric
        # column): the reference evaluator, still cached per clause.
        return clause.mask(self.table)

    def predicate_packed(self, predicate: Predicate) -> tuple[np.ndarray, int]:
        """``(packed bits, match count)`` of a conjunction, cached."""
        cached = self._predicates.get(predicate)
        if cached is not None:
            return cached
        if predicate.is_true:
            if self._true_packed is None:
                self._true_packed = pack_mask(np.ones(self.n_rows, dtype=bool))
            packed = self._true_packed
        else:
            packed = None
            for clause in predicate.clauses:
                clause_bits = self.clause_packed(clause)
                packed = (
                    clause_bits.copy() if packed is None else (packed & clause_bits)
                )
        count = int(popcount(packed)[0])
        entry = (packed, count)
        self._predicates[predicate] = entry
        return entry


class MaskSet:
    """The evaluated masks of an ordered predicate list over one table.

    ``packed`` is a ``(R, ceil(n/8))`` uint8 matrix — predicate ``r``'s
    boolean mask bit-packed, padding bits zero. Everything downstream
    (match counts, Δε remove-masks, confusion counts, dedupe digests)
    derives from this matrix without re-touching the table.
    """

    __slots__ = ("n_rows", "packed", "counts", "_digests")

    def __init__(self, n_rows: int, packed: np.ndarray, counts: np.ndarray):
        self.n_rows = n_rows
        self.packed = packed
        #: Match count (popcount) per predicate.
        self.counts = counts
        self._digests: list[bytes] | None = None

    def __len__(self) -> int:
        return self.packed.shape[0]

    def bools(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Unpacked boolean matrix (optionally only the given rows)."""
        packed = self.packed if rows is None else self.packed[rows]
        return unpack_masks(packed, self.n_rows)

    def subset(self, rows: np.ndarray) -> "MaskSet":
        """A view-like MaskSet holding only the given rows (in order)."""
        rows = np.asarray(rows, dtype=np.int64)
        picked = MaskSet(self.n_rows, self.packed[rows], self.counts[rows])
        if self._digests is not None:
            picked._digests = [self._digests[row] for row in rows]
        return picked

    def digests(self) -> list[bytes]:
        """A short ``blake2b`` digest of each packed row.

        Two predicates over the same table share a digest iff they match
        the same row set, so ``(digest, column set)`` is the ranker's
        dedupe key — no full-mask buffers held as dict keys.
        """
        if self._digests is None:
            self._digests = [
                hashlib.blake2b(row.tobytes(), digest_size=16).digest()
                for row in self.packed
            ]
        return self._digests

    def intersection_counts(self, packed_row: np.ndarray) -> np.ndarray:
        """``out[r]`` = ``popcount(masks[r] & packed_row)`` for every row.

        With ``packed_row`` holding a candidate's labels this yields all
        true-positive counts of a confusion batch in one matrix op.
        """
        if self.packed.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        return popcount(self.packed & packed_row[None, :])


class ClauseMaskCache:
    """The batched mask engine: per-table clause/predicate mask caches.

    Tables are keyed by object identity (the engine holds a strong
    reference, so ids cannot be recycled); in the pipeline the two
    registered tables are ``pre.F`` and ``pre.segment_table``, both
    stable ``cached_property`` objects of one ``PreprocessResult``.
    """

    def __init__(self) -> None:
        self._tables: dict[int, _TableMasks] = {}

    def register(self, table: Table, numeric_values=None, column_index=None) -> None:
        """Pre-register a table, optionally with a float64-cast provider
        and a per-column :class:`NumericColumnIndex` provider (both
        lazily invoked)."""
        if id(table) not in self._tables:
            self._tables[id(table)] = _TableMasks(table, numeric_values, column_index)

    def _cache_for(self, table: Table) -> _TableMasks:
        cache = self._tables.get(id(table))
        if cache is None:
            cache = _TableMasks(table)
            self._tables[id(table)] = cache
        return cache

    def predicate_mask(self, table: Table, predicate: Predicate) -> np.ndarray:
        """One predicate's boolean mask (engine-evaluated, cached)."""
        cache = self._cache_for(table)
        packed, __ = cache.predicate_packed(predicate)
        return unpack_masks(packed, cache.n_rows)[0]

    def mask_set(self, table: Table, predicates) -> MaskSet:
        """Evaluate an ordered predicate list against ``table``.

        Distinct clauses are computed once (cached across calls — a
        later Merger batch reuses the Ranker's clause masks), and the
        per-predicate conjunctions are cached too, so re-ranking the
        same rules (e.g. a repeated debug of a cached selection) costs
        only dictionary lookups.
        """
        cache = self._cache_for(table)
        predicates = list(predicates)
        n_bytes = (cache.n_rows + 7) // 8
        packed = np.empty((len(predicates), n_bytes), dtype=np.uint8)
        counts = np.empty(len(predicates), dtype=np.int64)
        for row, predicate in enumerate(predicates):
            bits, count = cache.predicate_packed(predicate)
            packed[row] = bits
            counts[row] = count
        return MaskSet(cache.n_rows, packed, counts)

    def pack_labels(self, labels: np.ndarray) -> np.ndarray:
        """Bit-pack an externally computed boolean vector (e.g. candidate
        labels) so it can enter :meth:`MaskSet.intersection_counts`."""
        return pack_mask(labels)

    def stats(self) -> dict:
        """Cache-size counters (for observability and tests)."""
        return {
            "tables": len(self._tables),
            "clauses": sum(len(c._clauses) for c in self._tables.values()),
            "predicates": sum(len(c._predicates) for c in self._tables.values()),
        }
