"""The Predicate Enumerator: decision trees over each candidate set.

Paper §2.2.2: *"The Predicate Enumerator then builds a decision tree on
each candidate dataset D^c_i by labeling D^c_i as the positive class and
F − D^c_i as negative. We currently use m standard splitting and pruning
strategies (e.g., gini, gain ratio) to construct several trees from each
dataset."*

Each positive root-to-leaf path of each tree becomes a predicate; the
subgroup rule that generated a candidate (when present) is included
directly. Sample weights can optionally be biased by influence so that
high-influence tuples dominate the split choices.

All K candidate × S strategy fits consume one shared
:class:`~repro.learn.split_index.SplitIndex` (memoized on the
:class:`~repro.core.preprocessor.PreprocessResult`), so per-column
sorted orderings, candidate thresholds, and bin codes are derived once
per debug cycle — and, in the service, once per *cached preprocessing*,
shared across sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..db.table import Table
from ..errors import PipelineError
from ..learn.rules import Rule, dedupe_rules
from ..learn.split_index import SplitIndex
from ..learn.tree import ALGORITHMS, DecisionTree
from .enumerator import CandidateSet
from .preprocessor import PreprocessResult


@dataclass(frozen=True)
class TreeStrategy:
    """One splitting/pruning configuration (one of the paper's *m* strategies)."""

    criterion: str = "gini"
    max_depth: int = 5
    prune: str = "none"  # "none" | "rep" | "ccp"
    ccp_alpha: float = 0.0
    min_samples_leaf: int = 2

    def describe(self) -> str:
        """Short label, e.g. ``gini/rep``."""
        suffix = f"/{self.prune}" if self.prune != "none" else ""
        return f"{self.criterion}{suffix}"


#: The default m = 5 strategies: three criteria, two pruning modes.
DEFAULT_STRATEGIES: tuple[TreeStrategy, ...] = (
    TreeStrategy(criterion="gini"),
    TreeStrategy(criterion="entropy"),
    TreeStrategy(criterion="gain_ratio"),
    TreeStrategy(criterion="gini", prune="rep"),
    TreeStrategy(criterion="gini", prune="ccp", ccp_alpha=0.01),
)


@dataclass(frozen=True)
class CandidateRule:
    """A rule together with the candidate set it describes."""

    candidate_index: int
    rule: Rule


class PredicateEnumerator:
    """Builds trees per (candidate × strategy) and extracts predicates."""

    def __init__(
        self,
        strategies: Sequence[TreeStrategy] = DEFAULT_STRATEGIES,
        feature_columns: Sequence[str] | None = None,
        min_precision: float = 0.5,
        weight_by_influence: bool = False,
        validation_fraction: float = 0.3,
        tree_algorithm: str = "hist",
        max_thresholds: int = 32,
        max_categories: int = 32,
        seed: int = 0,
    ):
        if not strategies:
            raise PipelineError("at least one tree strategy is required")
        if not 0.0 < validation_fraction < 1.0:
            raise PipelineError("validation_fraction must be in (0, 1)")
        if tree_algorithm not in ALGORITHMS:
            raise PipelineError(
                f"tree_algorithm must be one of {ALGORITHMS}, got {tree_algorithm!r}"
            )
        self.strategies = tuple(strategies)
        self.feature_columns = tuple(feature_columns) if feature_columns else None
        self.min_precision = min_precision
        self.weight_by_influence = weight_by_influence
        self.validation_fraction = validation_fraction
        self.tree_algorithm = tree_algorithm
        self.max_thresholds = max_thresholds
        self.max_categories = max_categories
        self.seed = seed

    def run(
        self, pre: PreprocessResult, candidates: Sequence[CandidateSet]
    ) -> list[CandidateRule]:
        """Enumerate predicates for every candidate set."""
        F = pre.F
        features = self._features(F)
        weights = self._weights(pre)
        # One shared index serves every (candidate × strategy) fit; the
        # memo on `pre` also shares it across service sessions.
        split_index = pre.split_index(
            features=features, max_thresholds=self.max_thresholds
        )
        out: list[CandidateRule] = []
        for index, candidate in enumerate(candidates):
            labels = candidate.label_mask(F)
            if not labels.any() or labels.all():
                continue
            rules: list[Rule] = list(candidate.rules)
            for strategy in self.strategies:
                rules.extend(
                    self._tree_rules(
                        F, labels, weights, features, strategy, split_index
                    )
                )
            for rule in dedupe_rules(rules):
                out.append(CandidateRule(candidate_index=index, rule=rule))
        return out

    # ------------------------------------------------------------------

    def _tree_rules(
        self,
        F: Table,
        labels: np.ndarray,
        weights: np.ndarray | None,
        features: list[str],
        strategy: TreeStrategy,
        split_index: SplitIndex,
    ) -> list[Rule]:
        tree = DecisionTree(
            criterion=strategy.criterion,
            max_depth=strategy.max_depth,
            min_samples_leaf=strategy.min_samples_leaf,
            max_thresholds=self.max_thresholds,
            max_categories=self.max_categories,
            algorithm=self.tree_algorithm,
        )
        if strategy.prune == "rep":
            train_idx, val_idx = self._split_indices(len(F), labels)
            if len(val_idx) == 0 or not labels[train_idx].any():
                tree.fit(
                    F,
                    labels,
                    sample_weight=weights,
                    features=features,
                    split_index=split_index,
                )
            else:
                train_w = weights[train_idx] if weights is not None else None
                tree.fit(
                    F.take(train_idx),
                    labels[train_idx],
                    sample_weight=train_w,
                    features=features,
                    split_index=split_index.take(train_idx),
                )
                tree.prune_reduced_error(F.take(val_idx), labels[val_idx])
        else:
            tree.fit(
                F,
                labels,
                sample_weight=weights,
                features=features,
                split_index=split_index,
            )
            if strategy.prune == "ccp":
                tree.cost_complexity_prune(strategy.ccp_alpha)
        rules = tree.positive_rules(min_precision=self.min_precision)
        return [
            Rule(
                predicate=rule.predicate,
                n_covered=rule.n_covered,
                n_pos_covered=rule.n_pos_covered,
                quality=rule.quality,
                source=f"tree:{strategy.describe()}",
                extra=rule.extra,
            )
            for rule in rules
        ]

    def _split_indices(
        self, n: int, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stratified train/validation split for reduced-error pruning."""
        rng = np.random.default_rng(self.seed)
        indices = np.arange(n, dtype=np.int64)
        train_parts = []
        val_parts = []
        for cls in (True, False):
            cls_indices = indices[labels == cls]
            rng.shuffle(cls_indices)
            n_val = int(round(len(cls_indices) * self.validation_fraction))
            val_parts.append(cls_indices[:n_val])
            train_parts.append(cls_indices[n_val:])
        train = np.sort(np.concatenate(train_parts))
        val = np.sort(np.concatenate(val_parts))
        if len(train) == 0:
            return indices, np.empty(0, dtype=np.int64)
        return train, val

    def _features(self, F: Table) -> list[str]:
        if self.feature_columns:
            return [name for name in self.feature_columns if name in F.schema]
        return list(F.schema.names)

    def _weights(self, pre: PreprocessResult) -> np.ndarray | None:
        if not self.weight_by_influence:
            return None
        scores = pre.influence.score_of(np.asarray(pre.F.tids))
        positive = np.maximum(scores, 0.0)
        peak = positive.max()
        if peak <= 0:
            return None
        return 1.0 + positive / peak
