"""Predicate merging: combine fragmented descriptions of one anomaly.

Decision trees partition greedily, so a single anomalous region often
comes back as several adjacent rules (``10 < x <= 20 and a = 'v'`` plus
``20 < x <= 31 and a = 'v'``). The follow-up system to DBWipes (Scorpion)
merges such neighbors; this module implements the same idea as a ranker
post-pass:

* two predicates over the *same column set* are merged into their
  **hull**: per-column interval spans are unioned ([min lo, max hi]) and
  categorical value sets are unioned;
* the hull over-approximates the logical OR, so it is re-scored from
  scratch (Δε, accuracy, complexity, parsimony) and kept **only when it
  outscores both parents** — a bad merge never survives.

The pass runs greedily over the top of the ranked list until no merge
improves.

Like the Ranker, two implementations produce byte-identical output:

* ``algorithm="batch"`` (default) — candidate pairs are grouped by
  ``frozenset(columns())`` up front (cross-column pairs can never hull),
  every round's un-scored hulls are evaluated as **one** batched
  mask-and-Δε pass through the shared
  :class:`~repro.core.maskset.ClauseMaskCache`, and scored pairs are
  cached across rounds — after an accepted merge only pairs involving
  the newly inserted hull (or entries newly promoted into the head
  window) are scored, instead of rescanning all O(n²) pairs.
* ``algorithm="per_rule"`` — the original rescan-everything greedy loop,
  kept as the parity reference.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..db.predicate import CategoricalClause, NumericClause, Predicate
from ..errors import PipelineError
from ..learn.metrics import confusion
from .enumerator import CandidateSet
from .influence import DeltaEpsilonScorer
from .preprocessor import PreprocessResult
from .ranker import SCORE_ALGORITHMS, confusion_scores
from .report import RankedPredicate


def hull(first: Predicate, second: Predicate) -> Predicate | None:
    """The per-column hull of two conjunctions, or ``None`` if their
    column sets differ or any column pair is incompatible."""
    if first.columns() != second.columns():
        return None
    by_column_first = {clause.column: clause for clause in first.clauses}
    by_column_second = {clause.column: clause for clause in second.clauses}
    if len(by_column_first) != len(first.clauses):
        # Same column twice (shouldn't happen after simplify); bail out.
        return None
    merged = []
    for column, clause_a in by_column_first.items():
        clause_b = by_column_second[column]
        if isinstance(clause_a, NumericClause) and isinstance(
            clause_b, NumericClause
        ):
            lo_pair = _lower_hull(clause_a, clause_b)
            hi_pair = _upper_hull(clause_a, clause_b)
            if lo_pair[0] is None and hi_pair[0] is None:
                # Opposite unbounded sides: the hull is the whole domain,
                # i.e. no constraint at all — not a useful merge.
                return None
            merged.append(
                NumericClause(
                    column,
                    lo_pair[0],
                    hi_pair[0],
                    lo_inclusive=lo_pair[1],
                    hi_inclusive=hi_pair[1],
                )
            )
        elif isinstance(clause_a, CategoricalClause) and isinstance(
            clause_b, CategoricalClause
        ):
            if clause_a.negated or clause_b.negated:
                return None
            merged.append(
                CategoricalClause(column, clause_a.values | clause_b.values)
            )
        else:
            return None
    return Predicate(merged)


def _lower_hull(a: NumericClause, b: NumericClause) -> tuple[float | None, bool]:
    if a.lo is None or b.lo is None:
        return None, True
    if a.lo < b.lo:
        return a.lo, a.lo_inclusive
    if b.lo < a.lo:
        return b.lo, b.lo_inclusive
    return a.lo, a.lo_inclusive or b.lo_inclusive


def _upper_hull(a: NumericClause, b: NumericClause) -> tuple[float | None, bool]:
    if a.hi is None or b.hi is None:
        return None, True
    if a.hi > b.hi:
        return a.hi, a.hi_inclusive
    if b.hi > a.hi:
        return b.hi, b.hi_inclusive
    return a.hi, a.hi_inclusive or b.hi_inclusive


class PredicateMerger:
    """Greedy hull-merging over the top of a ranked predicate list."""

    def __init__(self, weights, max_terms: int = 8, top_n: int = 12,
                 max_rounds: int = 4, algorithm: str = "batch",
                 scorer: DeltaEpsilonScorer | None = None):
        if top_n < 2:
            raise PipelineError("top_n must be >= 2")
        if algorithm not in SCORE_ALGORITHMS:
            raise PipelineError(
                f"algorithm must be one of {SCORE_ALGORITHMS}, got {algorithm!r}"
            )
        self.weights = weights
        self.max_terms = max_terms
        self.top_n = top_n
        self.max_rounds = max_rounds
        self.algorithm = algorithm
        #: Δε evaluation strategy, injected by the execution backend
        #: (same contract as the Ranker's: byte-identical by design).
        self.scorer = scorer if scorer is not None else DeltaEpsilonScorer()

    def run(
        self,
        pre: PreprocessResult,
        candidates: Sequence[CandidateSet],
        ranked: list[RankedPredicate],
        on_round: Callable[[list[RankedPredicate]], None] | None = None,
    ) -> list[RankedPredicate]:
        """Insert winning merges into ``ranked`` (returned re-sorted).

        ``on_round``, when given, is called after each *accepted* merge
        with a snapshot copy of the current ranked list — the streaming
        hook behind partial ``debug`` frames. It observes only; the
        merge computation (and therefore the final list) is byte-for-byte
        identical with or without it.
        """
        if self.algorithm == "per_rule":
            ranked = self._run_per_rule(pre, candidates, ranked, on_round)
        else:
            ranked = self._run_batch(pre, candidates, ranked, on_round)
        ranked.sort(key=lambda r: (-r.score, r.complexity, r.predicate.describe()))
        return ranked

    # ------------------------------------------------------------------
    # batched greedy pass (default)
    # ------------------------------------------------------------------

    def _run_batch(
        self,
        pre: PreprocessResult,
        candidates: Sequence[CandidateSet],
        ranked: list[RankedPredicate],
        on_round: Callable[[list[RankedPredicate]], None] | None = None,
    ) -> list[RankedPredicate]:
        ranked = list(ranked)
        candidate_by_origin = {c.origin: c for c in candidates}
        engine = pre.mask_engine()
        # Scored hulls persist across rounds keyed on the parent entries:
        # after an accepted merge, only pairs involving entries that are
        # new to the head window miss the cache and get scored.
        pair_scores: dict[tuple, RankedPredicate | None] = {}
        label_cache: dict[str, tuple[np.ndarray, int]] = {}
        for _ in range(self.max_rounds):
            head = sorted(ranked, key=lambda r: -r.score)[: self.top_n]
            # Candidate pairs grouped by column set up front: a hull only
            # exists within one frozenset(columns()) group, so cross-set
            # pairs are dropped before any hull/mask work. The i<j
            # enumeration order matches the reference tie-breaking.
            column_sets = [frozenset(r.predicate.columns()) for r in head]
            pairs = [
                (i, j)
                for i in range(len(head))
                for j in range(i + 1, len(head))
                if column_sets[i] == column_sets[j]
                and head[i].predicate != head[j].predicate
            ]
            to_score = []
            for i, j in pairs:
                key = (head[i], head[j])
                if key in pair_scores:
                    continue
                merged = hull(head[i].predicate, head[j].predicate)
                if merged is None:
                    pair_scores[key] = None
                else:
                    to_score.append((key, merged, head[i], head[j]))
            if to_score:
                self._score_pairs_batch(
                    pre, engine, candidate_by_origin, label_cache,
                    to_score, pair_scores,
                )
            best_merge: RankedPredicate | None = None
            merged_from: tuple[int, int] | None = None
            for i, j in pairs:
                entry = pair_scores[(head[i], head[j])]
                if entry is None:
                    continue
                if entry.score <= max(head[i].score, head[j].score):
                    continue
                if best_merge is None or entry.score > best_merge.score:
                    best_merge = entry
                    merged_from = (i, j)
            if best_merge is None or merged_from is None:
                break
            drop = {head[merged_from[0]].predicate, head[merged_from[1]].predicate}
            ranked = [r for r in ranked if r.predicate not in drop]
            ranked.append(best_merge)
            if on_round is not None:
                on_round(list(ranked))
        return ranked

    def _score_pairs_batch(
        self,
        pre: PreprocessResult,
        engine,
        candidate_by_origin: dict[str, CandidateSet],
        label_cache: dict[str, tuple[np.ndarray, int]],
        to_score: list[tuple],
        pair_scores: dict[tuple, RankedPredicate | None],
    ) -> None:
        """Score a round's un-cached hulls as one mask-and-Δε batch."""
        predicates = [item[1] for item in to_score]
        f_masks = engine.mask_set(pre.F, predicates)
        live = [pos for pos in range(len(to_score)) if f_masks.counts[pos] > 0]
        for pos in range(len(to_score)):
            if f_masks.counts[pos] == 0:
                pair_scores[to_score[pos][0]] = None
        epsilons_after = self.scorer.epsilons_for_mask_set(
            pre, f_masks.subset(live)
        )
        epsilon = pre.epsilon
        tp_by_origin: dict[str, np.ndarray] = {}
        for batch_pos, pos in enumerate(live):
            key, predicate, parent_a, parent_b = to_score[pos]
            epsilon_after = float(epsilons_after[batch_pos])
            relative = (epsilon - epsilon_after) / epsilon if epsilon > 0 else 0.0
            if relative <= 0:
                pair_scores[key] = None
                continue
            n_matched = int(f_masks.counts[pos])
            candidate = candidate_by_origin.get(parent_a.candidate_origin)
            if candidate is not None:
                origin = parent_a.candidate_origin
                if origin not in label_cache:
                    labels = candidate.label_mask(pre.F)
                    label_cache[origin] = (
                        engine.pack_labels(labels),
                        int(np.count_nonzero(labels)),
                    )
                if origin not in tp_by_origin:
                    tp_by_origin[origin] = f_masks.intersection_counts(
                        label_cache[origin][0]
                    )
                tp = int(tp_by_origin[origin][pos])
                f1, precision, recall = confusion_scores(
                    tp, n_matched, label_cache[origin][1]
                )
            else:
                f1 = max(parent_a.accuracy, parent_b.accuracy)
                precision = max(parent_a.precision, parent_b.precision)
                recall = max(parent_a.recall, parent_b.recall)
            penalty = min(predicate.complexity / self.max_terms, 1.0)
            matched_fraction = n_matched / max(len(pre.F), 1)
            score = (
                self.weights.error * relative
                + self.weights.accuracy * f1
                - self.weights.complexity * penalty
                - self.weights.parsimony * matched_fraction
            )
            pair_scores[key] = RankedPredicate(
                predicate=predicate,
                score=score,
                epsilon_before=epsilon,
                epsilon_after=epsilon_after,
                accuracy=f1,
                precision=precision,
                recall=recall,
                complexity=predicate.complexity,
                n_matched=n_matched,
                candidate_origin=parent_a.candidate_origin,
                source=f"merge({parent_a.source}+{parent_b.source})",
            )

    # ------------------------------------------------------------------
    # per-rule reference path
    # ------------------------------------------------------------------

    def _run_per_rule(
        self,
        pre: PreprocessResult,
        candidates: Sequence[CandidateSet],
        ranked: list[RankedPredicate],
        on_round: Callable[[list[RankedPredicate]], None] | None = None,
    ) -> list[RankedPredicate]:
        """The original rescan-all-pairs greedy loop (parity reference)."""
        ranked = list(ranked)
        candidate_by_origin = {c.origin: c for c in candidates}
        for _ in range(self.max_rounds):
            best_merge: RankedPredicate | None = None
            merged_from: tuple[int, int] | None = None
            head = sorted(ranked, key=lambda r: -r.score)[: self.top_n]
            for i in range(len(head)):
                for j in range(i + 1, len(head)):
                    if head[i].predicate == head[j].predicate:
                        continue
                    merged = hull(head[i].predicate, head[j].predicate)
                    if merged is None:
                        continue
                    entry = self._score(
                        pre, candidate_by_origin.get(head[i].candidate_origin),
                        merged, head[i], head[j],
                    )
                    if entry is None:
                        continue
                    if entry.score <= max(head[i].score, head[j].score):
                        continue
                    if best_merge is None or entry.score > best_merge.score:
                        best_merge = entry
                        merged_from = (i, j)
            if best_merge is None or merged_from is None:
                break
            drop = {head[merged_from[0]].predicate, head[merged_from[1]].predicate}
            ranked = [r for r in ranked if r.predicate not in drop]
            ranked.append(best_merge)
            if on_round is not None:
                on_round(list(ranked))
        return ranked

    def _score(
        self,
        pre: PreprocessResult,
        candidate: CandidateSet | None,
        predicate: Predicate,
        parent_a: RankedPredicate,
        parent_b: RankedPredicate,
    ) -> RankedPredicate | None:
        mask_f = predicate.mask(pre.F)
        n_matched = int(mask_f.sum())
        if n_matched == 0:
            return None
        epsilon = pre.epsilon
        epsilon_after = self.scorer.epsilon_for_predicate(pre, predicate)
        relative = (epsilon - epsilon_after) / epsilon if epsilon > 0 else 0.0
        if relative <= 0:
            return None
        if candidate is not None:
            stats = confusion(candidate.label_mask(pre.F), mask_f)
            f1 = stats.f1
            precision = stats.precision
            recall = stats.recall
        else:
            f1 = max(parent_a.accuracy, parent_b.accuracy)
            precision = max(parent_a.precision, parent_b.precision)
            recall = max(parent_a.recall, parent_b.recall)
        penalty = min(predicate.complexity / self.max_terms, 1.0)
        matched_fraction = n_matched / max(len(pre.F), 1)
        score = (
            self.weights.error * relative
            + self.weights.accuracy * f1
            - self.weights.complexity * penalty
            - self.weights.parsimony * matched_fraction
        )
        return RankedPredicate(
            predicate=predicate,
            score=score,
            epsilon_before=epsilon,
            epsilon_after=epsilon_after,
            accuracy=f1,
            precision=precision,
            recall=recall,
            complexity=predicate.complexity,
            n_matched=n_matched,
            candidate_origin=parent_a.candidate_origin,
            source=f"merge({parent_a.source}+{parent_b.source})",
        )
