"""Durable preprocess artifacts: ``PreprocessResult`` on disk.

Preprocessing is the expensive, shareable prefix of every ``debug()``
(provenance gather, leave-one-out influence, per-group value slices —
all arrays). This module serializes a :class:`PreprocessResult` into a
single ``.npz`` per request identity so a *restarted* server can answer
its first ``debug()`` from disk instead of recomputing, byte-identical
to the pre-restart answer.

Identity, not location: the artifact key (:func:`artifact_key`) is a
digest over the base table's *content digest* plus the query text, the
selection S, the metric spec, and the debugged aggregate. Nothing in the
key depends on process ids, object identity, or file paths, so any
process serving the same logical data — the threaded server, the async
gateway, each of ``--workers N`` forked workers — resolves the same
request to the same artifact file.

Fork/concurrency safety (the PR's single-writer rule): writers stage
into a per-pid hidden temp file in the artifact directory and publish
with ``os.replace`` — atomic on POSIX, so readers never see a partial
file; a writer that finds the artifact already published skips its own
write entirely, so N forked workers racing on a cold cache produce one
file and zero clobbers.

Only metrics expressible as a :func:`~repro.core.error_metrics.metric_spec`
(the built-in error-form metrics) are persisted; custom
:class:`~repro.core.error_metrics.ErrorMetric` subclasses simply stay
memory-only — :func:`artifact_key` returns ``None`` and the cache skips
the disk tier for them.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..db.aggregates import get_aggregate
from ..db.result import ResultSet
from ..db.schema import Column, Schema
from ..db.table import Table
from ..db.types import ColumnType, dict_decode, dict_encode
from .error_metrics import ErrorMetric, metric_from_spec, metric_spec
from .influence import GroupInfluence, InfluenceResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .preprocessor import PreprocessResult

#: Serialization format version; part of every artifact key, so a format
#: change silently invalidates old artifacts instead of misreading them.
ARTIFACT_FORMAT = 1


def artifact_key(
    result: ResultSet,
    selected_rows: Sequence[int],
    metric: ErrorMetric,
    agg_name: str | None,
) -> str | None:
    """Cross-process identity of a preprocess request, or ``None``.

    The durable analogue of ``preprocess_key``: where the in-memory key
    anchors on the table *object* (identity within one process), this
    one anchors on the table's content digest so it survives restarts
    and matches across workers. ``None`` means the request cannot be
    persisted (custom metric) and should bypass the disk tier.
    """
    spec = metric_spec(metric)
    if spec is None:
        return None
    h = hashlib.blake2b(digest_size=16)
    for part in (
        f"v{ARTIFACT_FORMAT}",
        result.source.content_digest(),
        result.statement.to_sql(),
        json.dumps([int(r) for r in selected_rows]),
        json.dumps(spec, sort_keys=True),
        str(agg_name),
    ):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


class ArtifactStore:
    """A directory of ``<key>.npz`` preprocess artifacts."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self._saves = 0
        self._loads = 0
        self._load_failures = 0

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def has(self, key: str) -> bool:
        return self.path(key).exists()

    def save(self, key: str, pre: "PreprocessResult") -> bool:
        """Persist an artifact; returns whether a new file was published.

        First writer wins: if the artifact already exists (another
        worker got there first — keys are content-addressed, so the
        bytes are equivalent) this is a no-op.
        """
        target = self.path(key)
        if target.exists():
            return False
        self.directory.mkdir(parents=True, exist_ok=True)
        staging = self.directory / f".{key}.tmp-{os.getpid()}.npz"
        arrays = _serialize(pre)
        try:
            with staging.open("wb") as handle:
                np.savez(handle, **arrays)
            os.replace(staging, target)
        finally:
            if staging.exists():  # pragma: no cover - error path
                staging.unlink()
        self._saves += 1
        return True

    def load(self, key: str) -> "PreprocessResult | None":
        """Load an artifact by key; ``None`` on miss or unreadable file.

        A corrupt/partial/foreign file is treated as a miss (the caller
        recomputes and may rewrite) rather than an error — durability is
        an optimization, never a correctness dependency.
        """
        target = self.path(key)
        if not target.exists():
            return None
        try:
            with np.load(target, allow_pickle=False) as bundle:
                pre = _deserialize(bundle)
        except Exception:
            self._load_failures += 1
            return None
        self._loads += 1
        return pre

    def keys(self) -> list[str]:
        if not self.directory.exists():
            return []
        return sorted(p.stem for p in self.directory.glob("*.npz"))

    def stats(self) -> dict:
        return {
            "dir": str(self.directory),
            "entries": len(self.keys()),
            "saves": self._saves,
            "loads": self._loads,
            "load_failures": self._load_failures,
        }


def _serialize(pre: "PreprocessResult") -> dict[str, np.ndarray]:
    F = pre.F
    schema = F.schema
    str_values: dict[str, list[str]] = {}
    arrays: dict[str, np.ndarray] = {}
    for i, column in enumerate(schema):
        array = F.column(column.name)
        if column.ctype is ColumnType.STR:
            codes, values = dict_encode(array)
            str_values[column.name] = values
            array = codes
        arrays[f"fcol_{i}"] = np.ascontiguousarray(array)
    arrays["f_tids"] = np.ascontiguousarray(F.tids)
    arrays["inf_tids"] = np.asarray(pre.influence.tids, dtype=np.int64)
    arrays["inf_scores"] = np.asarray(pre.influence.scores, dtype=np.float64)
    for i, (values, tids) in enumerate(zip(pre.group_values, pre.group_tids)):
        arrays[f"gv_{i}"] = np.asarray(values, dtype=np.float64)
        arrays[f"gt_{i}"] = np.asarray(tids, dtype=np.int64)
    for i, group in enumerate(pre.influence.groups):
        arrays[f"gloo_{i}"] = np.asarray(group.loo_values, dtype=np.float64)
        arrays[f"ginf_{i}"] = np.asarray(group.influence, dtype=np.float64)
    meta = {
        "format": ARTIFACT_FORMAT,
        "f_name": F.name,
        "f_schema": [[c.name, c.ctype.value] for c in schema],
        "f_str": str_values,
        "selected_rows": [int(r) for r in pre.selected_rows],
        "agg_name": pre.agg_name,
        "aggregate": pre.aggregate.name,
        "metric": metric_spec(pre.metric),
        "epsilon": float(pre.influence.epsilon),
        "n_groups": len(pre.group_values),
        "groups": [
            {"row": int(g.row), "group_value": float(g.group_value)}
            for g in pre.influence.groups
        ],
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    return arrays


def _deserialize(bundle) -> "PreprocessResult":
    from .preprocessor import PreprocessResult

    meta = json.loads(bytes(bundle["meta"]).decode("utf-8"))
    if meta.get("format") != ARTIFACT_FORMAT:
        raise ValueError(f"unsupported artifact format {meta.get('format')!r}")
    schema = Schema(
        [Column(name, ColumnType(value)) for name, value in meta["f_schema"]]
    )
    columns: dict[str, np.ndarray] = {}
    for i, column in enumerate(schema):
        array = bundle[f"fcol_{i}"]
        if column.ctype is ColumnType.STR:
            array = dict_decode(array, meta["f_str"][column.name])
        columns[column.name] = array
    F = Table(schema, columns, tids=bundle["f_tids"], name=meta["f_name"])
    n_groups = int(meta["n_groups"])
    group_values = tuple(bundle[f"gv_{i}"] for i in range(n_groups))
    group_tids = tuple(bundle[f"gt_{i}"] for i in range(n_groups))
    groups = tuple(
        GroupInfluence(
            row=int(spec["row"]),
            tids=group_tids[i],
            values=group_values[i],
            loo_values=bundle[f"gloo_{i}"],
            influence=bundle[f"ginf_{i}"],
            group_value=float(spec["group_value"]),
        )
        for i, spec in enumerate(meta["groups"])
    )
    influence = InfluenceResult(
        tids=bundle["inf_tids"],
        scores=bundle["inf_scores"],
        epsilon=float(meta["epsilon"]),
        groups=groups,
    )
    return PreprocessResult(
        F=F,
        influence=influence,
        selected_rows=tuple(meta["selected_rows"]),
        metric=metric_from_spec(meta["metric"]),
        agg_name=meta["agg_name"],
        aggregate=get_aggregate(meta["aggregate"]),
        group_values=group_values,
        group_tids=group_tids,
    )
