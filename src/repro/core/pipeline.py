"""The ranked provenance pipeline (the bottom half of Figure 1).

``RankedProvenance.debug`` wires the four backend components together::

    Query, S, D', ε ──> Preprocessor ──> Dataset Enumerator
                       ──> Predicate Enumerator ──> Predicate Ranker
                       ──> ranked predicates

Each stage's wall-clock time is recorded in the report for the scaling
benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..db.result import ResultSet
from ..learn.subgroup import SubgroupDiscovery
from .enumerator import DatasetEnumerator
from .error_metrics import ErrorMetric
from .predicates import DEFAULT_STRATEGIES, PredicateEnumerator, TreeStrategy
from .preprocessor import PreprocessCache, Preprocessor
from .ranker import PredicateRanker, RankerWeights
from .report import DebugReport


@dataclass
class PipelineConfig:
    """All tunables of the ranked provenance pipeline in one place."""

    #: Use closed-form leave-one-out influence (False = naive recompute).
    fast_influence: bool = True
    #: How to clean D': "kmeans", "nb", or "none".
    clean_strategy: str = "kmeans"
    #: Extend candidates with subgroup discovery.
    extend_with_subgroups: bool = True
    #: Influence quantile for the high-influence extension of D'.
    influence_quantile: float = 0.75
    #: Tree strategies for the predicate enumerator (the paper's m).
    strategies: tuple[TreeStrategy, ...] = DEFAULT_STRATEGIES
    #: Split-finding algorithm: "hist" (shared SplitIndex + histogram
    #: kernels) or "exact" (per-threshold reference; ablation only).
    tree_algorithm: str = "hist"
    #: Columns usable in predicates (None = every column of F).
    feature_columns: tuple[str, ...] | None = None
    #: Minimum positive-leaf precision for tree rules.
    min_precision: float = 0.5
    #: Bias tree sample weights by influence scores.
    weight_by_influence: bool = False
    #: Ranker weights and complexity cap.
    ranker_weights: RankerWeights = field(default_factory=RankerWeights)
    max_terms: int = 8
    #: Ranker/Merger scoring path: "batch" (bit-packed clause masks +
    #: one-pass grouped Δε over the whole rule set) or "per_rule" (the
    #: original loop; byte-identical output, kept for ablation).
    score_algorithm: str = "batch"
    #: Post-rank hull merging of fragmented predicates (Scorpion-style).
    merge_predicates: bool = False
    #: Cap on candidate datasets.
    max_candidates: int = 8
    #: Subgroup discovery configuration.
    subgroup: SubgroupDiscovery | None = None
    #: Random seed shared by all stochastic stages.
    seed: int = 0


class RankedProvenance:
    """The DBWipes backend: from a selection to ranked predicates.

    ``preprocess_cache`` (a
    :class:`~repro.core.preprocessor.PreprocessCache`) may be shared by
    many pipelines: the serving tier hands every session the same cache
    so concurrent debugging requests over the same selection reuse one
    :class:`~repro.core.preprocessor.PreprocessResult`.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        preprocess_cache: "PreprocessCache | None" = None,
    ):
        self.config = config or PipelineConfig()
        config_ = self.config
        self._preprocessor = Preprocessor(
            fast_influence=config_.fast_influence, cache=preprocess_cache
        )
        self._enumerator = DatasetEnumerator(
            clean_strategy=config_.clean_strategy,
            extend=config_.extend_with_subgroups,
            influence_quantile=config_.influence_quantile,
            subgroup=config_.subgroup,
            feature_columns=config_.feature_columns,
            max_candidates=config_.max_candidates,
            seed=config_.seed,
        )
        self._predicates = PredicateEnumerator(
            strategies=config_.strategies,
            feature_columns=config_.feature_columns,
            min_precision=config_.min_precision,
            weight_by_influence=config_.weight_by_influence,
            tree_algorithm=config_.tree_algorithm,
            seed=config_.seed,
        )
        self._ranker = PredicateRanker(
            weights=config_.ranker_weights,
            max_terms=config_.max_terms,
            algorithm=config_.score_algorithm,
        )
        self._merger = None
        if config_.merge_predicates:
            from .merger import PredicateMerger

            self._merger = PredicateMerger(
                weights=config_.ranker_weights,
                max_terms=config_.max_terms,
                algorithm=config_.score_algorithm,
            )

    @property
    def preprocess_cache(self) -> PreprocessCache | None:
        """The shared preprocess cache, when one is attached."""
        return self._preprocessor.cache

    def debug(
        self,
        result: ResultSet,
        selected_rows: Sequence[int] | np.ndarray,
        metric: ErrorMetric,
        dprime_tids: Sequence[int] | np.ndarray = (),
        agg_name: str | None = None,
    ) -> DebugReport:
        """Run the full pipeline and return the ranked predicate report.

        Parameters mirror the paper's inputs: the executed query result,
        the suspicious output rows S, the error metric ε, the optional
        suspicious input examples D', and which aggregate column to debug.
        """
        timings: dict[str, float] = {}

        start = time.perf_counter()
        pre = self._preprocessor.run(result, selected_rows, metric, agg_name=agg_name)
        timings["preprocess"] = time.perf_counter() - start

        start = time.perf_counter()
        candidates = self._enumerator.run(pre, dprime_tids)
        timings["enumerate_datasets"] = time.perf_counter() - start

        start = time.perf_counter()
        candidate_rules = self._predicates.run(pre, candidates)
        timings["enumerate_predicates"] = time.perf_counter() - start

        start = time.perf_counter()
        ranked = self._ranker.run(pre, candidates, candidate_rules)
        timings["rank"] = time.perf_counter() - start

        if self._merger is not None:
            start = time.perf_counter()
            ranked = self._merger.run(pre, candidates, ranked)
            timings["merge"] = time.perf_counter() - start

        return DebugReport(
            predicates=tuple(ranked),
            epsilon=pre.epsilon,
            metric_description=metric.describe(),
            selected_rows=pre.selected_rows,
            n_inputs=len(pre.F),
            n_dprime=len(np.asarray(list(dprime_tids), dtype=np.int64)),
            n_candidates=len(candidates),
            timings=timings,
        )
