"""The ranked provenance pipeline (the bottom half of Figure 1).

``RankedProvenance.debug`` wires the four backend components together::

    Query, S, D', ε ──> Preprocessor ──> Dataset Enumerator
                       ──> Predicate Enumerator ──> Predicate Ranker
                       ──> ranked predicates

Each stage's wall-clock time is recorded in the report for the scaling
benchmarks. The physical execution strategy lives behind
:mod:`~repro.core.backend` (``PipelineConfig.backend`` selects it);
``RankedProvenance`` is the stable facade the frontend and service tiers
program against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..db.result import ResultSet
from ..learn.subgroup import SubgroupDiscovery
from .backend import make_backend
from .error_metrics import ErrorMetric
from .predicates import DEFAULT_STRATEGIES, TreeStrategy
from .preprocessor import PreprocessCache
from .ranker import RankerWeights
from .report import DebugReport


@dataclass
class PipelineConfig:
    """All tunables of the ranked provenance pipeline in one place."""

    #: Use closed-form leave-one-out influence (False = naive recompute).
    fast_influence: bool = True
    #: How to clean D': "kmeans", "nb", or "none".
    clean_strategy: str = "kmeans"
    #: Extend candidates with subgroup discovery.
    extend_with_subgroups: bool = True
    #: Influence quantile for the high-influence extension of D'.
    influence_quantile: float = 0.75
    #: Tree strategies for the predicate enumerator (the paper's m).
    strategies: tuple[TreeStrategy, ...] = DEFAULT_STRATEGIES
    #: Split-finding algorithm: "hist" (shared SplitIndex + histogram
    #: kernels) or "exact" (per-threshold reference; ablation only).
    tree_algorithm: str = "hist"
    #: Columns usable in predicates (None = every column of F).
    feature_columns: tuple[str, ...] | None = None
    #: Minimum positive-leaf precision for tree rules.
    min_precision: float = 0.5
    #: Bias tree sample weights by influence scores.
    weight_by_influence: bool = False
    #: Ranker weights and complexity cap.
    ranker_weights: RankerWeights = field(default_factory=RankerWeights)
    max_terms: int = 8
    #: Ranker/Merger scoring path: "batch" (bit-packed clause masks +
    #: one-pass grouped Δε over the whole rule set) or "per_rule" (the
    #: original loop; byte-identical output, kept for ablation).
    score_algorithm: str = "batch"
    #: Post-rank hull merging of fragmented predicates (Scorpion-style).
    merge_predicates: bool = False
    #: Cap on candidate datasets.
    max_candidates: int = 8
    #: Subgroup discovery configuration.
    subgroup: SubgroupDiscovery | None = None
    #: Random seed shared by all stochastic stages.
    seed: int = 0
    #: Execution backend: "in_process" (one pass over the whole table)
    #: or "partitioned" (scatter-gather over group-aligned row blocks;
    #: byte-identical output per the parity contract).
    backend: str = "in_process"
    #: Scatter fan-out of the partitioned backend (ignored by
    #: "in_process"; 1 degenerates to a single block).
    n_partitions: int = 1


class RankedProvenance:
    """The DBWipes backend: from a selection to ranked predicates.

    ``preprocess_cache`` (a
    :class:`~repro.core.preprocessor.PreprocessCache`) may be shared by
    many pipelines: the serving tier hands every session the same cache
    so concurrent debugging requests over the same selection reuse one
    :class:`~repro.core.preprocessor.PreprocessResult`.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        preprocess_cache: "PreprocessCache | None" = None,
    ):
        self.config = config or PipelineConfig()
        #: The execution backend running the five stages (see
        #: :mod:`~repro.core.backend`). ``config.backend`` selects it.
        self.backend = make_backend(self.config, preprocess_cache=preprocess_cache)

    @property
    def preprocess_cache(self) -> PreprocessCache | None:
        """The shared preprocess cache, when one is attached."""
        return self.backend.preprocess_cache

    def debug(
        self,
        result: ResultSet,
        selected_rows: Sequence[int] | np.ndarray,
        metric: ErrorMetric,
        dprime_tids: Sequence[int] | np.ndarray = (),
        agg_name: str | None = None,
        on_partial: Callable[[str, list], None] | None = None,
    ) -> DebugReport:
        """Run the full pipeline and return the ranked predicate report.

        Parameters mirror the paper's inputs: the executed query result,
        the suspicious output rows S, the error metric ε, the optional
        suspicious input examples D', and which aggregate column to debug.
        ``on_partial(stage, ranked)`` streams intermediate ranked lists
        (post-rank, then per merge round) without changing the result.
        """
        return self.backend.debug(
            result,
            selected_rows,
            metric,
            dprime_tids=dprime_tids,
            agg_name=agg_name,
            on_partial=on_partial,
        )
