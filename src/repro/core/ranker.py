"""The Predicate Ranker.

Paper §2.2.2: *"the Predicate Ranker computes a score for each tree
that increases with improvement in the error metric, and the accuracy of
the tree at differentiating D^c_i from F − D^c_i, and decreases by the
complexity (number of terms in) the predicate."*

Concretely, for predicate p over candidate c::

    score(p) = w_err  · (ε(S) − ε(S without p's tuples)) / ε(S)
             + w_acc  · F1(p matches F, c labels F)
             − w_cmpl · min(terms(p) / max_terms, 1)

Δε is evaluated with removable-aggregate subset removal
(:func:`repro.core.influence.subset_epsilon`) — no query re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


from ..errors import PipelineError
from ..learn.metrics import confusion
from .enumerator import CandidateSet
from .influence import subset_epsilon_grouped
from .predicates import CandidateRule
from .preprocessor import PreprocessResult
from .report import RankedPredicate


@dataclass(frozen=True)
class RankerWeights:
    """The score components' weights.

    ``error``, ``accuracy`` and ``complexity`` are the paper's three
    criteria. ``parsimony`` is the data-cleaning corollary of the ideal
    formulation (minimize ε by deleting D*): among predicates with equal
    error reduction, the one deleting fewer tuples destroys less good
    data and should rank higher.
    """

    error: float = 1.0
    accuracy: float = 0.5
    complexity: float = 0.25
    parsimony: float = 0.3

    def __post_init__(self) -> None:
        if min(self.error, self.accuracy, self.complexity, self.parsimony) < 0:
            raise PipelineError("ranker weights must be non-negative")


class PredicateRanker:
    """Scores and orders candidate predicates."""

    def __init__(
        self,
        weights: RankerWeights = RankerWeights(),
        max_terms: int = 8,
        drop_nonpositive_error: bool = True,
    ):
        self.weights = weights
        self.max_terms = max_terms
        self.drop_nonpositive_error = drop_nonpositive_error

    def run(
        self,
        pre: PreprocessResult,
        candidates: Sequence[CandidateSet],
        candidate_rules: Sequence[CandidateRule],
    ) -> list[RankedPredicate]:
        """Rank every enumerated predicate; best first."""
        epsilon = pre.epsilon
        ranked: list[RankedPredicate] = []
        segments = pre.segments
        segment_table = pre.segment_table
        for candidate_rule in candidate_rules:
            candidate = candidates[candidate_rule.candidate_index]
            rule = candidate_rule.rule
            mask_f = rule.predicate.mask(pre.F)
            n_matched = int(mask_f.sum())
            if n_matched == 0:
                continue
            # Δε via grouped removable aggregates: one mask evaluation
            # over the segment table, one grouped compute_without pass.
            remove_mask = rule.predicate.mask(segment_table)
            epsilon_after = subset_epsilon_grouped(
                segments, remove_mask, pre.aggregate, pre.metric
            )
            relative_reduction = (
                (epsilon - epsilon_after) / epsilon if epsilon > 0 else 0.0
            )
            if self.drop_nonpositive_error and relative_reduction <= 0:
                continue
            labels = candidate.label_mask(pre.F)
            stats = confusion(labels, mask_f)
            penalty = min(rule.predicate.complexity / self.max_terms, 1.0)
            matched_fraction = n_matched / max(len(pre.F), 1)
            score = (
                self.weights.error * relative_reduction
                + self.weights.accuracy * stats.f1
                - self.weights.complexity * penalty
                - self.weights.parsimony * matched_fraction
            )
            ranked.append(
                RankedPredicate(
                    predicate=rule.predicate,
                    score=score,
                    epsilon_before=epsilon,
                    epsilon_after=epsilon_after,
                    accuracy=stats.f1,
                    precision=stats.precision,
                    recall=stats.recall,
                    complexity=rule.predicate.complexity,
                    n_matched=n_matched,
                    candidate_origin=candidate.origin,
                    source=rule.source,
                )
            )
        ranked = self._dedupe(ranked, pre)
        ranked.sort(key=lambda r: (-r.score, r.complexity, r.predicate.describe()))
        return ranked

    @staticmethod
    def _dedupe(
        ranked: list[RankedPredicate], pre: PreprocessResult
    ) -> list[RankedPredicate]:
        """Keep one entry per (matched tuple set, columns used).

        Different trees often emit near-identical thresholds (e.g.
        ``measure > 58.43`` vs ``measure > 58.44``) that select exactly the
        same tuples of F; showing them all would clutter the Figure-6
        panel without adding information. Descriptions over *different
        columns* are kept even when they denote the same tuples (e.g.
        ``memo = 'REATTRIBUTION TO SPOUSE'`` vs ``amount <= -249``) —
        alternative framings of the anomaly are exactly what the user
        wants to compare.
        """
        best: dict[tuple, RankedPredicate] = {}
        for entry in ranked:
            key = (
                entry.predicate.mask(pre.F).tobytes(),
                frozenset(entry.predicate.columns()),
            )
            existing = best.get(key)
            if (
                existing is None
                or entry.score > existing.score
                or (entry.score == existing.score
                    and entry.complexity < existing.complexity)
            ):
                best[key] = entry
        return list(best.values())
