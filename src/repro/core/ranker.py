"""The Predicate Ranker.

Paper §2.2.2: *"the Predicate Ranker computes a score for each tree
that increases with improvement in the error metric, and the accuracy of
the tree at differentiating D^c_i from F − D^c_i, and decreases by the
complexity (number of terms in) the predicate."*

Concretely, for predicate p over candidate c::

    score(p) = w_err  · (ε(S) − ε(S without p's tuples)) / ε(S)
             + w_acc  · F1(p matches F, c labels F)
             − w_cmpl · min(terms(p) / max_terms, 1)

Δε is evaluated with removable-aggregate subset removal
(:func:`repro.core.influence.subset_epsilon`) — no query re-execution.

Two scoring paths produce byte-identical ranked lists:

* ``algorithm="batch"`` (default) — the whole rule set is scored as one
  vectorized batch through the shared
  :class:`~repro.core.maskset.ClauseMaskCache`: each distinct clause is
  evaluated once per table, conjunctions are bitwise ANDs of packed
  bits, Δε for all rules is one grouped
  :func:`~repro.core.influence.subset_epsilon_grouped_batch` pass, and
  the confusion statistics come from popcounts of packed-mask
  intersections. Dedupe reuses the already-computed packed masks, keyed
  on a ``blake2b`` digest of (packed bits, column set).
* ``algorithm="per_rule"`` — the original one-rule-at-a-time loop, kept
  as the reference implementation for parity tests and the A3 ablation
  (like ``tree_algorithm="exact"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import PipelineError
from ..learn.metrics import confusion
from .enumerator import CandidateSet
from .influence import DeltaEpsilonScorer
from .predicates import CandidateRule
from .preprocessor import PreprocessResult
from .report import RankedPredicate

#: Scoring implementations: vectorized batch vs per-rule reference.
SCORE_ALGORITHMS = ("batch", "per_rule")


@dataclass(frozen=True)
class RankerWeights:
    """The score components' weights.

    ``error``, ``accuracy`` and ``complexity`` are the paper's three
    criteria. ``parsimony`` is the data-cleaning corollary of the ideal
    formulation (minimize ε by deleting D*): among predicates with equal
    error reduction, the one deleting fewer tuples destroys less good
    data and should rank higher.
    """

    error: float = 1.0
    accuracy: float = 0.5
    complexity: float = 0.25
    parsimony: float = 0.3

    def __post_init__(self) -> None:
        if min(self.error, self.accuracy, self.complexity, self.parsimony) < 0:
            raise PipelineError("ranker weights must be non-negative")


def confusion_scores(
    tp: int, n_matched: int, n_pos: int
) -> tuple[float, float, float]:
    """``(f1, precision, recall)`` from integer confusion counts.

    Mirrors :class:`~repro.learn.metrics.Confusion` exactly: the counts
    there are float sums of unit weights (exact integers), so dividing
    the same integer-valued floats here yields bit-identical statistics
    — which keeps the batched popcount-based confusion byte-identical
    to the per-rule reference.
    """
    tp_f = float(tp)
    precision = tp_f / float(n_matched) if n_matched else 0.0
    recall = tp_f / float(n_pos) if n_pos else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return f1, precision, recall


class PredicateRanker:
    """Scores and orders candidate predicates."""

    def __init__(
        self,
        weights: RankerWeights = RankerWeights(),
        max_terms: int = 8,
        drop_nonpositive_error: bool = True,
        algorithm: str = "batch",
        scorer: DeltaEpsilonScorer | None = None,
    ):
        if algorithm not in SCORE_ALGORITHMS:
            raise PipelineError(
                f"algorithm must be one of {SCORE_ALGORITHMS}, got {algorithm!r}"
            )
        self.weights = weights
        self.max_terms = max_terms
        self.drop_nonpositive_error = drop_nonpositive_error
        self.algorithm = algorithm
        #: Δε evaluation strategy, injected by the execution backend (the
        #: partitioned backend swaps in scatter-gather scoring; any
        #: scorer is byte-identical to the default by construction).
        self.scorer = scorer if scorer is not None else DeltaEpsilonScorer()

    def run(
        self,
        pre: PreprocessResult,
        candidates: Sequence[CandidateSet],
        candidate_rules: Sequence[CandidateRule],
    ) -> list[RankedPredicate]:
        """Rank every enumerated predicate; best first."""
        if self.algorithm == "per_rule":
            ranked = self._run_per_rule(pre, candidates, candidate_rules)
        else:
            ranked = self._run_batch(pre, candidates, candidate_rules)
        ranked.sort(key=lambda r: (-r.score, r.complexity, r.predicate.describe()))
        return ranked

    # ------------------------------------------------------------------
    # batched scoring (default)
    # ------------------------------------------------------------------

    def _run_batch(
        self,
        pre: PreprocessResult,
        candidates: Sequence[CandidateSet],
        candidate_rules: Sequence[CandidateRule],
    ) -> list[RankedPredicate]:
        epsilon = pre.epsilon
        engine = pre.mask_engine()
        candidate_rules = list(candidate_rules)
        predicates = [cr.rule.predicate for cr in candidate_rules]

        # One batched mask evaluation over F: distinct clauses once,
        # conjunctions as packed-bit ANDs, match counts via popcount.
        f_masks = engine.mask_set(pre.F, predicates)
        kept = np.flatnonzero(f_masks.counts > 0)

        # One grouped Δε pass for every surviving rule at once. The
        # segment table is F re-ordered, so the remove-masks are gathers
        # of the F masks (no second evaluation); distinct masks are
        # scored once and broadcast by digest.
        epsilons_after = self.scorer.epsilons_for_mask_set(
            pre, f_masks.subset(kept)
        )

        # Confusion batch: per candidate, all true-positive counts are
        # one popcount of (rule bits & label bits).
        label_packed: dict[int, tuple[np.ndarray, int]] = {}
        tp_by_candidate: dict[int, np.ndarray] = {}
        for index in kept:
            c_index = candidate_rules[index].candidate_index
            if c_index not in label_packed:
                labels = candidates[c_index].label_mask(pre.F)
                label_packed[c_index] = (
                    engine.pack_labels(labels),
                    int(np.count_nonzero(labels)),
                )
                tp_by_candidate[c_index] = f_masks.intersection_counts(
                    label_packed[c_index][0]
                )

        digests = f_masks.digests()
        scored: list[tuple[RankedPredicate, tuple]] = []
        for pos, index in enumerate(kept):
            candidate_rule = candidate_rules[index]
            rule = candidate_rule.rule
            epsilon_after = float(epsilons_after[pos])
            relative_reduction = (
                (epsilon - epsilon_after) / epsilon if epsilon > 0 else 0.0
            )
            if self.drop_nonpositive_error and relative_reduction <= 0:
                continue
            c_index = candidate_rule.candidate_index
            n_matched = int(f_masks.counts[index])
            tp = int(tp_by_candidate[c_index][index])
            f1, precision, recall = confusion_scores(
                tp, n_matched, label_packed[c_index][1]
            )
            penalty = min(rule.predicate.complexity / self.max_terms, 1.0)
            matched_fraction = n_matched / max(len(pre.F), 1)
            score = (
                self.weights.error * relative_reduction
                + self.weights.accuracy * f1
                - self.weights.complexity * penalty
                - self.weights.parsimony * matched_fraction
            )
            entry = RankedPredicate(
                predicate=rule.predicate,
                score=score,
                epsilon_before=epsilon,
                epsilon_after=epsilon_after,
                accuracy=f1,
                precision=precision,
                recall=recall,
                complexity=rule.predicate.complexity,
                n_matched=n_matched,
                candidate_origin=candidates[c_index].origin,
                source=rule.source,
            )
            dedupe_key = (
                digests[index],
                frozenset(rule.predicate.columns()),
            )
            scored.append((entry, dedupe_key))
        return self._dedupe_digests(scored)

    @staticmethod
    def _dedupe_digests(
        scored: list[tuple[RankedPredicate, tuple]]
    ) -> list[RankedPredicate]:
        """:meth:`_dedupe` keyed on packed-mask digests.

        Same equivalence classes and same keep-the-best rule as the
        per-rule reference, but the keys are 16-byte digests of the
        packed bits already computed by the engine — no second mask
        evaluation, no full ``tobytes()`` buffers held in the dict.
        """
        best: dict[tuple, RankedPredicate] = {}
        for entry, key in scored:
            existing = best.get(key)
            if (
                existing is None
                or entry.score > existing.score
                or (entry.score == existing.score
                    and entry.complexity < existing.complexity)
            ):
                best[key] = entry
        return list(best.values())

    # ------------------------------------------------------------------
    # per-rule reference path
    # ------------------------------------------------------------------

    def _run_per_rule(
        self,
        pre: PreprocessResult,
        candidates: Sequence[CandidateSet],
        candidate_rules: Sequence[CandidateRule],
    ) -> list[RankedPredicate]:
        """The original one-rule-at-a-time scorer (parity reference)."""
        epsilon = pre.epsilon
        ranked: list[RankedPredicate] = []
        for candidate_rule in candidate_rules:
            candidate = candidates[candidate_rule.candidate_index]
            rule = candidate_rule.rule
            mask_f = rule.predicate.mask(pre.F)
            n_matched = int(mask_f.sum())
            if n_matched == 0:
                continue
            # Δε via grouped removable aggregates: mask evaluation over
            # the segment table plus the grouped compute_without pass,
            # both behind the scorer (block-local under partitioning).
            epsilon_after = self.scorer.epsilon_for_predicate(
                pre, rule.predicate
            )
            relative_reduction = (
                (epsilon - epsilon_after) / epsilon if epsilon > 0 else 0.0
            )
            if self.drop_nonpositive_error and relative_reduction <= 0:
                continue
            labels = candidate.label_mask(pre.F)
            stats = confusion(labels, mask_f)
            penalty = min(rule.predicate.complexity / self.max_terms, 1.0)
            matched_fraction = n_matched / max(len(pre.F), 1)
            score = (
                self.weights.error * relative_reduction
                + self.weights.accuracy * stats.f1
                - self.weights.complexity * penalty
                - self.weights.parsimony * matched_fraction
            )
            ranked.append(
                RankedPredicate(
                    predicate=rule.predicate,
                    score=score,
                    epsilon_before=epsilon,
                    epsilon_after=epsilon_after,
                    accuracy=stats.f1,
                    precision=stats.precision,
                    recall=stats.recall,
                    complexity=rule.predicate.complexity,
                    n_matched=n_matched,
                    candidate_origin=candidate.origin,
                    source=rule.source,
                )
            )
        return self._dedupe(ranked, pre)

    @staticmethod
    def _dedupe(
        ranked: list[RankedPredicate], pre: PreprocessResult
    ) -> list[RankedPredicate]:
        """Keep one entry per (matched tuple set, columns used).

        Different trees often emit near-identical thresholds (e.g.
        ``measure > 58.43`` vs ``measure > 58.44``) that select exactly the
        same tuples of F; showing them all would clutter the Figure-6
        panel without adding information. Descriptions over *different
        columns* are kept even when they denote the same tuples (e.g.
        ``memo = 'REATTRIBUTION TO SPOUSE'`` vs ``amount <= -249``) —
        alternative framings of the anomaly are exactly what the user
        wants to compare.
        """
        best: dict[tuple, RankedPredicate] = {}
        for entry in ranked:
            key = (
                entry.predicate.mask(pre.F).tobytes(),
                frozenset(entry.predicate.columns()),
            )
            existing = best.get(key)
            if (
                existing is None
                or entry.score > existing.score
                or (entry.score == existing.score
                    and entry.complexity < existing.complexity)
            ):
                best[key] = entry
        return list(best.values())
