"""``repro.core`` — the Ranked Provenance System (the paper's contribution).

Pipeline: Preprocessor → Dataset Enumerator → Predicate Enumerator →
Predicate Ranker, orchestrated by :class:`RankedProvenance`.
"""

from .enumerator import CLEAN_STRATEGIES, CandidateSet, DatasetEnumerator
from .error_metrics import (
    DiffFromConstant,
    ErrorMetric,
    NotEqual,
    TooHigh,
    TooLow,
    available_metric_ids,
    metric_from_form,
)
from .influence import (
    GroupInfluence,
    InfluenceResult,
    leave_one_out_influence,
    subset_epsilon,
    subset_epsilon_grouped,
    subset_epsilon_grouped_batch,
)
from .maskset import ClauseMaskCache, MaskSet
from .merger import PredicateMerger, hull
from .pipeline import PipelineConfig, RankedProvenance
from .predicates import (
    DEFAULT_STRATEGIES,
    CandidateRule,
    PredicateEnumerator,
    TreeStrategy,
)
from .preprocessor import (
    PreprocessCache,
    PreprocessResult,
    Preprocessor,
    preprocess_key,
)
from .ranker import SCORE_ALGORITHMS, PredicateRanker, RankerWeights
from .report import DebugReport, RankedPredicate

__all__ = [
    "CLEAN_STRATEGIES",
    "DEFAULT_STRATEGIES",
    "SCORE_ALGORITHMS",
    "CandidateRule",
    "CandidateSet",
    "ClauseMaskCache",
    "MaskSet",
    "DatasetEnumerator",
    "DebugReport",
    "DiffFromConstant",
    "ErrorMetric",
    "GroupInfluence",
    "InfluenceResult",
    "NotEqual",
    "PipelineConfig",
    "PredicateEnumerator",
    "PredicateMerger",
    "PredicateRanker",
    "PreprocessCache",
    "PreprocessResult",
    "Preprocessor",
    "RankedPredicate",
    "RankedProvenance",
    "RankerWeights",
    "TooHigh",
    "TooLow",
    "TreeStrategy",
    "available_metric_ids",
    "hull",
    "leave_one_out_influence",
    "metric_from_form",
    "preprocess_key",
    "subset_epsilon",
    "subset_epsilon_grouped",
    "subset_epsilon_grouped_batch",
]
