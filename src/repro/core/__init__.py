"""``repro.core`` — the Ranked Provenance System (the paper's contribution).

Pipeline: Preprocessor → Dataset Enumerator → Predicate Enumerator →
Predicate Ranker, orchestrated by :class:`RankedProvenance`.
"""

from .backend import (
    BACKENDS,
    InProcessBackend,
    PartitionedBackend,
    make_backend,
)
from .enumerator import CLEAN_STRATEGIES, CandidateSet, DatasetEnumerator
from .error_metrics import (
    DiffFromConstant,
    ErrorMetric,
    NotEqual,
    TooHigh,
    TooLow,
    available_metric_ids,
    metric_from_form,
)
from .influence import (
    DeltaEpsilonScorer,
    GroupInfluence,
    InfluenceResult,
    PartitionedDeltaEpsilonScorer,
    SegmentPartitions,
    leave_one_out_influence,
    partition_segments,
    subset_epsilon,
    subset_epsilon_grouped,
    subset_epsilon_grouped_batch,
)
from .maskset import ClauseMaskCache, MaskSet
from .merger import PredicateMerger, hull
from .pipeline import PipelineConfig, RankedProvenance
from .predicates import (
    DEFAULT_STRATEGIES,
    CandidateRule,
    PredicateEnumerator,
    TreeStrategy,
)
from .preprocessor import (
    PreprocessCache,
    PreprocessResult,
    Preprocessor,
    preprocess_key,
)
from .ranker import SCORE_ALGORITHMS, PredicateRanker, RankerWeights
from .report import DebugReport, RankedPredicate

__all__ = [
    "BACKENDS",
    "CLEAN_STRATEGIES",
    "DEFAULT_STRATEGIES",
    "SCORE_ALGORITHMS",
    "CandidateRule",
    "CandidateSet",
    "ClauseMaskCache",
    "DeltaEpsilonScorer",
    "MaskSet",
    "DatasetEnumerator",
    "DebugReport",
    "DiffFromConstant",
    "ErrorMetric",
    "GroupInfluence",
    "InProcessBackend",
    "InfluenceResult",
    "NotEqual",
    "PartitionedBackend",
    "PartitionedDeltaEpsilonScorer",
    "PipelineConfig",
    "PredicateEnumerator",
    "PredicateMerger",
    "PredicateRanker",
    "PreprocessCache",
    "PreprocessResult",
    "Preprocessor",
    "RankedPredicate",
    "RankedProvenance",
    "RankerWeights",
    "SegmentPartitions",
    "TooHigh",
    "TooLow",
    "TreeStrategy",
    "available_metric_ids",
    "hull",
    "leave_one_out_influence",
    "make_backend",
    "metric_from_form",
    "partition_segments",
    "preprocess_key",
    "subset_epsilon",
    "subset_epsilon_grouped",
    "subset_epsilon_grouped_batch",
]
