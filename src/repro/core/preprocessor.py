"""The Preprocessor: from (Q results, S, ε) to (F, influence ranking).

Paper §2.2.2: *"First, the Preprocessor computes F, the set of input
tuples that generated S; F − D' is an approximate set of error-free
input tuples. It then uses leave-one-out analysis to rank each tuple in
F by how much it influences ε."*

The fine-grained provenance captured at execution time supplies the
group→tids map; the statement AST supplies the aggregate argument
expression so input values can be re-derived for any subset of tuples.

Preprocessing is the most *shareable* stage of the pipeline: its output
depends only on (base table, query text, S, ε, debugged aggregate) — not
on D' or any enumerator/ranker tunable. :class:`PreprocessCache` keys on
exactly that identity so N concurrent sessions debugging the same
selection of the same query share one :class:`PreprocessResult` (and
with it the segmented kernels, column discretizations, and the
tree-induction :class:`~repro.learn.split_index.SplitIndex` it caches).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

import numpy as np

from ..db.aggregates import Aggregate, get_aggregate
from ..db.result import ResultSet
from ..db.segments import SegmentedValues
from ..db.sqlparse.ast_nodes import AggregateCall, Star
from ..db.table import Table
from ..errors import PipelineError
from ..obs.flags import enabled as obs_enabled
from ..obs.metrics import registry as obs_registry
from .error_metrics import ErrorMetric
from .influence import InfluenceResult, leave_one_out_influence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..learn.split_index import SplitIndex
    from .artifacts import ArtifactStore
    from .maskset import ClauseMaskCache


@dataclass(frozen=True)
class PreprocessResult:
    """Everything downstream stages need about the debugged selection."""

    #: Union of input tuples behind the selected rows (the paper's F).
    F: Table
    #: Leave-one-out influence ranking over F.
    influence: InfluenceResult
    #: The selected result-row indexes (the paper's S).
    selected_rows: tuple[int, ...]
    #: The error metric ε.
    metric: ErrorMetric
    #: Output column being debugged.
    agg_name: str
    #: Aggregate implementation for that column.
    aggregate: Aggregate
    #: Per selected group: input values of the aggregate argument.
    group_values: tuple[np.ndarray, ...]
    #: Per selected group: tids aligned with ``group_values``.
    group_tids: tuple[np.ndarray, ...]
    #: Memo of per-column artifacts shared across enumerator strategies
    #: (numeric casts of F's columns, discretization edges). Keyed by
    #: column name / (column, bins); populated lazily. Races are benign
    #: (recompute yields an identical value).
    _column_memo: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def epsilon(self) -> float:
        """ε of the current (uncleaned) selection."""
        return self.influence.epsilon

    @cached_property
    def segments(self) -> SegmentedValues:
        """All selected groups' aggregate inputs as one segmented array.

        This is the structure the grouped Δε kernels consume; it is
        built once per debugging request and shared by the Ranker and
        Merger across every candidate predicate.
        """
        return SegmentedValues.from_arrays(list(self.group_values))

    @cached_property
    def flat_tids(self) -> np.ndarray:
        """Tids aligned with ``segments.values`` (groups concatenated)."""
        if not self.group_tids:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.asarray(t, dtype=np.int64) for t in self.group_tids]
        )

    @cached_property
    def segment_table(self) -> Table:
        """Rows of F in segment order (one table, aligned with ``segments``).

        Evaluating a predicate mask once against this table yields the
        flat remove-mask for
        :func:`~repro.core.influence.subset_epsilon_grouped` — one
        evaluation per predicate instead of one per (predicate, group).
        """
        return self.F.take_tids(self.flat_tids)

    # -- shared per-column artifacts ------------------------------------

    def numeric_values(self, column: str) -> np.ndarray:
        """``F[column]`` as float64, computed once and shared.

        The dataset enumerator's cleaning strategies (k-means, NB) and
        the rule learners all need numeric casts of the same columns of
        F; this memo makes the cast happen once per debugging request
        instead of once per strategy.
        """
        key = ("numeric", column)
        cached = self._column_memo.get(key)
        if cached is None:
            cached = np.asarray(self.F.column(column), dtype=np.float64)
            self._column_memo[key] = cached
        return cached

    def frequency_edges(self, column: str, bins: int) -> tuple[float, ...]:
        """Equal-frequency discretization edges of ``F[column]``, shared.

        CN2-SD subgroup discovery (and any other strategy that needs
        class-agnostic threshold candidates) re-derived these quantile
        cuts per invocation; they depend only on F's value distribution,
        so one computation serves every strategy and every candidate.
        """
        from ..learn.discretize import equal_frequency_edges

        key = ("freq_edges", column, int(bins))
        cached = self._column_memo.get(key)
        if cached is None:
            cached = tuple(equal_frequency_edges(self.numeric_values(column), bins))
            self._column_memo[key] = cached
        return cached

    def split_index(
        self,
        features: Sequence[str] | None = None,
        max_thresholds: int = 32,
    ) -> "SplitIndex":
        """Shared tree-induction index over F's columns, computed once.

        The Predicate Enumerator fits K candidate × S strategy decision
        trees per debug cycle, and every fit needs the same per-column
        sorted orderings, candidate thresholds, and bin codes. Like
        :meth:`numeric_values` and :meth:`frequency_edges`, the index
        rides on this (cached) result, so in the service it is shared
        across sessions, not just across strategies. Reuses the
        :meth:`numeric_values` casts.
        """
        from ..learn.split_index import SplitIndex

        features = (
            tuple(features) if features is not None else tuple(self.F.schema.names)
        )
        key = ("split_index", features, int(max_thresholds))
        cached = self._column_memo.get(key)
        if cached is None:
            cached = SplitIndex.build(
                self.F,
                features,
                max_thresholds=max_thresholds,
                numeric_values=self.numeric_values,
            )
            self._column_memo[key] = cached
        return cached

    @cached_property
    def segment_positions(self) -> np.ndarray:
        """Row positions of F's tuples in segment order.

        Gathering any F-aligned per-row artifact (numeric casts,
        ``SplitIndex`` bin codes) through this permutation re-aligns it
        with :attr:`segment_table` without re-deriving it.
        """
        return self.F.positions_of(self.flat_tids)

    def mask_engine(self) -> "ClauseMaskCache":
        """Shared batched mask engine, computed once per cached result.

        The Ranker and Merger evaluate every candidate predicate against
        F (segment-order remove-masks are gathers of the F masks through
        :attr:`segment_positions`); the engine
        (:class:`~repro.core.maskset.ClauseMaskCache`) evaluates each
        *distinct clause* once and stores masks bit-packed. Numeric
        clauses whose bounds come from the tree-threshold grid are range
        tests over the memoized :meth:`split_index` bin codes;
        everything else uses the shared :meth:`numeric_values` casts.
        Like the other memos, the engine rides on this (cached) result,
        so in the service one clause-mask cache serves every session
        debugging the same selection.
        """
        from ..learn.split_index import NumericColumnIndex
        from .maskset import ClauseMaskCache

        key = ("mask_engine",)
        cached = self._column_memo.get(key)
        if cached is not None:
            return cached

        def f_column_index(column: str):
            index = self.split_index().columns.get(column)
            return index if isinstance(index, NumericColumnIndex) else None

        cached = ClauseMaskCache()
        cached.register(
            self.F,
            numeric_values=self.numeric_values,
            column_index=f_column_index,
        )
        self._column_memo[key] = cached
        return cached

    def partition_blocks(
        self, n_partitions: int
    ) -> tuple[tuple[Table, "ClauseMaskCache", SegmentedValues], ...]:
        """Per-block ``(table, mask engine, segments)`` scatter units.

        The partitioned backend's per-rule path runs the whole rule
        pipeline block-locally: each block gets the rows of
        :attr:`segment_table` in its flat range, its own
        :class:`~repro.core.maskset.ClauseMaskCache` backed by a
        zero-copy :meth:`~repro.learn.split_index.SplitIndex.slice_rows`
        view of one segment-order index, and the matching
        group-aligned :class:`SegmentedValues` block. Engine masks are
        byte-equal to ``predicate.mask(block_table)`` (the engine's
        exactness invariant), and a mask is per-row, so per-block masks
        concatenate into exactly the global segment-order mask. Memoized
        like every other artifact, so N sessions debugging one cached
        selection share one set of blocks.
        """
        from ..learn.split_index import NumericColumnIndex
        from .influence import partition_segments
        from .maskset import ClauseMaskCache

        key = ("partition_blocks", int(n_partitions))
        cached = self._column_memo.get(key)
        if cached is not None:
            return cached
        plan = partition_segments(self.segments, n_partitions)
        index_key = ("segment_split_index",)
        seg_index = self._column_memo.get(index_key)
        if seg_index is None:
            # One segment-order re-alignment of the shared tree grid;
            # every partition count slices views out of this one gather.
            seg_index = self.split_index().take(self.segment_positions)
            self._column_memo[index_key] = seg_index
        blocks = []
        for b in range(plan.n_blocks):
            lo, hi = plan.flat_bounds(b)
            # A zero-copy row window of the shared segment-order table:
            # each block's columns are slices of one gather instead of a
            # fresh per-block tid lookup + copy, so scatter setup cost no
            # longer scales with (partition count × column bytes).
            block_table = self.segment_table.slice_rows(lo, hi)
            index_view = seg_index.slice_rows(lo, hi)

            def block_column_index(column: str, view=index_view):
                index = view.columns.get(column)
                return index if isinstance(index, NumericColumnIndex) else None

            engine = ClauseMaskCache()
            engine.register(block_table, column_index=block_column_index)
            blocks.append((block_table, engine, plan.blocks[b]))
        cached = tuple(blocks)
        self._column_memo[key] = cached
        return cached

    def group_masks_for_tids(self, tids: np.ndarray) -> list[np.ndarray]:
        """Per-group boolean masks marking which group tuples are in ``tids``."""
        wanted = np.unique(np.asarray(tids, dtype=np.int64).ravel())
        return [
            np.isin(np.asarray(group_tids, dtype=np.int64), wanted)
            for group_tids in self.group_tids
        ]


class PreprocessCache:
    """A thread-safe keyed LRU cache of :class:`PreprocessResult` values.

    Concurrent sessions debugging the same (table, query, S, ε, agg)
    share one computation: the first requester computes while later
    requesters for the same key block on an event and then reuse the
    value. Distinct keys never block each other. Hit/miss/eviction
    counters feed the service's ``stats`` endpoint and the throughput
    benchmark.
    """

    def __init__(self, max_entries: int = 64, disk: "ArtifactStore | None" = None):
        if max_entries < 1:
            raise PipelineError("max_entries must be >= 1")
        self.max_entries = max_entries
        #: Optional disk-backed second level (an
        #: :class:`~repro.core.artifacts.ArtifactStore`). A memory miss
        #: probes it before computing; a computed value is written
        #: through. Shared across restarts and across worker processes
        #: (artifact keys are content-addressed, writes are atomic).
        self.disk = disk
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, PreprocessCache._Entry] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0
        self._disk_misses = 0
        self._disk_writes = 0
        # Mirror the ad-hoc counters into the shared telemetry registry:
        # get-or-create means every cache instance in a process feeds the
        # same process-wide counters (the ``metrics`` command merges the
        # per-process values cluster-wide).
        reg = obs_registry()
        self._m_hits = reg.counter(
            "dbwipes_preprocess_cache_hits_total",
            help="Preprocess cache lookups served from cache.",
        )
        self._m_misses = reg.counter(
            "dbwipes_preprocess_cache_misses_total",
            help="Preprocess cache lookups that computed a fresh result.",
        )
        self._m_evictions = reg.counter(
            "dbwipes_preprocess_cache_evictions_total",
            help="Preprocess cache entries evicted by the LRU bound.",
        )
        self._m_disk_hits = reg.counter(
            "dbwipes_preprocess_cache_disk_hits_total",
            help="Preprocess cache memory misses served from disk artifacts.",
        )
        self._m_disk_misses = reg.counter(
            "dbwipes_preprocess_cache_disk_misses_total",
            help="Preprocess cache disk probes that found no artifact.",
        )
        self._m_disk_writes = reg.counter(
            "dbwipes_preprocess_cache_disk_writes_total",
            help="Preprocess artifacts written through to disk.",
        )

    class _Entry:
        __slots__ = ("ready", "value", "error")

        def __init__(self) -> None:
            self.ready = threading.Event()
            self.value: PreprocessResult | None = None
            self.error: BaseException | None = None

    def get_or_compute(
        self,
        key: Hashable,
        compute: Callable[[], PreprocessResult],
        disk_key: str | None = None,
    ) -> PreprocessResult:
        """Return the cached value for ``key``, computing it at most once.

        When a disk tier is attached and ``disk_key`` identifies the
        request content-addressably, a memory miss probes disk before
        computing, and a fresh computation is written through (at most
        one writer per artifact across processes — see
        :class:`~repro.core.artifacts.ArtifactStore`).
        """
        owner = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                if obs_enabled():
                    self._m_hits.inc()
            else:
                entry = PreprocessCache._Entry()
                self._entries[key] = entry
                self._misses += 1
                if obs_enabled():
                    self._m_misses.inc()
                owner = True
                while len(self._entries) > self.max_entries:
                    old_key, old_entry = next(iter(self._entries.items()))
                    if old_entry is entry:
                        break
                    del self._entries[old_key]
                    self._evictions += 1
                    if obs_enabled():
                        self._m_evictions.inc()
        if owner:
            try:
                value = None
                if self.disk is not None and disk_key is not None:
                    value = self.disk.load(disk_key)
                    with self._lock:
                        if value is not None:
                            self._disk_hits += 1
                            if obs_enabled():
                                self._m_disk_hits.inc()
                        else:
                            self._disk_misses += 1
                            if obs_enabled():
                                self._m_disk_misses.inc()
                if value is None:
                    value = compute()
                    if self.disk is not None and disk_key is not None:
                        if self.disk.save(disk_key, value):
                            with self._lock:
                                self._disk_writes += 1
                            if obs_enabled():
                                self._m_disk_writes.inc()
            except BaseException as error:
                # Failed computations are not cached; waiters see the error.
                entry.error = error
                entry.ready.set()
                with self._lock:
                    if self._entries.get(key) is entry:
                        del self._entries[key]
                raise
            entry.value = value
            entry.ready.set()
            return value
        entry.ready.wait()
        if entry.error is not None:
            raise entry.error
        assert entry.value is not None
        return entry.value

    def stats(self) -> dict:
        """Counters: hits, misses, evictions, disk tier, current entries."""
        with self._lock:
            total = self._hits + self._misses
            out = {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "hit_rate": (self._hits / total) if total else 0.0,
                "disk_hits": self._disk_hits,
                "disk_misses": self._disk_misses,
                "disk_writes": self._disk_writes,
            }
        if self.disk is not None:
            out["disk"] = self.disk.stats()
        return out

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def preprocess_key(
    result: ResultSet,
    selected_rows: Sequence[int],
    metric: ErrorMetric,
    agg_name: str | None,
) -> Hashable:
    """The cache identity of a preprocessing request.

    The scanned source table is identified by object identity: sharing
    only happens between sessions served from one catalog (which hands
    every session the same :class:`~repro.db.table.Table` object), never
    between coincidentally equal tables. The statement text captures the
    WHERE clause, so the post-WHERE base needs no separate identity.
    """
    base = result.source
    # The table object itself (identity-hashed) anchors the key: holding
    # it in the cache prevents id() reuse after garbage collection.
    return (
        base,
        len(base),
        result.statement.to_sql(),
        tuple(int(r) for r in selected_rows),
        type(metric).__name__,
        metric.describe(),
        metric.combine,
        agg_name,
    )


class Preprocessor:
    """Computes F and the influence ranking for a debugging request."""

    def __init__(
        self,
        fast_influence: bool = True,
        cache: PreprocessCache | None = None,
        partitions: int = 1,
        scatter_stats: dict | None = None,
    ):
        self.fast_influence = fast_influence
        self.cache = cache
        #: Scatter the influence stage over this many group-aligned
        #: blocks (the partitioned backend sets > 1). Deliberately NOT
        #: part of the cache key: any partition count produces
        #: bit-identical results, so backends share cache entries.
        self.partitions = max(1, int(partitions))
        #: Per-block timing accumulator shared with the owning backend
        #: (surfaced as block count + max/mean in ``snapshot()``).
        self.scatter_stats = scatter_stats

    def run(
        self,
        result: ResultSet,
        selected_rows: list[int] | tuple[int, ...] | np.ndarray,
        metric: ErrorMetric,
        agg_name: str | None = None,
    ) -> PreprocessResult:
        """Compute :class:`PreprocessResult` for the selection ``S``.

        ``agg_name`` picks which aggregate output column is being debugged;
        it defaults to the first aggregate in the SELECT list. When a
        :class:`PreprocessCache` is attached, identical requests (same
        table object, query, S, ε, aggregate) reuse one result.
        """
        if self.cache is None:
            return self._compute(result, selected_rows, metric, agg_name)
        if agg_name is None and result.aggregate_names:
            # Normalize the default so explicit and implicit requests for
            # the first aggregate share one cache entry.
            agg_name = result.aggregate_names[0]
        key = preprocess_key(result, selected_rows, metric, agg_name)
        disk_key = None
        if self.cache.disk is not None:
            from .artifacts import artifact_key

            disk_key = artifact_key(result, selected_rows, metric, agg_name)
        return self.cache.get_or_compute(
            key,
            lambda: self._compute(result, selected_rows, metric, agg_name),
            disk_key=disk_key,
        )

    def _compute(
        self,
        result: ResultSet,
        selected_rows: list[int] | tuple[int, ...] | np.ndarray,
        metric: ErrorMetric,
        agg_name: str | None = None,
    ) -> PreprocessResult:
        selected = tuple(int(r) for r in selected_rows)
        if not selected:
            raise PipelineError("S is empty: select at least one suspicious result")
        for row in selected:
            if row < 0 or row >= result.num_rows:
                raise PipelineError(f"selected row {row} out of range")
        if not result.aggregate_names:
            raise PipelineError("ranked provenance requires an aggregate query")
        if agg_name is None:
            agg_name = result.aggregate_names[0]
        if agg_name not in result.aggregate_names:
            raise PipelineError(
                f"{agg_name!r} is not an aggregate output "
                f"(have: {result.aggregate_names})"
            )
        call = self._find_call(result, agg_name)
        aggregate = get_aggregate(call.func)
        base = result.fine.base

        # Evaluate the aggregate argument once over the whole post-WHERE
        # base and gather per-group slices by position — no per-group
        # table materialization or expression re-evaluation.
        values_all = _agg_arg_values(call, base)
        group_values: list[np.ndarray] = []
        group_tids: list[np.ndarray] = []
        for row in selected:
            tids = result.fine.lineage(row)
            group_values.append(values_all[base.positions_of(tids)])
            group_tids.append(tids)

        influence = leave_one_out_influence(
            group_values,
            group_tids,
            list(selected),
            aggregate,
            metric,
            fast=self.fast_influence,
            n_partitions=self.partitions,
            scatter_stats=self.scatter_stats,
        )
        F = result.fine.lineage_table_many(list(selected))
        return PreprocessResult(
            F=F,
            influence=influence,
            selected_rows=selected,
            metric=metric,
            agg_name=agg_name,
            aggregate=aggregate,
            group_values=tuple(group_values),
            group_tids=tuple(group_tids),
        )

    @staticmethod
    def _find_call(result: ResultSet, agg_name: str) -> AggregateCall:
        # Walk the SELECT items in output order, matching planner naming.
        from ..db.planner import plan_select

        plan = plan_select(result.statement, result.fine.base.schema)
        for spec in plan.aggs:
            if spec.output_name == agg_name:
                return spec.call
        raise PipelineError(f"could not resolve aggregate column {agg_name!r}")


def _agg_arg_values(call: AggregateCall, table: Table) -> np.ndarray:
    """The aggregate argument evaluated over a group's tuples."""
    if isinstance(call.arg, Star):
        return np.ones(len(table), dtype=np.float64)
    values = call.arg.eval(table)
    if values.dtype == object:
        if call.func == "count":
            return np.fromiter(
                (np.nan if v is None else 1.0 for v in values),
                dtype=np.float64,
                count=len(values),
            )
        raise PipelineError(f"{call.func}() argument is not numeric")
    return np.asarray(values, dtype=np.float64)
