"""The Preprocessor: from (Q results, S, ε) to (F, influence ranking).

Paper §2.2.2: *"First, the Preprocessor computes F, the set of input
tuples that generated S; F − D' is an approximate set of error-free
input tuples. It then uses leave-one-out analysis to rank each tuple in
F by how much it influences ε."*

The fine-grained provenance captured at execution time supplies the
group→tids map; the statement AST supplies the aggregate argument
expression so input values can be re-derived for any subset of tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..db.aggregates import Aggregate, get_aggregate
from ..db.result import ResultSet
from ..db.segments import SegmentedValues
from ..db.sqlparse.ast_nodes import AggregateCall, Star
from ..db.table import Table
from ..errors import PipelineError
from .error_metrics import ErrorMetric
from .influence import InfluenceResult, leave_one_out_influence


@dataclass(frozen=True)
class PreprocessResult:
    """Everything downstream stages need about the debugged selection."""

    #: Union of input tuples behind the selected rows (the paper's F).
    F: Table
    #: Leave-one-out influence ranking over F.
    influence: InfluenceResult
    #: The selected result-row indexes (the paper's S).
    selected_rows: tuple[int, ...]
    #: The error metric ε.
    metric: ErrorMetric
    #: Output column being debugged.
    agg_name: str
    #: Aggregate implementation for that column.
    aggregate: Aggregate
    #: Per selected group: input values of the aggregate argument.
    group_values: tuple[np.ndarray, ...]
    #: Per selected group: tids aligned with ``group_values``.
    group_tids: tuple[np.ndarray, ...]

    @property
    def epsilon(self) -> float:
        """ε of the current (uncleaned) selection."""
        return self.influence.epsilon

    @cached_property
    def segments(self) -> SegmentedValues:
        """All selected groups' aggregate inputs as one segmented array.

        This is the structure the grouped Δε kernels consume; it is
        built once per debugging request and shared by the Ranker and
        Merger across every candidate predicate.
        """
        return SegmentedValues.from_arrays(list(self.group_values))

    @cached_property
    def flat_tids(self) -> np.ndarray:
        """Tids aligned with ``segments.values`` (groups concatenated)."""
        if not self.group_tids:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.asarray(t, dtype=np.int64) for t in self.group_tids]
        )

    @cached_property
    def segment_table(self) -> Table:
        """Rows of F in segment order (one table, aligned with ``segments``).

        Evaluating a predicate mask once against this table yields the
        flat remove-mask for
        :func:`~repro.core.influence.subset_epsilon_grouped` — one
        evaluation per predicate instead of one per (predicate, group).
        """
        return self.F.take_tids(self.flat_tids)

    def group_masks_for_tids(self, tids: np.ndarray) -> list[np.ndarray]:
        """Per-group boolean masks marking which group tuples are in ``tids``."""
        wanted = np.unique(np.asarray(tids, dtype=np.int64).ravel())
        return [
            np.isin(np.asarray(group_tids, dtype=np.int64), wanted)
            for group_tids in self.group_tids
        ]


class Preprocessor:
    """Computes F and the influence ranking for a debugging request."""

    def __init__(self, fast_influence: bool = True):
        self.fast_influence = fast_influence

    def run(
        self,
        result: ResultSet,
        selected_rows: list[int] | tuple[int, ...] | np.ndarray,
        metric: ErrorMetric,
        agg_name: str | None = None,
    ) -> PreprocessResult:
        """Compute :class:`PreprocessResult` for the selection ``S``.

        ``agg_name`` picks which aggregate output column is being debugged;
        it defaults to the first aggregate in the SELECT list.
        """
        selected = tuple(int(r) for r in selected_rows)
        if not selected:
            raise PipelineError("S is empty: select at least one suspicious result")
        for row in selected:
            if row < 0 or row >= result.num_rows:
                raise PipelineError(f"selected row {row} out of range")
        if not result.aggregate_names:
            raise PipelineError("ranked provenance requires an aggregate query")
        if agg_name is None:
            agg_name = result.aggregate_names[0]
        if agg_name not in result.aggregate_names:
            raise PipelineError(
                f"{agg_name!r} is not an aggregate output "
                f"(have: {result.aggregate_names})"
            )
        call = self._find_call(result, agg_name)
        aggregate = get_aggregate(call.func)
        base = result.fine.base

        # Evaluate the aggregate argument once over the whole post-WHERE
        # base and gather per-group slices by position — no per-group
        # table materialization or expression re-evaluation.
        values_all = _agg_arg_values(call, base)
        group_values: list[np.ndarray] = []
        group_tids: list[np.ndarray] = []
        for row in selected:
            tids = result.fine.lineage(row)
            group_values.append(values_all[base.positions_of(tids)])
            group_tids.append(tids)

        influence = leave_one_out_influence(
            group_values,
            group_tids,
            list(selected),
            aggregate,
            metric,
            fast=self.fast_influence,
        )
        F = result.fine.lineage_table_many(list(selected))
        return PreprocessResult(
            F=F,
            influence=influence,
            selected_rows=selected,
            metric=metric,
            agg_name=agg_name,
            aggregate=aggregate,
            group_values=tuple(group_values),
            group_tids=tuple(group_tids),
        )

    @staticmethod
    def _find_call(result: ResultSet, agg_name: str) -> AggregateCall:
        # Walk the SELECT items in output order, matching planner naming.
        from ..db.planner import plan_select

        plan = plan_select(result.statement, result.fine.base.schema)
        for spec in plan.aggs:
            if spec.output_name == agg_name:
                return spec.call
        raise PipelineError(f"could not resolve aggregate column {agg_name!r}")


def _agg_arg_values(call: AggregateCall, table: Table) -> np.ndarray:
    """The aggregate argument evaluated over a group's tuples."""
    if isinstance(call.arg, Star):
        return np.ones(len(table), dtype=np.float64)
    values = call.arg.eval(table)
    if values.dtype == object:
        if call.func == "count":
            return np.fromiter(
                (np.nan if v is None else 1.0 for v in values),
                dtype=np.float64,
                count=len(values),
            )
        raise PipelineError(f"{call.func}() argument is not numeric")
    return np.asarray(values, dtype=np.float64)
