"""Exception hierarchy for the DBWipes reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A table schema is malformed or a column reference cannot be bound."""


class TypeMismatchError(SchemaError):
    """A value or expression has a type incompatible with its column."""


class UnknownTableError(ReproError):
    """A query references a table that is not registered in the database."""


class UnknownColumnError(SchemaError):
    """A query or predicate references a column absent from the schema."""

    def __init__(self, column: str, available: tuple[str, ...] = ()):
        self.column = column
        self.available = tuple(available)
        hint = f" (available: {', '.join(self.available)})" if self.available else ""
        super().__init__(f"unknown column {column!r}{hint}")


class SQLSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        location = f" at position {position}" if position is not None else ""
        super().__init__(f"{message}{location}")


class PlanError(ReproError):
    """The parsed query is semantically invalid (e.g. bare column without GROUP BY)."""


class ExecutionError(ReproError):
    """Query execution failed (e.g. divide-by-zero in strict mode)."""


class AggregateError(ReproError):
    """An aggregate function was misused (unknown name, empty input, bad removal)."""


class ProvenanceError(ReproError):
    """A provenance lookup referenced a result row with no recorded lineage."""


class LearnError(ReproError):
    """A learner (tree, subgroup discovery, k-means) received invalid input."""


class NotFittedError(LearnError):
    """A model was used before ``fit`` was called."""


class PipelineError(ReproError):
    """The ranked-provenance pipeline was invoked with an inconsistent state."""


class SessionError(ReproError):
    """A frontend session method was called out of order (e.g. debug before select)."""


class ServiceError(ReproError):
    """The serving tier failed (unknown session, server-side error, bad reply).

    When raised client-side for a server-reported error, ``kind`` carries
    the remote exception class name (e.g. ``"SessionError"``). For
    ``kind == "ServerBusy"`` — the gateway shed the request under load —
    ``retry_after`` carries the server's suggested backoff in seconds.
    """

    def __init__(
        self,
        message: str,
        kind: str | None = None,
        retry_after: float | None = None,
    ):
        self.kind = kind
        self.retry_after = retry_after
        super().__init__(message)


class ProtocolError(ServiceError):
    """A wire message violated the JSON-line protocol (bad JSON, bad shape)."""


class ObservabilityError(ReproError):
    """The telemetry registry was misused (metric kind/bucket conflicts)."""


class StorageError(ReproError):
    """The durable column store failed (bad manifest, missing files, races)."""
