"""DBWipes reproduction: ranked provenance for interactive data cleaning.

This package reproduces *"A Demonstration of DBWipes: Clean as You
Query"* (Wu, Madden, Stonebraker — VLDB 2012): an end-to-end system where
a user runs an aggregate query, brushes suspicious results, and receives
a ranked list of human-readable predicates explaining the anomaly, which
can be clicked to clean the query on the fly.

Quickstart
----------

>>> from repro import Database, DBWipesSession
>>> from repro.data import generate_fec, walkthrough_query
>>> from repro.frontend import Brush
>>> table, truth = generate_fec()
>>> db = Database(); _ = db.register(table)
>>> s = DBWipesSession(db)
>>> _ = s.execute(walkthrough_query("MCCAIN"))
>>> _ = s.select_results(Brush.below(0.0))   # brush the negative spike
>>> _ = s.zoom()
>>> _ = s.select_inputs(Brush.below(-1.0))   # brush the negative donations
>>> _ = s.set_metric("too_low", threshold=0.0)
>>> report = s.debug()
>>> report.best.predicate.describe()
"memo = 'REATTRIBUTION TO SPOUSE'"

Subpackages
-----------

* :mod:`repro.db` — in-memory SQL engine with provenance capture.
* :mod:`repro.core` — the Ranked Provenance System pipeline.
* :mod:`repro.learn` — from-scratch trees / CN2-SD / k-means / NB.
* :mod:`repro.frontend` — session, brushes, forms, ASCII dashboard.
* :mod:`repro.data` — synthetic FEC / Intel Lab / clustered-anomaly data.
* :mod:`repro.baselines` — classic provenance and fixed-criteria rivals.
* :mod:`repro.service` — the concurrent multi-session TCP serving tier
  (``python -m repro serve`` / ``connect``).
* :mod:`repro.obs` — dependency-free telemetry: metrics registry,
  request tracing, cluster exposition (``python -m repro metrics``).
"""

from . import errors
from .core import (
    DebugReport,
    NotEqual,
    PipelineConfig,
    RankedProvenance,
    TooHigh,
    TooLow,
    metric_from_form,
)
from .db import Database, Predicate, Table
from .frontend import Brush, DBWipesSession

__version__ = "1.0.0"

__all__ = [
    "Brush",
    "DBWipesSession",
    "Database",
    "DebugReport",
    "NotEqual",
    "PipelineConfig",
    "Predicate",
    "RankedProvenance",
    "Table",
    "TooHigh",
    "TooLow",
    "errors",
    "metric_from_form",
    "__version__",
]
