"""Numeric attribute discretization for rule learners.

Subgroup discovery needs threshold candidates on numeric columns; three
standard strategies are provided:

* :func:`equal_width_edges` — k equally spaced cut points;
* :func:`equal_frequency_edges` — cut points at quantiles;
* :func:`mdl_entropy_edges` — Fayyad–Irani recursive entropy
  partitioning with the MDL stopping criterion (class-aware).

All return *interior* cut points sorted ascending; NaNs are ignored.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import LearnError
from .metrics import entropy


def equal_width_edges(values: np.ndarray, bins: int) -> list[float]:
    """``bins - 1`` equally spaced interior cut points over the value range."""
    if bins < 1:
        raise LearnError("bins must be >= 1")
    values = _clean(values)
    if len(values) == 0:
        return []
    lo = float(values.min())
    hi = float(values.max())
    if lo == hi:
        return []
    edges = np.linspace(lo, hi, bins + 1)[1:-1]
    return [float(edge) for edge in edges]


def equal_frequency_edges(values: np.ndarray, bins: int) -> list[float]:
    """Interior cut points at the ``i/bins`` quantiles (deduplicated)."""
    if bins < 1:
        raise LearnError("bins must be >= 1")
    values = _clean(values)
    if len(values) == 0:
        return []
    quantiles = np.linspace(0, 1, bins + 1)[1:-1]
    edges = np.quantile(values, quantiles)
    out: list[float] = []
    for edge in edges:
        edge = float(edge)
        if not out or edge > out[-1]:
            out.append(edge)
    lo = float(values.min())
    hi = float(values.max())
    return [edge for edge in out if lo < edge < hi]


def mdl_entropy_edges(
    values: np.ndarray, labels: np.ndarray, max_depth: int = 4
) -> list[float]:
    """Fayyad–Irani entropy-based cut points with the MDL stopping rule.

    Recursively picks the boundary minimizing class entropy; a cut is kept
    only when its information gain beats the MDL cost. Produces few, highly
    class-relevant cut points — ideal for anomaly thresholds like
    ``temp > 100``.
    """
    values = np.asarray(values, dtype=np.float64)
    labels = np.asarray(labels, dtype=bool)
    if values.shape != labels.shape:
        raise LearnError("values and labels must have the same shape")
    keep = ~np.isnan(values)
    values = values[keep]
    labels = labels[keep]
    if len(values) == 0:
        return []
    order = np.argsort(values, kind="stable")
    values = values[order]
    labels = labels[order]
    edges: list[float] = []
    _mdl_recurse(values, labels, edges, max_depth)
    return sorted(edges)


def _mdl_recurse(
    values: np.ndarray, labels: np.ndarray, edges: list[float], depth: int
) -> None:
    if depth <= 0 or len(values) < 4:
        return
    n = len(values)
    pos_total = float(labels.sum())
    neg_total = float(n - pos_total)
    parent_entropy = entropy(pos_total, neg_total)
    if parent_entropy == 0.0:
        return
    # Candidate boundaries: positions where the value changes.
    change = np.flatnonzero(values[1:] != values[:-1]) + 1
    if len(change) == 0:
        return
    pos_cum = np.cumsum(labels.astype(np.float64))
    best_gain = -1.0
    best_split = -1
    best_stats: tuple[float, float, float, float] | None = None
    for split in change:
        left_pos = pos_cum[split - 1]
        left_neg = split - left_pos
        right_pos = pos_total - left_pos
        right_neg = neg_total - left_neg
        left_entropy = entropy(left_pos, left_neg)
        right_entropy = entropy(right_pos, right_neg)
        weighted = (split / n) * left_entropy + ((n - split) / n) * right_entropy
        gain = parent_entropy - weighted
        if gain > best_gain:
            best_gain = gain
            best_split = split
            best_stats = (left_pos, left_neg, right_pos, right_neg)
    if best_split < 0 or best_stats is None:
        return
    left_pos, left_neg, right_pos, right_neg = best_stats
    # MDL criterion (Fayyad & Irani 1993). Classes present in each part:
    k = 2 if 0 < pos_total < n else 1
    k_left = int(left_pos > 0) + int(left_neg > 0)
    k_right = int(right_pos > 0) + int(right_neg > 0)
    left_entropy = entropy(left_pos, left_neg)
    right_entropy = entropy(right_pos, right_neg)
    delta = (
        math.log2(3**k - 2)
        - (k * parent_entropy - k_left * left_entropy - k_right * right_entropy)
    )
    threshold = (math.log2(n - 1) + delta) / n
    if best_gain <= threshold:
        return
    cut = float((values[best_split - 1] + values[best_split]) / 2.0)
    edges.append(cut)
    _mdl_recurse(values[:best_split], labels[:best_split], edges, depth - 1)
    _mdl_recurse(values[best_split:], labels[best_split:], edges, depth - 1)


def bin_index(values: np.ndarray, edges: list[float]) -> np.ndarray:
    """Assign each value the index of its bin given interior ``edges``.

    With ``k`` edges there are ``k + 1`` bins; NaNs map to bin ``-1``.
    """
    values = np.asarray(values, dtype=np.float64)
    out = np.searchsorted(np.asarray(edges, dtype=np.float64), values, side="right")
    out = out.astype(np.int64)
    out[np.isnan(values)] = -1
    return out


def _clean(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    return values[~np.isnan(values)]
