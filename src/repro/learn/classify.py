"""Naive Bayes over mixed numeric/categorical table columns.

The paper's Dataset Enumerator mentions *classification-based* cleaning
of D' alongside clustering: "train classifiers on D' and remove elements
that are not consistent with the classifier". We provide:

* :class:`MixedNaiveBayes` — a two-class Gaussian/categorical NB for the
  labeled setting (D' vs rest-of-F);
* :meth:`MixedNaiveBayes.density_score` — the positive-class
  log-likelihood, used one-class style to drop the least-typical members
  of D'.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from ..db.table import Table
from ..errors import LearnError, NotFittedError

_MIN_STD = 1e-6


class MixedNaiveBayes:
    """Binary naive Bayes: Gaussian numeric features, smoothed categorical."""

    def __init__(self, laplace: float = 1.0):
        if laplace <= 0:
            raise LearnError("laplace smoothing must be positive")
        self.laplace = laplace
        self._fitted = False
        self._features: tuple[str, ...] = ()
        self._numeric: dict[str, bool] = {}
        self._priors: dict[bool, float] = {}
        # numeric: feature -> class -> (mean, std)
        self._gaussians: dict[str, dict[bool, tuple[float, float]]] = {}
        # categorical: feature -> class -> {value: prob}, plus default prob
        self._categorical: dict[str, dict[bool, dict[Any, float]]] = {}
        self._cat_default: dict[str, dict[bool, float]] = {}

    def fit(
        self,
        table: Table,
        labels: np.ndarray,
        features: Sequence[str] | None = None,
    ) -> "MixedNaiveBayes":
        """Fit class priors and per-feature likelihoods."""
        labels = np.asarray(labels, dtype=bool)
        if len(labels) != len(table):
            raise LearnError("labels length must match table length")
        if len(table) == 0:
            raise LearnError("cannot fit on an empty table")
        if features is None:
            features = table.schema.names
        self._features = tuple(features)
        self._numeric = {
            name: table.schema.type_of(name).is_numeric for name in self._features
        }
        n = len(table)
        n_pos = int(labels.sum())
        # Laplace-smoothed priors keep both classes representable.
        self._priors = {
            True: (n_pos + self.laplace) / (n + 2 * self.laplace),
            False: (n - n_pos + self.laplace) / (n + 2 * self.laplace),
        }
        for name in self._features:
            values = table.column(name)
            if self._numeric[name]:
                self._gaussians[name] = {}
                for cls in (True, False):
                    cls_values = np.asarray(values, dtype=np.float64)[labels == cls]
                    cls_values = cls_values[~np.isnan(cls_values)]
                    if len(cls_values) == 0:
                        self._gaussians[name][cls] = (0.0, 1.0)
                        continue
                    mean = float(cls_values.mean())
                    std = float(cls_values.std())
                    self._gaussians[name][cls] = (mean, max(std, _MIN_STD))
            else:
                self._categorical[name] = {}
                self._cat_default[name] = {}
                distinct = {v for v in values if v is not None}
                v_count = max(len(distinct), 1)
                for cls in (True, False):
                    counts: dict[Any, int] = {}
                    total = 0
                    for value, label in zip(values, labels):
                        if label != cls or value is None:
                            continue
                        counts[value] = counts.get(value, 0) + 1
                        total += 1
                    denom = total + self.laplace * (v_count + 1)
                    self._categorical[name][cls] = {
                        value: (count + self.laplace) / denom
                        for value, count in counts.items()
                    }
                    self._cat_default[name][cls] = self.laplace / denom
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("MixedNaiveBayes.fit has not been called")

    def log_likelihood(self, table: Table, cls: bool) -> np.ndarray:
        """Per-row log P(x | cls) + log P(cls)."""
        self._require_fitted()
        out = np.full(len(table), math.log(self._priors[cls]), dtype=np.float64)
        for name in self._features:
            values = table.column(name)
            if self._numeric[name]:
                mean, std = self._gaussians[name][cls]
                x = np.asarray(values, dtype=np.float64)
                contribution = (
                    -0.5 * ((x - mean) / std) ** 2
                    - math.log(std)
                    - 0.5 * math.log(2 * math.pi)
                )
                contribution = np.where(np.isnan(x), 0.0, contribution)
                out += contribution
            else:
                probs = self._categorical[name][cls]
                default = self._cat_default[name][cls]
                for i, value in enumerate(values):
                    if value is None:
                        continue
                    out[i] += math.log(probs.get(value, default))
        return out

    def predict_proba(self, table: Table) -> np.ndarray:
        """P(positive | x) per row."""
        self._require_fitted()
        log_pos = self.log_likelihood(table, True)
        log_neg = self.log_likelihood(table, False)
        peak = np.maximum(log_pos, log_neg)
        pos = np.exp(log_pos - peak)
        neg = np.exp(log_neg - peak)
        return pos / (pos + neg)

    def predict(self, table: Table) -> np.ndarray:
        """Boolean positive-class prediction per row."""
        return self.predict_proba(table) >= 0.5

    def density_score(self, table: Table) -> np.ndarray:
        """Positive-class log-likelihood (no prior): one-class typicality.

        Used to clean D': members in the low tail are "not consistent with
        the classifier" trained on D' itself.
        """
        self._require_fitted()
        return self.log_likelihood(table, True) - math.log(self._priors[True])
