"""Rules: predicates annotated with coverage and quality statistics.

A :class:`Rule` wraps a :class:`~repro.db.predicate.Predicate` (so it
inherits SQL rendering and vectorized evaluation for free) and records
how well it separates the positive class. Decision-tree positive paths
and CN2-SD subgroups both produce rules, giving the predicate enumerator
and ranker a single currency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..db.predicate import Predicate
from ..db.table import Table
from .metrics import Confusion, confusion


@dataclass(frozen=True)
class Rule:
    """A conjunctive description of (part of) the positive class."""

    predicate: Predicate
    #: Weighted number of rows the rule covers.
    n_covered: float = 0.0
    #: Weighted number of positive rows the rule covers.
    n_pos_covered: float = 0.0
    #: Learner-specific quality (WRAcc for subgroups, leaf purity for trees).
    quality: float = 0.0
    #: Which learner produced the rule (for reports and dedup provenance).
    source: str = ""
    extra: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def precision(self) -> float:
        """Covered-positive fraction."""
        return self.n_pos_covered / self.n_covered if self.n_covered else 0.0

    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of rows the rule covers."""
        return self.predicate.mask(table)

    def evaluate(self, table: Table, labels: np.ndarray) -> Confusion:
        """Confusion counts of this rule as a binary classifier on ``table``."""
        return confusion(labels, self.mask(table))

    def describe(self) -> str:
        """Human-readable rule text."""
        return self.predicate.describe()

    def __str__(self) -> str:
        return (
            f"{self.describe()}  "
            f"[cov={self.n_covered:.0f}, prec={self.precision:.2f}, q={self.quality:.4f}]"
        )


def dedupe_rules(rules: list[Rule]) -> list[Rule]:
    """Drop rules with identical predicates, keeping the highest quality one."""
    best: dict[Predicate, Rule] = {}
    order: list[Predicate] = []
    for rule in rules:
        existing = best.get(rule.predicate)
        if existing is None:
            best[rule.predicate] = rule
            order.append(rule.predicate)
        elif rule.quality > existing.quality:
            best[rule.predicate] = rule
    return [best[predicate] for predicate in order]
