"""CART-style decision trees over :class:`~repro.db.table.Table` features.

The Predicate Enumerator (paper §2.2.2) builds *several* trees per
candidate dataset using "m standard splitting and pruning strategies
(e.g., gini, gain ratio)". This implementation provides:

* splitting criteria: ``gini``, ``entropy``, ``gain_ratio``;
* binary splits on numeric columns (``attr <= t``) and categorical
  columns (``attr == v`` vs rest);
* weighted samples (so the Preprocessor's influence scores can bias the
  tree toward high-influence tuples);
* reduced-error pruning against a held-out set and cost-complexity
  pruning;
* extraction of positive root-to-leaf paths as
  :class:`~repro.learn.rules.Rule` objects whose predicates render to SQL.

Split finding runs in one of two algorithms over a shared
:class:`~repro.learn.split_index.SplitIndex` of candidate thresholds:

* ``"hist"`` (default): per node, accumulate per-bin weight /
  positive-weight / count histograms (weighted ``np.bincount``) and
  score **every** threshold of a column in one ``cumsum`` pass;
* ``"exact"``: the reference per-threshold masking path — one boolean
  mask and one weight reduction per candidate threshold. It scores the
  identical candidate set, so ``tests/test_tree_parity.py`` can assert
  the histogram path picks the same splits with the same gains.

Ties (equal-gain splits) are broken deterministically: lowest column
name first, then lowest threshold / lowest categorical value — never by
feature order or dict insertion order.

NaN feature values route to the right (no-match) branch; ``None``
categorical values never equal a split value, so they also route right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..db.predicate import CategoricalClause, Clause, NumericClause, Predicate
from ..db.table import Table
from ..errors import LearnError, NotFittedError
from .metrics import entropy, gini_impurity, split_info
from .rules import Rule
from .split_index import CategoricalColumnIndex, NumericColumnIndex, SplitIndex

CRITERIA = ("gini", "entropy", "gain_ratio")
ALGORITHMS = ("hist", "exact")

#: Scores within this (relative) distance of a column's / node's best are
#: treated as tied and resolved by the deterministic tie-break. The
#: tolerance absorbs float-associativity noise between the histogram and
#: exact paths (bin-cumsum vs per-mask reductions), so both pick the
#: same split.
TIE_REL_TOL = 1e-9


def _tie_cutoff(best_score: float) -> float:
    """Scores at or above this value are considered tied with ``best_score``."""
    return best_score - TIE_REL_TOL * max(1.0, abs(best_score))


@dataclass(frozen=True)
class NumericSplit:
    """``attr <= threshold`` goes left; NaN and larger values go right."""

    attr: str
    threshold: float

    def go_left(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask: rows routed to the left child."""
        with np.errstate(invalid="ignore"):
            mask = np.asarray(values <= self.threshold, dtype=bool)
        mask[np.isnan(np.asarray(values, dtype=np.float64))] = False
        return mask

    def left_clause(self) -> Clause:
        """The clause describing the left branch."""
        return NumericClause(self.attr, None, self.threshold, hi_inclusive=True)

    def right_clause(self) -> Clause:
        """The clause describing the right branch."""
        return NumericClause(self.attr, self.threshold, None, lo_inclusive=False)

    def describe(self) -> str:
        """Human-readable split text."""
        return f"{self.attr} <= {self.threshold:.6g}"


@dataclass(frozen=True)
class CategoricalSplit:
    """``attr == value`` goes left; everything else (incl. NULL) goes right."""

    attr: str
    value: Any

    def go_left(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask: rows routed to the left child."""
        if values.dtype == object:
            return np.fromiter(
                (v is not None and v == self.value for v in values),
                dtype=bool,
                count=len(values),
            )
        return np.asarray(values == self.value, dtype=bool)

    def left_clause(self) -> Clause:
        """The clause describing the left branch."""
        return CategoricalClause(self.attr, frozenset([self.value]))

    def right_clause(self) -> Clause:
        """The clause describing the right branch."""
        return CategoricalClause(self.attr, frozenset([self.value]), negated=True)

    def describe(self) -> str:
        """Human-readable split text."""
        return f"{self.attr} == {self.value!r}"


Split = NumericSplit | CategoricalSplit


class _Node:
    """A tree node; ``split is None`` means leaf."""

    __slots__ = (
        "split", "left", "right", "n_samples", "weight", "pos_weight", "depth",
    )

    def __init__(
        self,
        n_samples: int,
        weight: float,
        pos_weight: float,
        depth: int,
    ):
        self.split: Split | None = None
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.n_samples = n_samples
        self.weight = weight
        self.pos_weight = pos_weight
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.split is None

    @property
    def prob_positive(self) -> float:
        return self.pos_weight / self.weight if self.weight > 0 else 0.0

    @property
    def prediction(self) -> bool:
        return self.prob_positive >= 0.5

    def make_leaf(self) -> None:
        self.split = None
        self.left = None
        self.right = None


class _FitContext:
    """Everything one ``fit`` needs, bundled so ``_build`` recursion and
    the parity tests can drive split finding without re-deriving state."""

    __slots__ = ("labels", "weights", "index", "arrays", "algorithm")

    def __init__(
        self,
        labels: np.ndarray,
        weights: np.ndarray,
        index: SplitIndex,
        arrays: dict[str, np.ndarray] | None,
        algorithm: str,
    ):
        self.labels = labels
        self.weights = weights
        self.index = index
        #: Raw column arrays; only materialized for the exact algorithm
        #: (the histogram path routes rows purely through bin codes).
        self.arrays = arrays
        self.algorithm = algorithm


class DecisionTree:
    """A binary-classification CART tree with pluggable split criteria."""

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int = 6,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_score: float = 1e-9,
        max_thresholds: int = 32,
        max_categories: int = 32,
        algorithm: str = "hist",
    ):
        if criterion not in CRITERIA:
            raise LearnError(f"unknown criterion {criterion!r}; choose from {CRITERIA}")
        if algorithm not in ALGORITHMS:
            raise LearnError(
                f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
            )
        if max_depth < 1:
            raise LearnError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise LearnError("min_samples_leaf must be >= 1")
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = max(min_samples_split, 2)
        self.min_samples_leaf = min_samples_leaf
        self.min_score = min_score
        self.max_thresholds = max_thresholds
        self.max_categories = max_categories
        self.algorithm = algorithm
        self._root: _Node | None = None
        self._features: tuple[str, ...] = ()
        self._numeric: dict[str, bool] = {}

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    def fit(
        self,
        table: Table,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
        features: Sequence[str] | None = None,
        split_index: SplitIndex | None = None,
    ) -> "DecisionTree":
        """Fit the tree on ``table`` with boolean ``labels``.

        ``features`` defaults to every column; ``sample_weight`` defaults
        to uniform. ``split_index`` supplies precomputed candidate
        thresholds and bin codes (row-aligned with ``table``); when
        omitted, one is built from ``table`` — passing a shared index is
        what lets K candidate × S strategy fits skip re-deriving it.
        """
        ctx, n = self._fit_context(table, labels, sample_weight, features, split_index)
        indices = np.arange(n, dtype=np.int64)
        self._root = self._build(ctx, indices, depth=0)
        return self

    def _fit_context(
        self,
        table: Table,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
        features: Sequence[str] | None = None,
        split_index: SplitIndex | None = None,
    ) -> tuple[_FitContext, int]:
        """Validate inputs and bundle fit state (also used by parity tests)."""
        labels = np.asarray(labels, dtype=bool)
        if len(labels) != len(table):
            raise LearnError("labels length must match table length")
        if len(table) == 0:
            raise LearnError("cannot fit a tree on an empty table")
        if sample_weight is None:
            weights = np.ones(len(table), dtype=np.float64)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64)
            if len(weights) != len(table):
                raise LearnError("sample_weight length must match table length")
            if np.any(weights < 0):
                raise LearnError("sample_weight must be non-negative")
        if features is None:
            features = table.schema.names
        self._features = tuple(features)
        self._numeric = {
            name: table.schema.type_of(name).is_numeric for name in self._features
        }
        if split_index is None:
            split_index = SplitIndex.build(
                table, self._features, max_thresholds=self.max_thresholds
            )
        else:
            if split_index.n_rows != len(table):
                raise LearnError(
                    f"split index covers {split_index.n_rows} rows, "
                    f"table has {len(table)}"
                )
            if split_index.max_thresholds != self.max_thresholds:
                raise LearnError(
                    f"split index was built with max_thresholds="
                    f"{split_index.max_thresholds}, tree wants "
                    f"{self.max_thresholds}"
                )
            missing = [f for f in self._features if f not in split_index.columns]
            if missing:
                raise LearnError(f"split index is missing columns {missing}")
        arrays = None
        if self.algorithm == "exact":
            arrays = {name: table.column(name) for name in self._features}
        ctx = _FitContext(labels, weights, split_index, arrays, self.algorithm)
        return ctx, len(table)

    def _build(self, ctx: _FitContext, indices: np.ndarray, depth: int) -> _Node:
        node_weights = ctx.weights[indices]
        node_labels = ctx.labels[indices]
        weight = float(node_weights.sum())
        pos_weight = float(node_weights[node_labels].sum())
        node = _Node(len(indices), weight, pos_weight, depth)
        if (
            depth >= self.max_depth
            or len(indices) < self.min_samples_split
            or pos_weight <= 0
            or pos_weight >= weight
        ):
            return node
        best = self._best_split(ctx, indices)
        if best is None:
            return node
        split, score = best
        if score < self.min_score:
            return node
        left_mask = self._left_mask(ctx, split, indices)
        left_indices = indices[left_mask]
        right_indices = indices[~left_mask]
        if (
            len(left_indices) < self.min_samples_leaf
            or len(right_indices) < self.min_samples_leaf
        ):
            return node
        node.split = split
        node.left = self._build(ctx, left_indices, depth + 1)
        node.right = self._build(ctx, right_indices, depth + 1)
        return node

    def _left_mask(
        self, ctx: _FitContext, split: Split, indices: np.ndarray
    ) -> np.ndarray:
        """Rows of the node routed left, via raw values (exact) or codes."""
        if ctx.arrays is not None:
            return split.go_left(ctx.arrays[split.attr][indices])
        column = ctx.index.column(split.attr)
        codes = column.codes[indices]
        if isinstance(split, NumericSplit):
            return codes <= column.code_of(split.threshold)
        return codes == column.code_of(split.value)

    def _best_split(
        self, ctx: _FitContext, indices: np.ndarray
    ) -> tuple[Split, float] | None:
        node_labels = ctx.labels[indices]
        node_weights = ctx.weights[indices]
        total_w = float(node_weights.sum())
        total_pos = float(node_weights[node_labels].sum())
        pos_weights = np.where(node_labels, node_weights, 0.0)
        #: (split, score, intra-column tie key) per feature.
        found: list[tuple[Split, float, Any]] = []
        for attr in self._features:
            column = ctx.index.column(attr)
            if self._numeric[attr]:
                if ctx.algorithm == "hist":
                    candidate = self._best_numeric_split_hist(
                        column, indices, node_weights, pos_weights, total_w, total_pos
                    )
                else:
                    candidate = self._best_numeric_split_exact(
                        column,
                        ctx.arrays[attr][indices],
                        node_weights,
                        pos_weights,
                        total_w,
                        total_pos,
                    )
            else:
                if ctx.algorithm == "hist":
                    candidate = self._best_categorical_split_hist(
                        column, indices, node_weights, pos_weights, total_w, total_pos
                    )
                else:
                    candidate = self._best_categorical_split_exact(
                        column,
                        ctx.arrays[attr][indices],
                        node_weights,
                        pos_weights,
                        total_w,
                        total_pos,
                    )
            if candidate is not None:
                found.append(candidate)
        if not found:
            return None
        # Deterministic cross-column selection: scores within TIE_REL_TOL
        # of the best are tied; ties resolve to the lowest column name
        # (the intra-column key never compares across columns).
        best_score = max(score for __, score, __ in found)
        cutoff = _tie_cutoff(best_score)
        tied = [entry for entry in found if entry[1] >= cutoff]
        split, score, __ = min(tied, key=lambda entry: (entry[0].attr, entry[2]))
        return split, score

    # -- histogram kernels ---------------------------------------------

    def _best_numeric_split_hist(
        self,
        column: NumericColumnIndex,
        indices: np.ndarray,
        weights: np.ndarray,
        pos_weights: np.ndarray,
        total_w: float,
        total_pos: float,
    ) -> tuple[Split, float, float] | None:
        """Score all thresholds in one binned cumulative-sum pass."""
        n_thresholds = len(column.thresholds)
        if n_thresholds == 0:
            return None
        codes, hist_n, hist_w, hist_p = _node_histograms(
            column, indices, weights, pos_weights
        )
        # Left stats of threshold b are the cumulative sums of bins 0..b
        # (NaN rows live in the rightmost bin, so they never count left).
        left_n = np.cumsum(hist_n)[:n_thresholds]
        left_w = np.cumsum(hist_w)[:n_thresholds]
        left_p = np.cumsum(hist_p)[:n_thresholds]
        n_node = len(codes)
        valid = (left_n >= self.min_samples_leaf) & (
            (n_node - left_n) >= self.min_samples_leaf
        )
        if not valid.any():
            return None
        thresholds = column.thresholds[valid]
        left_w = left_w[valid]
        left_p = left_p[valid]
        scores = self._score_children(
            total_w, total_pos, left_w, left_p, total_w - left_w, total_pos - left_p
        )
        best = _lowest_tied(scores)
        threshold = float(thresholds[best])
        return NumericSplit(column.attr, threshold), float(scores[best]), threshold

    def _best_categorical_split_hist(
        self,
        column: CategoricalColumnIndex,
        indices: np.ndarray,
        weights: np.ndarray,
        pos_weights: np.ndarray,
        total_w: float,
        total_pos: float,
    ) -> tuple[Split, float, int] | None:
        """Score all candidate values from per-value histograms at once."""
        n_values = len(column.values)
        if n_values < 2:
            return None
        codes, hist_n, hist_w, hist_p = _node_histograms(
            column, indices, weights, pos_weights
        )
        present = np.flatnonzero(hist_n[:n_values] > 0)
        if len(present) < 2:
            return None
        if len(present) > self.max_categories:
            # Heaviest values first; equal weights resolve to lowest code.
            order = np.lexsort((present, -hist_w[present]))
            present = np.sort(present[order[: self.max_categories]])
        left_n = hist_n[present]
        n_node = len(codes)
        valid = (left_n >= self.min_samples_leaf) & (
            (n_node - left_n) >= self.min_samples_leaf
        )
        if not valid.any():
            return None
        candidates = present[valid]
        left_w = hist_w[candidates]
        left_p = hist_p[candidates]
        scores = self._score_children(
            total_w, total_pos, left_w, left_p, total_w - left_w, total_pos - left_p
        )
        best = _lowest_tied(scores)
        code = int(candidates[best])
        split = CategoricalSplit(column.attr, column.values[code])
        return split, float(scores[best]), code

    # -- exact per-threshold reference paths ---------------------------

    def _best_numeric_split_exact(
        self,
        column: NumericColumnIndex,
        values: np.ndarray,
        weights: np.ndarray,
        pos_weights: np.ndarray,
        total_w: float,
        total_pos: float,
    ) -> tuple[Split, float, float] | None:
        """Reference path: one mask + reduction per candidate threshold."""
        if len(column.thresholds) == 0:
            return None
        values = np.asarray(values, dtype=np.float64)
        n_node = len(values)
        scored: list[tuple[float, float]] = []  # (score, threshold)
        for threshold in column.thresholds:
            with np.errstate(invalid="ignore"):
                left = values <= threshold  # NaN compares False: routes right
            left_count = int(left.sum())
            if (
                left_count < self.min_samples_leaf
                or (n_node - left_count) < self.min_samples_leaf
            ):
                continue
            left_w = float(weights[left].sum())
            left_p = float(pos_weights[left].sum())
            score = float(
                self._score_children(
                    total_w,
                    total_pos,
                    np.array([left_w]),
                    np.array([left_p]),
                    np.array([total_w - left_w]),
                    np.array([total_pos - left_p]),
                )[0]
            )
            scored.append((score, float(threshold)))
        if not scored:
            return None
        cutoff = _tie_cutoff(max(score for score, __ in scored))
        score, threshold = min(
            (entry for entry in scored if entry[0] >= cutoff),
            key=lambda entry: entry[1],
        )
        return NumericSplit(column.attr, threshold), score, threshold

    def _best_categorical_split_exact(
        self,
        column: CategoricalColumnIndex,
        values: np.ndarray,
        weights: np.ndarray,
        pos_weights: np.ndarray,
        total_w: float,
        total_pos: float,
    ) -> tuple[Split, float, int] | None:
        """Reference path: one equality mask + reduction per value."""
        # Per-value weight accumulation (row order, matching the hist
        # path's weighted bincount).
        weight_by_value: dict[Any, float] = {}
        count_by_value: dict[Any, int] = {}
        for i in range(len(values)):
            value = values[i]
            if value is None:
                continue
            weight_by_value[value] = weight_by_value.get(value, 0.0) + weights[i]
            count_by_value[value] = count_by_value.get(value, 0) + 1
        if len(weight_by_value) < 2:
            return None
        candidates = sorted(
            weight_by_value, key=lambda value: (-weight_by_value[value], value)
        )[: self.max_categories]
        n_node = len(values)
        scored: list[tuple[float, int]] = []  # (score, value code)
        for value in candidates:
            left_count = count_by_value[value]
            if (
                left_count < self.min_samples_leaf
                or (n_node - left_count) < self.min_samples_leaf
            ):
                continue
            left = np.fromiter(
                (v is not None and v == value for v in values),
                dtype=bool,
                count=n_node,
            )
            left_w = float(weights[left].sum())
            left_p = float(pos_weights[left].sum())
            score = float(
                self._score_children(
                    total_w,
                    total_pos,
                    np.array([left_w]),
                    np.array([left_p]),
                    np.array([total_w - left_w]),
                    np.array([total_pos - left_p]),
                )[0]
            )
            scored.append((score, column.code_of(value)))
        if not scored:
            return None
        cutoff = _tie_cutoff(max(score for score, __ in scored))
        score, code = min(
            (entry for entry in scored if entry[0] >= cutoff),
            key=lambda entry: entry[1],
        )
        return CategoricalSplit(column.attr, column.values[code]), score, code

    def _score_children(
        self,
        total_w: float,
        total_pos: float,
        left_w: np.ndarray,
        left_p: np.ndarray,
        right_w: np.ndarray,
        right_p: np.ndarray,
    ) -> np.ndarray:
        """Vectorized split score; higher is better."""
        if self.criterion == "gini":
            parent = gini_impurity(total_pos, total_w - total_pos)
            child = (
                left_w * _gini_vec(left_p, left_w)
                + right_w * _gini_vec(right_p, right_w)
            ) / total_w
            return parent - child
        parent = entropy(total_pos, total_w - total_pos)
        child = (
            left_w * _entropy_vec(left_p, left_w)
            + right_w * _entropy_vec(right_p, right_w)
        ) / total_w
        gain = parent - child
        if self.criterion == "entropy":
            return gain
        info = np.array(
            [split_info(lw, rw) for lw, rw in zip(left_w, right_w)], dtype=np.float64
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(info > 0, gain / info, 0.0)
        return ratio

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------

    def _require_fitted(self) -> _Node:
        if self._root is None:
            raise NotFittedError("DecisionTree.fit has not been called")
        return self._root

    def predict_proba(self, table: Table) -> np.ndarray:
        """Probability of the positive class for every row."""
        root = self._require_fitted()
        arrays = {name: table.column(name) for name in self._features}
        out = np.empty(len(table), dtype=np.float64)
        indices = np.arange(len(table), dtype=np.int64)
        self._predict_into(root, arrays, indices, out)
        return out

    def predict(self, table: Table) -> np.ndarray:
        """Boolean positive-class prediction for every row."""
        return self.predict_proba(table) >= 0.5

    def _predict_into(
        self,
        node: _Node,
        arrays: dict[str, np.ndarray],
        indices: np.ndarray,
        out: np.ndarray,
    ) -> None:
        if node.is_leaf or len(indices) == 0:
            out[indices] = node.prob_positive
            return
        assert node.split is not None and node.left is not None and node.right is not None
        values = arrays[node.split.attr][indices]
        left_mask = node.split.go_left(values)
        self._predict_into(node.left, arrays, indices[left_mask], out)
        self._predict_into(node.right, arrays, indices[~left_mask], out)

    # ------------------------------------------------------------------
    # pruning
    # ------------------------------------------------------------------

    def prune_reduced_error(self, table: Table, labels: np.ndarray) -> "DecisionTree":
        """Reduced-error pruning against a validation set (bottom-up).

        Collapses any internal node whose leaf-ified validation error would
        not exceed its subtree's validation error.
        """
        root = self._require_fitted()
        labels = np.asarray(labels, dtype=bool)
        arrays = {name: table.column(name) for name in self._features}
        indices = np.arange(len(table), dtype=np.int64)
        self._rep_prune(root, arrays, labels, indices)
        return self

    def _rep_prune(
        self,
        node: _Node,
        arrays: dict[str, np.ndarray],
        labels: np.ndarray,
        indices: np.ndarray,
    ) -> float:
        """Returns the subtree's validation error count; prunes bottom-up."""
        node_labels = labels[indices]
        leaf_error = float(
            (node_labels != node.prediction).sum()
        )
        if node.is_leaf:
            return leaf_error
        assert node.split is not None and node.left is not None and node.right is not None
        values = arrays[node.split.attr][indices]
        left_mask = node.split.go_left(values)
        subtree_error = self._rep_prune(
            node.left, arrays, labels, indices[left_mask]
        ) + self._rep_prune(node.right, arrays, labels, indices[~left_mask])
        if leaf_error <= subtree_error:
            node.make_leaf()
            return leaf_error
        return subtree_error

    def cost_complexity_prune(self, alpha: float) -> "DecisionTree":
        """Weakest-link pruning: collapse internal nodes whose effective
        alpha is at most ``alpha`` (computed on training weights)."""
        root = self._require_fitted()
        while True:
            weakest = self._weakest_link(root)
            if weakest is None:
                break
            node, effective_alpha = weakest
            if effective_alpha > alpha:
                break
            node.make_leaf()
        return self

    def _weakest_link(self, root: _Node) -> tuple[_Node, float] | None:
        best: tuple[_Node, float] | None = None
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            assert node.left is not None and node.right is not None
            leaf_cost = min(node.pos_weight, node.weight - node.pos_weight)
            subtree_cost, n_leaves = _subtree_cost(node)
            if n_leaves <= 1:
                continue
            effective_alpha = (leaf_cost - subtree_cost) / (n_leaves - 1)
            if best is None or effective_alpha < best[1]:
                best = (node, effective_alpha)
            stack.append(node.left)
            stack.append(node.right)
        return best

    # ------------------------------------------------------------------
    # structure and rule extraction
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Maximum leaf depth."""
        root = self._require_fitted()
        return _max_depth(root)

    @property
    def n_leaves(self) -> int:
        """Number of leaves."""
        root = self._require_fitted()
        __, n_leaves = _subtree_cost(root)
        return n_leaves

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        root = self._require_fitted()
        count = 0
        stack = [root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                stack.append(node.left)
                stack.append(node.right)
        return count

    def positive_rules(self, min_precision: float = 0.0) -> list[Rule]:
        """Rules for every positive-predicting leaf (root-to-leaf paths).

        Each path's clauses are conjoined and simplified; unsatisfiable
        paths (impossible with consistent splits) are skipped defensively.
        """
        root = self._require_fitted()
        rules: list[Rule] = []
        path: list[Clause] = []

        def walk(node: _Node) -> None:
            if node.is_leaf:
                if node.prediction and node.prob_positive >= min_precision:
                    predicate = Predicate(list(path)).simplify()
                    if predicate is None or predicate.is_true:
                        return
                    rules.append(
                        Rule(
                            predicate=predicate,
                            n_covered=node.weight,
                            n_pos_covered=node.pos_weight,
                            quality=node.prob_positive,
                            source=f"tree:{self.criterion}",
                            extra={"depth": node.depth},
                        )
                    )
                return
            assert node.split is not None and node.left is not None and node.right is not None
            path.append(node.split.left_clause())
            walk(node.left)
            path.pop()
            path.append(node.split.right_clause())
            walk(node.right)
            path.pop()

        walk(root)
        return rules

    def to_text(self) -> str:
        """An indented text rendering of the tree."""
        root = self._require_fitted()
        lines: list[str] = []

        def walk(node: _Node, prefix: str) -> None:
            if node.is_leaf:
                lines.append(
                    f"{prefix}leaf p={node.prob_positive:.3f} "
                    f"(n={node.n_samples}, w={node.weight:.1f})"
                )
                return
            assert node.split is not None and node.left is not None and node.right is not None
            lines.append(f"{prefix}if {node.split.describe()}:")
            walk(node.left, prefix + "  ")
            lines.append(f"{prefix}else:")
            walk(node.right, prefix + "  ")

        walk(root, "")
        return "\n".join(lines)


def _node_histograms(
    column: NumericColumnIndex | CategoricalColumnIndex,
    indices: np.ndarray,
    weights: np.ndarray,
    pos_weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-bin (count, weight, positive-weight) histograms of one node.

    Returns ``(codes, hist_n, hist_w, hist_p)``; NaN/NULL rows land in
    the rightmost bin by construction of the column's codes.
    """
    codes = column.codes[indices]
    n_bins = column.n_bins
    hist_n = np.bincount(codes, minlength=n_bins)
    # bincount accumulates weights sequentially in row order — the same
    # float-sum order as the exact path's dict accumulation, which the
    # tie-break parity relies on.
    hist_w = np.bincount(codes, weights=weights, minlength=n_bins)
    hist_p = np.bincount(codes, weights=pos_weights, minlength=n_bins)
    return codes, hist_n, hist_w, hist_p


def _lowest_tied(scores: np.ndarray) -> int:
    """Index of the first (lowest threshold/code) score tied with the max."""
    cutoff = _tie_cutoff(float(scores.max()))
    return int(np.flatnonzero(scores >= cutoff)[0])


def _gini_vec(pos: np.ndarray, total: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(total > 0, pos / total, 0.0)
    return 1.0 - p * p - (1.0 - p) * (1.0 - p)


def _entropy_vec(pos: np.ndarray, total: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(total > 0, pos / total, 0.0)
    out = np.zeros_like(p)
    for q in (p, 1.0 - p):
        positive = q > 0
        out[positive] -= q[positive] * np.log2(q[positive])
    return out


def _subtree_cost(node: _Node) -> tuple[float, int]:
    """(weighted misclassification cost, leaf count) of a subtree."""
    if node.is_leaf:
        return min(node.pos_weight, node.weight - node.pos_weight), 1
    assert node.left is not None and node.right is not None
    left_cost, left_leaves = _subtree_cost(node.left)
    right_cost, right_leaves = _subtree_cost(node.right)
    return left_cost + right_cost, left_leaves + right_leaves


def _max_depth(node: _Node) -> int:
    if node.is_leaf:
        return 0
    assert node.left is not None and node.right is not None
    return 1 + max(_max_depth(node.left), _max_depth(node.right))
