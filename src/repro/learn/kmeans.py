"""K-means clustering (k-means++ initialization + Lloyd's algorithm).

The Dataset Enumerator's first job is to *clean* the user's example set
``D'`` by "identifying a self-consistent subset" (paper §2.2.2); one of
the two techniques the authors name is clustering. This module provides
the primitives: standardization, k-means, silhouette scoring for model
selection, and the dominant-cluster mask used by the cleaner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LearnError


@dataclass(frozen=True)
class KMeansResult:
    """Fitted clustering: centers, hard assignments, and inertia."""

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return len(self.centers)

    def cluster_sizes(self) -> np.ndarray:
        """Points per cluster."""
        return np.bincount(self.labels, minlength=self.k)


def standardize(X: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Z-score each column; zero-variance columns pass through centered.

    Returns ``(Z, mean, std)`` where ``std`` has zeros replaced by one.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise LearnError("standardize expects a 2-D array")
    mean = np.nanmean(X, axis=0) if len(X) else np.zeros(X.shape[1])
    std = np.nanstd(X, axis=0) if len(X) else np.ones(X.shape[1])
    std = np.where(std > 0, std, 1.0)
    return (X - mean) / std, mean, std


def kmeans(
    X: np.ndarray,
    k: int,
    seed: int = 0,
    max_iter: int = 100,
    tol: float = 1e-7,
    n_init: int = 4,
) -> KMeansResult:
    """Cluster rows of ``X`` into ``k`` groups; best of ``n_init`` restarts."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise LearnError("kmeans expects a 2-D array")
    n = len(X)
    if k < 1:
        raise LearnError("k must be >= 1")
    if n < k:
        raise LearnError(f"cannot form {k} clusters from {n} points")
    rng = np.random.default_rng(seed)
    best: KMeansResult | None = None
    for _ in range(max(n_init, 1)):
        result = _kmeans_once(X, k, rng, max_iter, tol)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def _kmeans_once(
    X: np.ndarray, k: int, rng: np.random.Generator, max_iter: int, tol: float
) -> KMeansResult:
    centers = _kmeanspp_init(X, k, rng)
    labels = np.zeros(len(X), dtype=np.int64)
    inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        distances = _pairwise_sq(X, centers)
        labels = np.argmin(distances, axis=1)
        new_inertia = float(distances[np.arange(len(X)), labels].sum())
        new_centers = centers.copy()
        for cluster in range(k):
            members = X[labels == cluster]
            if len(members):
                new_centers[cluster] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the point farthest from its center.
                farthest = int(np.argmax(distances[np.arange(len(X)), labels]))
                new_centers[cluster] = X[farthest]
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if abs(inertia - new_inertia) <= tol and shift <= tol:
            inertia = new_inertia
            break
        inertia = new_inertia
    return KMeansResult(centers=centers, labels=labels, inertia=inertia, n_iter=n_iter)


def _kmeanspp_init(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    n = len(X)
    centers = np.empty((k, X.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = X[first]
    closest_sq = _pairwise_sq(X, centers[:1]).ravel()
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All points coincide with chosen centers; pick randomly.
            pick = int(rng.integers(n))
        else:
            probabilities = closest_sq / total
            pick = int(rng.choice(n, p=probabilities))
        centers[i] = X[pick]
        new_sq = _pairwise_sq(X, centers[i: i + 1]).ravel()
        closest_sq = np.minimum(closest_sq, new_sq)
    return centers


def _pairwise_sq(X: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape (n_points, n_centers)."""
    diffs = X[:, None, :] - centers[None, :, :]
    return np.einsum("ijk,ijk->ij", diffs, diffs)


def silhouette(X: np.ndarray, labels: np.ndarray, max_points: int = 512,
               seed: int = 0) -> float:
    """Mean silhouette coefficient (subsampled beyond ``max_points``).

    Returns 0.0 when there are fewer than 2 clusters or 3 points, where
    the coefficient is undefined.
    """
    X = np.asarray(X, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    unique = np.unique(labels)
    if len(unique) < 2 or len(X) < 3:
        return 0.0
    if len(X) > max_points:
        rng = np.random.default_rng(seed)
        picks = rng.choice(len(X), size=max_points, replace=False)
        X = X[picks]
        labels = labels[picks]
        unique = np.unique(labels)
        if len(unique) < 2:
            return 0.0
    diffs = X[:, None, :] - X[None, :, :]
    distances = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))
    scores = np.zeros(len(X))
    for i in range(len(X)):
        own = labels[i]
        own_mask = labels == own
        n_own = own_mask.sum()
        if n_own <= 1:
            scores[i] = 0.0
            continue
        a = distances[i][own_mask].sum() / (n_own - 1)
        b = np.inf
        for other in unique:
            if other == own:
                continue
            other_mask = labels == other
            b = min(b, distances[i][other_mask].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def choose_k(
    X: np.ndarray, k_values: tuple[int, ...] = (2, 3, 4), seed: int = 0,
    min_silhouette: float = 0.5,
) -> int:
    """Pick k by silhouette; returns 1 when no clustering is convincing.

    A best silhouette below ``min_silhouette`` is read as "the data is one
    blob", which for D' cleaning means keep everything.
    """
    X = np.asarray(X, dtype=np.float64)
    best_k = 1
    best_score = min_silhouette
    for k in k_values:
        if len(X) < max(k * 2, 3):
            continue
        result = kmeans(X, k, seed=seed)
        score = silhouette(X, result.labels, seed=seed)
        if score > best_score:
            best_score = score
            best_k = k
    return best_k


def dominant_cluster_mask(X: np.ndarray, seed: int = 0) -> np.ndarray:
    """The self-consistent-subset mask used to clean D'.

    Standardizes, picks k by silhouette, clusters, and keeps the largest
    cluster. If no multi-cluster structure is found (k = 1) every point is
    kept.
    """
    X = np.asarray(X, dtype=np.float64)
    if len(X) == 0:
        return np.zeros(0, dtype=bool)
    Z, __, __ = standardize(X)
    Z = np.nan_to_num(Z, nan=0.0)
    k = choose_k(Z, seed=seed)
    if k <= 1:
        return np.ones(len(X), dtype=bool)
    result = kmeans(Z, k, seed=seed)
    sizes = result.cluster_sizes()
    dominant = int(np.argmax(sizes))
    return result.labels == dominant
