"""Shared split-candidate precomputation for histogram tree induction.

The Predicate Enumerator fits K candidate sets × S strategies decision
trees over the *same* table F per debug cycle. Candidate thresholds,
value orderings, and per-row bin assignments depend only on F's columns,
so deriving them inside every fit (and inside every tree node) repeats
identical work K×S× times. A :class:`SplitIndex` computes them once:

* numeric columns: the sorted distinct values, candidate thresholds
  (midpoints of consecutive distinct values, capped at
  ``max_thresholds``), and an int64 *bin code* per row such that
  ``code <= b`` iff ``value <= thresholds[b]`` (NaN gets the one-past-
  the-end code, so it never routes left — matching
  :class:`~repro.learn.tree.NumericSplit` semantics);
* categorical columns: the sorted distinct non-NULL values and an int64
  *value code* per row (NULL gets the one-past-the-end code, so it never
  equals a candidate value).

With codes in hand, a tree node scores **all** thresholds of a column in
one histogram pass: accumulate per-bin weight / positive-weight / count
(weighted ``np.bincount``), take a ``cumsum``, and evaluate every
``(left, right)`` partition at once — no per-node sort, no per-threshold
masking.

Candidate thresholds are **global** — derived once from the whole
column, not re-derived per node as the pre-histogram code did. A deep
node therefore only sees the global candidates that fall inside its
value range, which can make trees on very-high-cardinality numeric
columns slightly coarser near the leaves. That is the standard
histogram-tree tradeoff (LightGBM-style binning), accepted in exchange
for O(n + bins) node scoring and sharing the derivation across all
fits; raise ``max_thresholds`` to recover resolution where it matters.

The index is row-aligned with the table it was built from;
:meth:`SplitIndex.take` re-aligns it with a row subset (e.g. the train
split of reduced-error pruning). In the pipeline the index is memoized
on :class:`~repro.core.preprocessor.PreprocessResult`, so the service
tier shares one index across sessions exactly like the segmented
aggregates and frequency edges.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..db.table import Table
from ..errors import LearnError

__all__ = [
    "CategoricalColumnIndex",
    "NumericColumnIndex",
    "SplitIndex",
]


class NumericColumnIndex:
    """Candidate thresholds and per-row bin codes of one numeric column."""

    __slots__ = ("attr", "thresholds", "codes")

    def __init__(self, attr: str, thresholds: np.ndarray, codes: np.ndarray):
        self.attr = attr
        #: Sorted candidate split points (midpoints of consecutive
        #: distinct values; subsampled when there are too many).
        self.thresholds = thresholds
        #: ``codes[i] <= b``  iff  ``value[i] <= thresholds[b]``; NaN rows
        #: hold ``len(thresholds)`` (one past the last threshold bin).
        self.codes = codes

    @property
    def n_bins(self) -> int:
        """Number of histogram bins (thresholds + the rightmost bin)."""
        return len(self.thresholds) + 1

    def code_of(self, threshold: float) -> int:
        """The bin code whose left partition is ``value <= threshold``."""
        return int(np.searchsorted(self.thresholds, threshold, side="left"))

    def take(self, indices: np.ndarray) -> "NumericColumnIndex":
        """The index re-aligned with a row subset."""
        return NumericColumnIndex(self.attr, self.thresholds, self.codes[indices])

    def slice_rows(self, start: int, stop: int) -> "NumericColumnIndex":
        """A zero-copy contiguous-block view (shared thresholds)."""
        return NumericColumnIndex(self.attr, self.thresholds, self.codes[start:stop])


class CategoricalColumnIndex:
    """Distinct values and per-row value codes of one categorical column."""

    __slots__ = ("attr", "values", "codes", "_code_by_value")

    def __init__(self, attr: str, values: tuple, codes: np.ndarray):
        self.attr = attr
        #: Distinct non-NULL values in ascending order (code == position).
        self.values = values
        #: Value code per row; NULL rows hold ``len(values)``.
        self.codes = codes
        self._code_by_value = {value: code for code, value in enumerate(values)}

    @property
    def n_bins(self) -> int:
        """Number of histogram bins (distinct values + the NULL bin)."""
        return len(self.values) + 1

    def code_of(self, value: Any) -> int:
        """The code of a distinct value."""
        return self._code_by_value[value]

    def take(self, indices: np.ndarray) -> "CategoricalColumnIndex":
        """The index re-aligned with a row subset."""
        return CategoricalColumnIndex(self.attr, self.values, self.codes[indices])

    def slice_rows(self, start: int, stop: int) -> "CategoricalColumnIndex":
        """A zero-copy contiguous-block view (shared value codes)."""
        return CategoricalColumnIndex(self.attr, self.values, self.codes[start:stop])


ColumnIndex = NumericColumnIndex | CategoricalColumnIndex


class SplitIndex:
    """Per-column split candidates + bin codes, shared across tree fits."""

    __slots__ = ("features", "max_thresholds", "columns", "n_rows")

    def __init__(
        self,
        features: tuple[str, ...],
        max_thresholds: int,
        columns: Mapping[str, ColumnIndex],
        n_rows: int,
    ):
        self.features = features
        self.max_thresholds = max_thresholds
        self.columns = dict(columns)
        self.n_rows = n_rows

    @classmethod
    def build(
        cls,
        table: Table,
        features: Sequence[str] | None = None,
        max_thresholds: int = 32,
        numeric_values: Callable[[str], np.ndarray] | None = None,
    ) -> "SplitIndex":
        """Build the index over ``table``.

        ``numeric_values`` optionally supplies pre-cast float64 column
        arrays (e.g. ``PreprocessResult.numeric_values``) so the cast is
        not repeated here.
        """
        if max_thresholds < 1:
            raise LearnError("max_thresholds must be >= 1")
        names = tuple(features) if features is not None else tuple(table.schema.names)
        columns: dict[str, ColumnIndex] = {}
        for name in names:
            if table.schema.type_of(name).is_numeric:
                if numeric_values is not None:
                    values = numeric_values(name)
                else:
                    values = np.asarray(table.column(name), dtype=np.float64)
                columns[name] = _build_numeric(name, values, max_thresholds)
            else:
                columns[name] = _build_categorical(name, table.column(name))
        return cls(names, max_thresholds, columns, len(table))

    def column(self, attr: str) -> ColumnIndex:
        """The per-column index for ``attr``."""
        try:
            return self.columns[attr]
        except KeyError:
            raise LearnError(f"column {attr!r} is not in the split index") from None

    def take(self, indices: np.ndarray) -> "SplitIndex":
        """The index re-aligned with a row subset (shared thresholds)."""
        indices = np.asarray(indices, dtype=np.int64)
        columns = {name: column.take(indices) for name, column in self.columns.items()}
        return SplitIndex(self.features, self.max_thresholds, columns, len(indices))

    def slice_rows(self, start: int, stop: int) -> "SplitIndex":
        """A contiguous-block view of the index, sharing every code array.

        The partitioned execution backend re-aligns one segment-order
        index with each row block this way: the per-column code arrays
        are numpy slices of the parent's, so N partitions cost O(columns)
        per block, not O(rows). Codes are per-row, which is what makes a
        block's clause masks bit-identical to the matching slice of the
        global mask.
        """
        columns = {
            name: column.slice_rows(start, stop)
            for name, column in self.columns.items()
        }
        return SplitIndex(
            self.features, self.max_thresholds, columns, max(0, stop - start)
        )


def _build_numeric(
    attr: str, values: np.ndarray, max_thresholds: int
) -> NumericColumnIndex:
    nan_mask = np.isnan(values)
    distinct = np.unique(values[~nan_mask])
    if len(distinct) < 2:
        thresholds = np.empty(0, dtype=np.float64)
    else:
        thresholds = (distinct[:-1] + distinct[1:]) / 2.0
        if len(thresholds) > max_thresholds:
            picks = np.linspace(0, len(thresholds) - 1, max_thresholds).astype(int)
            thresholds = thresholds[np.unique(picks)]
        # Defensive: midpoints of adjacent representable floats can
        # collide after rounding; codes need strictly sorted thresholds.
        thresholds = np.unique(thresholds)
    codes = np.searchsorted(thresholds, values, side="left")
    codes[nan_mask] = len(thresholds)
    return NumericColumnIndex(attr, thresholds, np.asarray(codes, dtype=np.int64))


def _build_categorical(attr: str, values: np.ndarray) -> CategoricalColumnIndex:
    distinct = sorted({value for value in values if value is not None})
    null_code = len(distinct)
    code_by_value = {value: code for code, value in enumerate(distinct)}
    codes = np.fromiter(
        (code_by_value.get(value, null_code) for value in values),
        dtype=np.int64,
        count=len(values),
    )
    return CategoricalColumnIndex(attr, tuple(distinct), codes)
