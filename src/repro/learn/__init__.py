"""``repro.learn`` — from-scratch ML substrate.

Decision trees (gini / entropy / gain-ratio + pruning), CN2-SD subgroup
discovery with weighted covering, k-means with silhouette model
selection, mixed naive Bayes, discretization, and metrics. No external
ML dependencies; numpy only.
"""

from .classify import MixedNaiveBayes
from .discretize import (
    bin_index,
    equal_frequency_edges,
    equal_width_edges,
    mdl_entropy_edges,
)
from .kmeans import (
    KMeansResult,
    choose_k,
    dominant_cluster_mask,
    kmeans,
    silhouette,
    standardize,
)
from .metrics import (
    Confusion,
    confusion,
    entropy,
    gini_impurity,
    jaccard,
    precision_recall_f1,
    split_info,
    wracc,
)
from .rules import Rule, dedupe_rules
from .split_index import CategoricalColumnIndex, NumericColumnIndex, SplitIndex
from .subgroup import SubgroupDiscovery
from .tree import ALGORITHMS, CRITERIA, CategoricalSplit, DecisionTree, NumericSplit

__all__ = [
    "ALGORITHMS",
    "CRITERIA",
    "CategoricalColumnIndex",
    "CategoricalSplit",
    "Confusion",
    "DecisionTree",
    "KMeansResult",
    "MixedNaiveBayes",
    "NumericColumnIndex",
    "NumericSplit",
    "Rule",
    "SplitIndex",
    "SubgroupDiscovery",
    "bin_index",
    "choose_k",
    "confusion",
    "dedupe_rules",
    "dominant_cluster_mask",
    "entropy",
    "equal_frequency_edges",
    "equal_width_edges",
    "gini_impurity",
    "jaccard",
    "kmeans",
    "mdl_entropy_edges",
    "precision_recall_f1",
    "silhouette",
    "split_info",
    "standardize",
    "wracc",
]
