"""CN2-SD subgroup discovery (Lavrač, Kavšek, Flach, Todorovski — JMLR 2004).

The Dataset Enumerator uses subgroup discovery to *extend* the cleaned
user examples ``D'`` into candidate error sets: it searches for compact
conjunctive descriptions whose covered tuples are unusually rich in
positives (user examples and high-influence tuples).

This is a faithful from-scratch CN2-SD:

* rule quality is **weighted relative accuracy** (WRAcc);
* search is **beam search** over conjunctions of attribute conditions;
* after each rule is emitted, covered positives are **multiplicatively
  down-weighted** (weighted covering) so later rules describe different
  parts of the positive class.

Numeric attributes are discretized with class-aware MDL cut points
(falling back to equal-frequency quantiles), yielding threshold
conditions such as ``temp > 100.3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..db.predicate import CategoricalClause, Clause, NumericClause, Predicate
from ..db.table import Table
from ..errors import LearnError
from .discretize import equal_frequency_edges, mdl_entropy_edges
from .metrics import wracc
from .rules import Rule, dedupe_rules


@dataclass(frozen=True)
class _Condition:
    """A primitive condition: a clause plus its precomputed row mask."""

    clause: Clause
    mask: np.ndarray
    column: str
    #: "le" (upper bound), "gt" (lower bound), or "eq" (categorical).
    direction: str

    @property
    def slot(self) -> tuple[str, str]:
        """The (column, direction) slot this condition occupies in a rule."""
        return (self.column, self.direction)


@dataclass
class _BeamEntry:
    clauses: tuple[Clause, ...]
    mask: np.ndarray
    quality: float
    #: (column, direction) pairs already used; direction is "le"/"gt" for
    #: numeric bounds and "eq" for categorical, so a rule may carry both
    #: bounds of a numeric interval but never two categorical values or two
    #: upper bounds on one column.
    slots: frozenset


class SubgroupDiscovery:
    """CN2-SD: beam search for high-WRAcc conjunctions with weighted covering."""

    def __init__(
        self,
        beam_width: int = 8,
        max_conditions: int = 3,
        n_rules: int = 6,
        gamma: float = 0.5,
        min_coverage: int = 2,
        numeric_bins: int = 8,
        discretizer: str = "mdl",
        max_values: int = 16,
    ):
        if not 0.0 <= gamma <= 1.0:
            raise LearnError("gamma must be in [0, 1]")
        if beam_width < 1:
            raise LearnError("beam_width must be >= 1")
        if max_conditions < 1:
            raise LearnError("max_conditions must be >= 1")
        if discretizer not in ("mdl", "frequency", "both"):
            raise LearnError("discretizer must be 'mdl', 'frequency', or 'both'")
        self.beam_width = beam_width
        self.max_conditions = max_conditions
        self.n_rules = n_rules
        self.gamma = gamma
        self.min_coverage = min_coverage
        self.numeric_bins = numeric_bins
        self.discretizer = discretizer
        self.max_values = max_values

    # ------------------------------------------------------------------

    def fit(
        self,
        table: Table,
        labels: np.ndarray,
        features: Sequence[str] | None = None,
        shared_edges: Mapping[str, Sequence[float]] | None = None,
    ) -> list[Rule]:
        """Discover up to ``n_rules`` subgroups of the positive class.

        ``shared_edges`` optionally supplies precomputed equal-frequency
        cut points per numeric column (e.g. from a
        :class:`~repro.core.preprocessor.PreprocessResult` shared across
        enumerator strategies); they replace the class-agnostic
        discretization this method would otherwise re-derive. Class-aware
        MDL cuts still adapt to ``labels``.
        """
        labels = np.asarray(labels, dtype=bool)
        if len(labels) != len(table):
            raise LearnError("labels length must match table length")
        if len(table) == 0 or not labels.any():
            return []
        if features is None:
            features = table.schema.names
        conditions = self._build_conditions(table, labels, features, shared_edges)
        if not conditions:
            return []
        weights = np.ones(len(table), dtype=np.float64)
        rules: list[Rule] = []
        emitted: set[Predicate] = set()
        for _ in range(self.n_rules):
            best = self._beam_search(conditions, labels, weights, emitted)
            if best is None or best.quality <= 0:
                break
            covered = best.mask
            n_covered = int(covered.sum())
            n_pos = int((covered & labels).sum())
            predicate = Predicate(best.clauses).simplify()
            if predicate is None:
                break
            emitted.add(predicate)
            rules.append(
                Rule(
                    predicate=predicate,
                    n_covered=float(n_covered),
                    n_pos_covered=float(n_pos),
                    quality=best.quality,
                    source="cn2sd",
                )
            )
            # Weighted covering: decay covered positives.
            decay = covered & labels
            weights[decay] *= self.gamma
            if weights[labels].sum() < 1e-9:
                break
        return dedupe_rules(rules)

    # ------------------------------------------------------------------

    def _build_conditions(
        self,
        table: Table,
        labels: np.ndarray,
        features: Sequence[str],
        shared_edges: Mapping[str, Sequence[float]] | None = None,
    ) -> list[_Condition]:
        conditions: list[_Condition] = []
        for name in features:
            ctype = table.schema.type_of(name)
            values = table.column(name)
            if ctype.is_numeric:
                precomputed = (
                    shared_edges.get(name) if shared_edges is not None else None
                )
                edges = self._numeric_edges(values, labels, precomputed)
                for edge in edges:
                    low = NumericClause(name, None, float(edge), hi_inclusive=True)
                    high = NumericClause(name, float(edge), None, lo_inclusive=False)
                    conditions.append(_Condition(low, low.mask(table), name, "le"))
                    conditions.append(_Condition(high, high.mask(table), name, "gt"))
            else:
                counts: dict = {}
                for value in values:
                    if value is None:
                        continue
                    counts[value] = counts.get(value, 0) + 1
                top = sorted(counts, key=lambda v: -counts[v])[: self.max_values]
                for value in top:
                    clause = CategoricalClause(name, frozenset([value]))
                    conditions.append(
                        _Condition(clause, clause.mask(table), name, "eq")
                    )
        # Vacuous conditions (covering all rows or none — e.g. the single
        # value of a constant column) restrict nothing and would only pad
        # rules with noise conjuncts.
        return [
            condition
            for condition in conditions
            if 0 < int(condition.mask.sum()) < len(table)
        ]

    def _numeric_edges(
        self,
        values: np.ndarray,
        labels: np.ndarray,
        precomputed: Sequence[float] | None = None,
    ) -> list[float]:
        values = np.asarray(values, dtype=np.float64)

        def frequency_edges() -> list[float]:
            if precomputed is not None:
                return list(precomputed)
            return equal_frequency_edges(values, self.numeric_bins)

        edges: list[float] = []
        if self.discretizer in ("mdl", "both"):
            edges = mdl_entropy_edges(values, labels)
        if self.discretizer == "frequency" or (
            self.discretizer in ("mdl", "both") and not edges
        ):
            edges = frequency_edges()
        elif self.discretizer == "both":
            merged = sorted(set(edges) | set(frequency_edges()))
            edges = merged
        return edges

    def _beam_search(
        self,
        conditions: list[_Condition],
        labels: np.ndarray,
        weights: np.ndarray,
        emitted: set[Predicate] | None = None,
    ) -> _BeamEntry | None:
        total_w = float(weights.sum())
        pos_w = float(weights[labels].sum())
        if pos_w <= 0:
            return None
        emitted = emitted or set()

        def quality_of(mask: np.ndarray) -> float:
            covered_w = float(weights[mask].sum())
            covered_pos_w = float(weights[mask & labels].sum())
            return wracc(total_w, pos_w, covered_w, covered_pos_w)

        def is_new(entry: _BeamEntry) -> bool:
            predicate = Predicate(entry.clauses).simplify()
            return predicate is not None and predicate not in emitted

        beam: list[_BeamEntry] = []
        best: _BeamEntry | None = None
        # Level 1: single conditions.
        for condition in conditions:
            mask = condition.mask
            if int(mask.sum()) < self.min_coverage or not (mask & labels).any():
                continue
            entry = _BeamEntry(
                clauses=(condition.clause,),
                mask=mask,
                quality=quality_of(mask),
                slots=frozenset([condition.slot]),
            )
            beam.append(entry)
        beam.sort(key=lambda e: -e.quality)
        beam = beam[: self.beam_width]
        for entry in beam:
            if is_new(entry):
                best = entry
                break
        # Deeper levels.
        for _ in range(1, self.max_conditions):
            children: list[_BeamEntry] = []
            seen: set[frozenset] = set()
            for entry in beam:
                for condition in conditions:
                    # One condition per (column, direction) slot: numeric
                    # columns can gain both an upper and a lower bound
                    # (forming an interval), categoricals only one value.
                    if condition.slot in entry.slots:
                        continue
                    if (condition.column, "eq") in entry.slots:
                        continue
                    mask = entry.mask & condition.mask
                    count = int(mask.sum())
                    if count < self.min_coverage or not (mask & labels).any():
                        continue
                    if count == int(entry.mask.sum()):
                        # The condition restricted nothing on this branch.
                        continue
                    clauses = entry.clauses + (condition.clause,)
                    key = frozenset(clauses)
                    if key in seen:
                        continue
                    seen.add(key)
                    children.append(
                        _BeamEntry(
                            clauses=clauses,
                            mask=mask,
                            quality=quality_of(mask),
                            slots=entry.slots | {condition.slot},
                        )
                    )
            if not children:
                break
            children.sort(key=lambda e: -e.quality)
            beam = children[: self.beam_width]
            for entry in beam:
                if is_new(entry) and (best is None or entry.quality > best.quality):
                    best = entry
                    break
        return best
