"""Impurity, rule-quality, and classification metrics.

Everything operates on (optionally weighted) binary labels, which is all
DBWipes needs: the positive class is "suspicious input tuple", the
negative class is everything else in F.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import LearnError


def gini_impurity(pos_weight: float, neg_weight: float) -> float:
    """Gini impurity of a weighted binary node: ``2 p (1 - p)``... computed as
    ``1 - p² - q²`` for the two-class case."""
    total = pos_weight + neg_weight
    if total <= 0:
        return 0.0
    p = pos_weight / total
    q = neg_weight / total
    return max(1.0 - p * p - q * q, 0.0)


def entropy(pos_weight: float, neg_weight: float) -> float:
    """Shannon entropy (bits) of a weighted binary node."""
    total = pos_weight + neg_weight
    if total <= 0:
        return 0.0
    out = 0.0
    for weight in (pos_weight, neg_weight):
        if weight > 0:
            p = weight / total
            out -= p * math.log2(p)
    return out


def split_info(left_weight: float, right_weight: float) -> float:
    """Entropy of the partition itself — the gain-ratio denominator."""
    total = left_weight + right_weight
    if total <= 0:
        return 0.0
    out = 0.0
    for weight in (left_weight, right_weight):
        if weight > 0:
            p = weight / total
            out -= p * math.log2(p)
    return out


def wracc(
    total_weight: float,
    pos_weight: float,
    covered_weight: float,
    covered_pos_weight: float,
) -> float:
    """Weighted relative accuracy of a rule (Lavrač et al., CN2-SD).

    ``WRAcc = coverage × (rule precision − base rate)``. Positive iff the
    rule's covered set is enriched in positives relative to the base rate;
    bounded by ``base_rate × (1 − base_rate)`` in magnitude.
    """
    if total_weight <= 0:
        raise LearnError("WRAcc requires positive total weight")
    if covered_weight <= 0:
        return 0.0
    coverage = covered_weight / total_weight
    precision = covered_pos_weight / covered_weight
    base_rate = pos_weight / total_weight
    return coverage * (precision - base_rate)


@dataclass(frozen=True)
class Confusion:
    """Binary confusion counts."""

    tp: float
    fp: float
    fn: float
    tn: float

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions."""
        total = self.tp + self.fp + self.fn + self.tn
        return (self.tp + self.tn) / total if total else 0.0

    @property
    def precision(self) -> float:
        """tp / (tp + fp); 0 when nothing was predicted positive."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        """tp / (tp + fn); 0 when there are no positives."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p = self.precision
        r = self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def confusion(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    sample_weight: np.ndarray | None = None,
) -> Confusion:
    """Weighted binary confusion counts from boolean/0-1 arrays."""
    y_true = np.asarray(y_true, dtype=bool)
    y_pred = np.asarray(y_pred, dtype=bool)
    if y_true.shape != y_pred.shape:
        raise LearnError("y_true and y_pred must have the same shape")
    if sample_weight is None:
        weight = np.ones(len(y_true))
    else:
        weight = np.asarray(sample_weight, dtype=np.float64)
        if weight.shape != y_true.shape:
            raise LearnError("sample_weight must match y shape")
    tp = float(weight[y_true & y_pred].sum())
    fp = float(weight[~y_true & y_pred].sum())
    fn = float(weight[y_true & ~y_pred].sum())
    tn = float(weight[~y_true & ~y_pred].sum())
    return Confusion(tp=tp, fp=fp, fn=fn, tn=tn)


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray
) -> tuple[float, float, float]:
    """Convenience: (precision, recall, F1) of a binary prediction."""
    c = confusion(y_true, y_pred)
    return c.precision, c.recall, c.f1


def jaccard(set_a: np.ndarray, set_b: np.ndarray) -> float:
    """Jaccard similarity of two tid arrays (treated as sets)."""
    a = set(int(x) for x in np.asarray(set_a).ravel())
    b = set(int(x) for x in np.asarray(set_b).ravel())
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union)
