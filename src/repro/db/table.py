"""Column-store table with stable tuple identifiers.

Every row of a :class:`Table` carries an immutable tuple id (*tid*). All
higher layers — provenance, influence ranking, predicate evaluation, brush
selection, ground-truth labels — identify rows by tid, so filtering and
projection never invalidate references.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import SchemaError
from .schema import Column, Schema
from .store import (
    ColumnStore,
    GatherStore,
    MmapColumnStore,
    SliceStore,
    store_for_columns,
    table_digest,
)
from .types import ColumnType, coerce_array, infer_type, python_value


class Table:
    """An immutable, column-oriented table.

    Column arrays live behind a :class:`~repro.db.store.ColumnStore`
    (in-memory by default, memory-mapped for tables opened from disk);
    ``tids`` is a parallel int64 array of stable row identifiers. All
    transformation methods return new ``Table`` objects that share or
    lazily view the underlying storage when possible (copy-on-write
    style), so filters, projections, and slices are cheap.
    """

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, np.ndarray] | ColumnStore,
        tids: np.ndarray | None = None,
        name: str = "",
    ):
        self._schema = schema
        if isinstance(columns, ColumnStore):
            store = columns
            length = store.num_rows
        else:
            store, length = store_for_columns(schema, columns)
        self._store = store
        if tids is None:
            tids = np.arange(length, dtype=np.int64)
        else:
            tids = np.asarray(tids, dtype=np.int64)
            if len(tids) != length:
                raise SchemaError(f"{len(tids)} tids for {length} rows")
        self._tids = tids
        self._length = length
        self.name = name
        self._tid_index: dict[int, int] | None = None
        self._tid_sorted: tuple[np.ndarray, np.ndarray] | None = None
        self._digest: str | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Sequence[Any]],
        name: str = "",
    ) -> "Table":
        """Build a table from an iterable of row tuples matching ``schema``."""
        rows = list(rows)
        columns = {}
        for index, column in enumerate(schema):
            values = [row[index] for row in rows]
            columns[column.name] = coerce_array(values, column.ctype)
        return cls(schema, columns, name=name)

    @classmethod
    def from_dicts(
        cls,
        rows: Iterable[Mapping[str, Any]],
        schema: Schema | None = None,
        name: str = "",
    ) -> "Table":
        """Build a table from dict rows, inferring the schema if not given."""
        rows = list(rows)
        if schema is None:
            if not rows:
                raise SchemaError("cannot infer a schema from zero rows")
            names = list(rows[0].keys())
            columns_spec = []
            for column_name in names:
                ctype = infer_type(row.get(column_name) for row in rows)
                columns_spec.append(Column(column_name, ctype))
            schema = Schema(columns_spec)
        columns = {}
        for column in schema:
            values = [row.get(column.name) for row in rows]
            columns[column.name] = coerce_array(values, column.ctype)
        return cls(schema, columns, name=name)

    @classmethod
    def from_columns(
        cls,
        data: Mapping[str, Sequence[Any]],
        types: Mapping[str, ColumnType | str] | None = None,
        name: str = "",
    ) -> "Table":
        """Build a table from ``{name: values}`` with optional explicit types."""
        columns_spec = []
        arrays = {}
        for column_name, values in data.items():
            if types and column_name in types:
                ctype = types[column_name]
                if isinstance(ctype, str):
                    ctype = ColumnType(ctype)
            else:
                ctype = infer_type(values)
            columns_spec.append(Column(column_name, ctype))
            arrays[column_name] = coerce_array(values, ctype)
        return cls(Schema(columns_spec), arrays, name=name)

    # ------------------------------------------------------------------
    # durable storage
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, directory: str | Path) -> "Table":
        """Open a table persisted by :meth:`save` (reads only the manifest).

        Column bytes stay on disk behind ``mmap`` until first touched, so
        opening is O(manifest) regardless of table size.
        """
        store = MmapColumnStore.open(directory)
        table = cls(store.schema, store, tids=store.tids(), name=store.name)
        table._digest = store.digest
        return table

    def save(
        self,
        directory: str | Path,
        chunk_rows: int | None = None,
        overwrite: bool = False,
    ) -> "Table":
        """Persist this table as a chunked columnar directory.

        Returns a new mmap-backed :class:`Table` reading from the just-
        written files — callers that keep serving after a save naturally
        serve the durable copy.
        """
        from .store import DEFAULT_CHUNK_ROWS

        store = MmapColumnStore.write(
            self,
            directory,
            chunk_rows=chunk_rows or DEFAULT_CHUNK_ROWS,
            overwrite=overwrite,
        )
        table = Table(store.schema, store, tids=store.tids(), name=store.name)
        table._digest = store.digest
        return table

    def content_digest(self) -> str:
        """Digest of the table's logical content (schema + columns + tids).

        Identical for an in-memory table and its persisted/reopened copy;
        used to key persisted preprocess artifacts across restarts. For
        mmap-backed tables the digest comes straight from the manifest —
        no column bytes are read.
        """
        if self._digest is None:
            self._digest = table_digest(
                self._schema, self._store.column, self._tids
            )
        return self._digest

    @property
    def store(self) -> ColumnStore:
        """The backing column store (for storage-aware callers)."""
        return self._store

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table schema."""
        return self._schema

    @property
    def tids(self) -> np.ndarray:
        """Stable tuple ids, parallel to the column arrays (read-only view)."""
        view = self._tids.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return self._length

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._length

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._schema)

    def column(self, name: str) -> np.ndarray:
        """The storage array for a column (read-only view)."""
        self._schema.column(name)
        view = self._store.column(name).view()
        if view.flags.writeable:
            view.flags.writeable = False
        return view

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def row(self, index: int) -> tuple[Any, ...]:
        """Row ``index`` as a tuple of Python values.

        Reads one row block per column, so a single row of a huge mmap
        table never materializes whole columns.
        """
        return tuple(
            python_value(self._store.row_block(name, index, index + 1)[0])
            for name in self._schema.names
        )

    def row_dict(self, index: int) -> dict[str, Any]:
        """Row ``index`` as a ``{column: value}`` dict."""
        return dict(zip(self._schema.names, self.row(index)))

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate over rows as tuples."""
        for index in range(self._length):
            yield self.row(index)

    def iter_dicts(self) -> Iterator[dict[str, Any]]:
        """Iterate over rows as dicts."""
        for index in range(self._length):
            yield self.row_dict(index)

    # ------------------------------------------------------------------
    # tid addressing
    # ------------------------------------------------------------------

    def _ensure_tid_index(self) -> dict[int, int]:
        if self._tid_index is None:
            self._tid_index = {int(tid): i for i, tid in enumerate(self._tids)}
        return self._tid_index

    def position_of(self, tid: int) -> int:
        """The row position holding tuple id ``tid``.

        Raises ``KeyError`` if the tid is not present in this table view.
        """
        return self._ensure_tid_index()[int(tid)]

    def positions_of(self, tids: Iterable[int]) -> np.ndarray:
        """Row positions for an iterable of tids, in the given order.

        Vectorized via binary search over a cached sorted-tid index, so
        bulk lookups (``take_tids`` over a whole lineage) avoid a
        Python-level loop. Raises ``KeyError`` on the first missing tid.
        """
        if isinstance(tids, np.ndarray):
            wanted = np.asarray(tids, dtype=np.int64)
        else:
            wanted = np.fromiter((int(t) for t in tids), dtype=np.int64)
        if len(wanted) == 0:
            return np.empty(0, dtype=np.int64)
        if self._length == 0:
            raise KeyError(int(wanted[0]))
        if self._tid_sorted is None:
            sorter = np.argsort(self._tids, kind="stable")
            self._tid_sorted = (sorter, self._tids[sorter])
        sorter, sorted_tids = self._tid_sorted
        pos = np.searchsorted(sorted_tids, wanted)
        pos = np.minimum(pos, len(sorted_tids) - 1)
        found = sorted_tids[pos] == wanted
        if not bool(found.all()):
            raise KeyError(int(wanted[~found][0]))
        return sorter[pos]

    def contains_tid(self, tid: int) -> bool:
        """Whether ``tid`` is present in this table view."""
        return int(tid) in self._ensure_tid_index()

    def take_tids(self, tids: Iterable[int]) -> "Table":
        """A new table holding exactly the rows with the given tids, in order."""
        return self.take(self.positions_of(tids))

    # ------------------------------------------------------------------
    # transformations (all return new tables, preserving tids)
    # ------------------------------------------------------------------

    def take(self, positions: np.ndarray | Sequence[int]) -> "Table":
        """Rows at the given positions, preserving their tids.

        The gather is lazy per column: a projection-heavy consumer of a
        wide (or mmap-backed) table only pays for the columns it reads.
        """
        positions = np.asarray(positions, dtype=np.int64)
        store = GatherStore(self._store, positions)
        return Table(self._schema, store, tids=self._tids[positions], name=self.name)

    def filter(self, mask: np.ndarray) -> "Table":
        """Rows where the boolean ``mask`` is True, preserving tids."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self._length:
            raise SchemaError(f"mask length {len(mask)} != table length {self._length}")
        return self.take(np.flatnonzero(mask))

    def slice_rows(self, lo: int, hi: int) -> "Table":
        """The contiguous row window ``[lo, hi)`` as a zero-copy view.

        Feeds the partitioned backend's group-aligned row blocks: each
        block's columns are slices of the parent's storage, so scatter-
        gather never copies column data per partition.
        """
        lo = max(0, min(lo, self._length))
        hi = max(lo, min(hi, self._length))
        store = SliceStore(self._store, lo, hi)
        return Table(self._schema, store, tids=self._tids[lo:hi], name=self.name)

    def exclude_tids(self, tids: Iterable[int]) -> "Table":
        """Rows whose tid is *not* in the given collection."""
        drop = set(int(t) for t in tids)
        mask = np.fromiter(
            (int(t) not in drop for t in self._tids), dtype=bool, count=self._length
        )
        return self.filter(mask)

    def project(self, names: Sequence[str]) -> "Table":
        """Only the named columns, preserving row order and tids.

        Zero-copy: the projected table shares this table's store and
        simply restricts its schema to ``names``.
        """
        schema = self._schema.project(names)
        return Table(schema, self._store, tids=self._tids, name=self.name)

    def with_column(self, column: Column, values: np.ndarray | Sequence[Any]) -> "Table":
        """A new table with an extra column appended."""
        array = np.asarray(values)
        if array.dtype != column.ctype.numpy_dtype:
            array = coerce_array(list(values), column.ctype)
        schema = self._schema.extend([column])
        columns = {name: self._store.column(name) for name in self._schema.names}
        columns[column.name] = array
        return Table(schema, columns, tids=self._tids, name=self.name)

    def rename(self, name: str) -> "Table":
        """The same table under a different name."""
        return Table(self._schema, self._store, tids=self._tids, name=name)

    def concat(self, other: "Table") -> "Table":
        """Rows of ``self`` followed by rows of ``other`` (schemas must match).

        Tids are preserved; callers are responsible for keeping them unique.
        """
        if self._schema != other._schema:
            raise SchemaError("cannot concat tables with different schemas")
        columns = {
            name: np.concatenate(
                [self._store.column(name), other._store.column(name)]
            )
            for name in self._schema.names
        }
        tids = np.concatenate([self._tids, other._tids])
        return Table(self._schema, columns, tids=tids, name=self.name)

    def sort_by(self, name: str, descending: bool = False) -> "Table":
        """Rows sorted by one column (stable sort), preserving tids."""
        array = self._store.column(self._schema.column(name).name)
        order = np.argsort(array, kind="stable")
        if descending:
            order = order[::-1]
        return self.take(order)

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------

    def head(self, n: int = 10) -> "Table":
        """The first ``n`` rows."""
        return self.take(np.arange(min(n, self._length), dtype=np.int64))

    def to_text(self, max_rows: int = 20) -> str:
        """A plain-text rendering of the table (for terminals and docs)."""
        names = ("tid",) + self._schema.names
        shown = min(max_rows, self._length)
        rows = []
        for index in range(shown):
            row = (str(int(self._tids[index])),) + tuple(
                _format_cell(value) for value in self.row(index)
            )
            rows.append(row)
        widths = [len(name) for name in names]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(name.ljust(widths[i]) for i, name in enumerate(names))
        rule = "-+-".join("-" * width for width in widths)
        body = [
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in rows
        ]
        footer = []
        if shown < self._length:
            footer.append(f"... ({self._length - shown} more rows)")
        return "\n".join([header, rule, *body, *footer])

    def __repr__(self) -> str:
        label = self.name or "<anonymous>"
        return f"Table({label!r}, {self._length} rows, {len(self._schema)} cols)"


def _format_cell(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        if np.isnan(value):
            return "NULL"
        return f"{value:.4g}"
    return str(value)
