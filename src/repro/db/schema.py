"""Table schemas: ordered, named, typed columns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import SchemaError, UnknownColumnError
from .types import ColumnType


@dataclass(frozen=True)
class Column:
    """A single named, typed column."""

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.name[0].isdigit():
            raise SchemaError(f"column name cannot start with a digit: {self.name!r}")

    def __str__(self) -> str:
        return f"{self.name} {self.ctype.value.upper()}"


class Schema:
    """An ordered collection of uniquely named :class:`Column` objects."""

    def __init__(self, columns: Iterable[Column]):
        self._columns: tuple[Column, ...] = tuple(columns)
        names = [column.name for column in self._columns]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {duplicates}")
        self._by_name = {column.name: column for column in self._columns}

    @classmethod
    def of(cls, **name_to_type: ColumnType | str) -> "Schema":
        """Build a schema from keyword arguments, e.g. ``Schema.of(a=ColumnType.INT)``.

        String values are accepted as shorthand: ``Schema.of(a="int", b="str")``.
        """
        columns = []
        for name, ctype in name_to_type.items():
            if isinstance(ctype, str):
                ctype = ColumnType(ctype)
            columns.append(Column(name, ctype))
        return cls(columns)

    @property
    def columns(self) -> tuple[Column, ...]:
        """The columns in declaration order."""
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(column.name for column in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def column(self, name: str) -> Column:
        """Look up a column by name, raising :class:`UnknownColumnError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(name, self.names) from None

    def type_of(self, name: str) -> ColumnType:
        """The :class:`ColumnType` of the named column."""
        return self.column(name).ctype

    def index_of(self, name: str) -> int:
        """The positional index of the named column."""
        self.column(name)
        return self.names.index(name)

    def project(self, names: Iterable[str]) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema([self.column(name) for name in names])

    def extend(self, columns: Iterable[Column]) -> "Schema":
        """A new schema with ``columns`` appended."""
        return Schema(list(self._columns) + list(columns))

    def numeric_names(self) -> tuple[str, ...]:
        """Names of all INT/FLOAT columns."""
        return tuple(c.name for c in self._columns if c.ctype.is_numeric)

    def categorical_names(self) -> tuple[str, ...]:
        """Names of all STR/BOOL columns."""
        return tuple(c.name for c in self._columns if not c.ctype.is_numeric)

    def __repr__(self) -> str:
        inner = ", ".join(str(column) for column in self._columns)
        return f"Schema({inner})"
