"""Pluggable column storage: in-memory arrays or memory-mapped chunks.

A :class:`~repro.db.table.Table` is a schema plus tids plus *somewhere
the column arrays live*. This module is that somewhere, split behind a
small :class:`ColumnStore` interface so the rest of the engine never
knows (or cares) which physical representation backs a table:

* :class:`InMemoryStore` — the original representation: one numpy array
  per column, fully resident. Still the reference implementation and
  the default for every constructed table.
* :class:`MmapColumnStore` — a durable on-disk layout: each column is a
  sequence of ``.npy`` chunk files opened with ``mmap_mode="r"`` plus a
  JSON manifest recording schema, chunk layout, and a content digest.
  Opening a table reads only the manifest; column bytes fault in on
  first touch (and only for the columns a query actually references),
  so datasets much larger than RAM open in milliseconds and a restarted
  server starts from warm page cache instead of regenerating data.
* :class:`GatherStore` / :class:`SliceStore` — lazy derived views used
  by ``Table.take``/``filter``/``slice_rows``: a filter of a 10M-row
  mmap table gathers a column only when that column is first read.

String columns cannot be memory-mapped as numpy object arrays, so they
are **dictionary-encoded** on write: an ``int64`` code per row (−1 for
NULL) plus a JSON value list in first-occurrence order. The encoding is
deterministic, which makes the content digest of a table identical
whether computed from the in-memory original or the reopened mmap copy
— that digest keys the persisted preprocess artifacts, so cache entries
written before a restart are found after it.

Atomicity: every writer (table directories here, preprocess artifacts
in :mod:`repro.core.artifacts`) stages into a ``*.tmp-<pid>-*`` sibling
and publishes with one ``os.replace``/``os.rename`` — concurrent
writers (forked workers racing to persist the same dataset) each
produce a complete staging copy and the first rename wins; losers
discard their staging copy and read the winner's. A reader never
observes a half-written table.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..errors import SchemaError, StorageError
from .schema import Column, Schema
from .segments import blocked_ranges
from .types import ColumnType, dict_decode, dict_encode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .table import Table

__all__ = [
    "ColumnStore",
    "GatherStore",
    "InMemoryStore",
    "MmapColumnStore",
    "SliceStore",
    "blocked_ranges",
    "store_for_columns",
    "table_digest",
]

#: Manifest format tag; bump on any incompatible layout change.
STORE_FORMAT = "dbwipes-columnar/1"

#: Default rows per column chunk (~8 MB of float64 per chunk).
DEFAULT_CHUNK_ROWS = 1_048_576

MANIFEST_NAME = "manifest.json"


class ColumnStore:
    """Where a table's column arrays physically live.

    The interface is deliberately small — the :class:`Table` layer
    provides all row/tid semantics; a store only answers *give me the
    array for this column* (``column``), *give me rows [lo, hi) of it*
    (``row_block``, which a chunked store can serve without assembling
    the whole column), and *how many rows* (``num_rows``).
    """

    #: Number of rows every column of this store holds.
    num_rows: int

    def column(self, name: str) -> np.ndarray:
        """The full array for ``name`` (may materialize lazily)."""
        raise NotImplementedError

    def row_block(self, name: str, lo: int, hi: int) -> np.ndarray:
        """Rows ``[lo, hi)`` of a column, reading as little as possible."""
        raise NotImplementedError

    def has_column(self, name: str) -> bool:
        """Whether this store physically holds a column called ``name``."""
        raise NotImplementedError


class InMemoryStore(ColumnStore):
    """The reference store: a plain dict of resident numpy arrays."""

    def __init__(self, columns: Mapping[str, np.ndarray], num_rows: int):
        self._columns = dict(columns)
        self.num_rows = num_rows

    def column(self, name: str) -> np.ndarray:
        return self._columns[name]

    def row_block(self, name: str, lo: int, hi: int) -> np.ndarray:
        return self._columns[name][lo:hi]

    def has_column(self, name: str) -> bool:
        return name in self._columns


class GatherStore(ColumnStore):
    """A lazy row-subset view: ``base.column(name)[positions]`` on demand.

    ``Table.take``/``filter`` build one of these instead of eagerly
    copying every column: a projection-heavy pipeline over a wide table
    gathers only the columns it touches. Chained gathers compose their
    position arrays immediately, so undo/redo stacks of filters never
    build deep view chains.
    """

    def __init__(self, base: ColumnStore, positions: np.ndarray):
        positions = np.asarray(positions, dtype=np.int64)
        if isinstance(base, GatherStore):
            positions = base._positions[positions]
            base = base._base
        elif isinstance(base, SliceStore):
            positions = positions + base._lo
            base = base._base
        self._base = base
        self._positions = positions
        self._cache: dict[str, np.ndarray] = {}
        self.num_rows = len(positions)

    def column(self, name: str) -> np.ndarray:
        array = self._cache.get(name)
        if array is None:
            array = self._base.column(name)[self._positions]
            self._cache[name] = array
        return array

    def row_block(self, name: str, lo: int, hi: int) -> np.ndarray:
        return self.column(name)[lo:hi]

    def has_column(self, name: str) -> bool:
        return self._base.has_column(name)


class SliceStore(ColumnStore):
    """A zero-copy contiguous row window ``[lo, hi)`` over another store.

    Backing for ``Table.slice_rows``: the partitioned backend's
    group-aligned row blocks are contiguous in segment order, so each
    block's columns are views — no per-block gather, no copies.
    """

    def __init__(self, base: ColumnStore, lo: int, hi: int):
        if isinstance(base, SliceStore):
            lo, hi = base._lo + lo, base._lo + hi
            base = base._base
        self._base = base
        self._lo = lo
        self._hi = hi
        self.num_rows = hi - lo

    def column(self, name: str) -> np.ndarray:
        return self._base.row_block(name, self._lo, self._hi)

    def row_block(self, name: str, lo: int, hi: int) -> np.ndarray:
        return self._base.row_block(name, self._lo + lo, self._lo + hi)

    def has_column(self, name: str) -> bool:
        return self._base.has_column(name)


class MmapColumnStore(ColumnStore):
    """Chunked per-column ``.npy`` files behind a JSON manifest.

    Open with :meth:`open` (reads only the manifest), write with
    :meth:`write` (stages then atomically renames). Numeric and boolean
    columns are served as ``numpy.memmap`` views — a single-chunk column
    is exactly one zero-copy mmap; multi-chunk columns concatenate
    lazily on first full-column access and the result is cached, while
    :meth:`row_block` touches only the chunks overlapping ``[lo, hi)``.
    String columns materialize from their dictionary encoding on first
    access (codes stay mmapped until then).
    """

    def __init__(self, directory: str | Path, manifest: dict):
        self.directory = Path(directory)
        self.manifest = manifest
        self.num_rows = int(manifest["n_rows"])
        self.chunk_rows = int(manifest["chunk_rows"])
        self._specs = {spec["name"]: spec for spec in manifest["columns"]}
        self._cache: dict[str, np.ndarray] = {}
        self._chunk_cache: dict[tuple[str, int], np.ndarray] = {}
        self._tids: np.ndarray | None = None

    # -- opening -------------------------------------------------------

    @classmethod
    def open(cls, directory: str | Path) -> "MmapColumnStore":
        """Open a persisted table directory; reads only the manifest."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        try:
            with manifest_path.open() as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise StorageError(
                f"{directory} is not a table directory (no {MANIFEST_NAME})"
            ) from None
        except (OSError, json.JSONDecodeError) as error:
            raise StorageError(f"cannot read {manifest_path}: {error}") from None
        if manifest.get("format") != STORE_FORMAT:
            raise StorageError(
                f"{manifest_path} has format {manifest.get('format')!r}, "
                f"expected {STORE_FORMAT!r}"
            )
        return cls(directory, manifest)

    @property
    def schema(self) -> Schema:
        """The persisted schema, reconstructed from the manifest."""
        return Schema(
            [
                Column(spec["name"], ColumnType(spec["type"]))
                for spec in self.manifest["columns"]
            ]
        )

    @property
    def name(self) -> str:
        """The persisted table name."""
        return self.manifest.get("name", "")

    @property
    def digest(self) -> str:
        """Content digest recorded at write time (see :func:`table_digest`)."""
        return self.manifest["digest"]

    def tids(self) -> np.ndarray:
        """The persisted tid array (mmapped; loaded once per store)."""
        if self._tids is None:
            self._tids = np.load(
                self.directory / self.manifest["tids"], mmap_mode="r"
            )
        return self._tids

    # -- reading -------------------------------------------------------

    def has_column(self, name: str) -> bool:
        return name in self._specs

    def _load_chunk(self, name: str, index: int) -> np.ndarray:
        key = (name, index)
        chunk = self._chunk_cache.get(key)
        if chunk is None:
            spec = self._specs[name]
            chunk = np.load(self.directory / spec["chunks"][index], mmap_mode="r")
            self._chunk_cache[key] = chunk
        return chunk

    def _values(self, spec: dict) -> list:
        values = spec.get("_values")
        if values is None:
            with (self.directory / spec["values"]).open() as handle:
                values = json.load(handle)
            spec["_values"] = values
        return values

    def column(self, name: str) -> np.ndarray:
        array = self._cache.get(name)
        if array is not None:
            return array
        spec = self._specs[name]
        n_chunks = len(spec["chunks"])
        if spec["type"] == ColumnType.STR.value:
            codes = self._codes(name, 0, self.num_rows)
            array = dict_decode(codes, self._values(spec))
        elif n_chunks == 1:
            array = self._load_chunk(name, 0)
        else:
            array = np.concatenate(
                [self._load_chunk(name, i) for i in range(n_chunks)]
            )
        self._cache[name] = array
        return array

    def _codes(self, name: str, lo: int, hi: int) -> np.ndarray:
        """Raw dictionary codes for rows [lo, hi) of a STR column."""
        return self._numeric_block(name, lo, hi)

    def _numeric_block(self, name: str, lo: int, hi: int) -> np.ndarray:
        first = lo // self.chunk_rows
        last = max(first, (hi - 1) // self.chunk_rows) if hi > lo else first
        parts = []
        for index in range(first, last + 1):
            chunk = self._load_chunk(name, index)
            base = index * self.chunk_rows
            parts.append(chunk[max(0, lo - base) : max(0, hi - base)])
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def row_block(self, name: str, lo: int, hi: int) -> np.ndarray:
        cached = self._cache.get(name)
        if cached is not None:
            return cached[lo:hi]
        spec = self._specs[name]
        if spec["type"] == ColumnType.STR.value:
            return dict_decode(self._codes(name, lo, hi), self._values(spec))
        return self._numeric_block(name, lo, hi)

    # -- writing -------------------------------------------------------

    @classmethod
    def write(
        cls,
        table: "Table",
        directory: str | Path,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        overwrite: bool = False,
    ) -> "MmapColumnStore":
        """Persist ``table`` into ``directory`` and return the new store.

        Stages every file in a ``<directory>.tmp-<pid>`` sibling and
        publishes with one atomic rename, so a crash mid-write leaves at
        worst a stale staging directory — never a readable-but-partial
        table. When two processes race to persist the same table, the
        first rename wins and the loser adopts the winner's copy (the
        content digest guarantees they are identical).
        """
        directory = Path(directory)
        if directory.exists():
            if not overwrite:
                raise StorageError(
                    f"{directory} already exists; pass overwrite=True to replace"
                )
            shutil.rmtree(directory)
        staging = directory.parent / f"{directory.name}.tmp-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            manifest = cls._write_files(table, staging, chunk_rows)
            directory.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(staging, directory)
            except OSError:
                if (directory / MANIFEST_NAME).exists():
                    # Lost a persist race: another process published a
                    # byte-identical copy first. Adopt it.
                    shutil.rmtree(staging, ignore_errors=True)
                else:
                    raise
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        return cls.open(directory)

    @staticmethod
    def _write_files(table: "Table", directory: Path, chunk_rows: int) -> dict:
        if chunk_rows < 1:
            raise StorageError("chunk_rows must be >= 1")
        schema = table.schema
        n_rows = len(table)
        column_specs = []
        for column in schema:
            array = table.column(column.name)
            spec: dict = {"name": column.name, "type": column.ctype.value}
            if column.ctype is ColumnType.STR:
                codes, values = dict_encode(array)
                values_file = f"{column.name}.values.json"
                with (directory / values_file).open("w") as handle:
                    json.dump(values, handle)
                spec["values"] = values_file
                array = codes
            chunks = []
            for i, (lo, hi) in enumerate(blocked_ranges(n_rows, chunk_rows)):
                chunk_file = f"{column.name}.c{i:05d}.npy"
                np.save(directory / chunk_file, np.ascontiguousarray(array[lo:hi]))
                chunks.append(chunk_file)
            spec["chunks"] = chunks
            column_specs.append(spec)
        np.save(directory / "tids.npy", np.ascontiguousarray(table.tids))
        manifest = {
            "format": STORE_FORMAT,
            "name": table.name,
            "n_rows": n_rows,
            "chunk_rows": int(chunk_rows),
            "digest": table.content_digest(),
            "tids": "tids.npy",
            "columns": column_specs,
        }
        manifest_path = directory / MANIFEST_NAME
        with manifest_path.open("w") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
        return manifest

    def describe(self) -> dict:
        """A JSON-safe summary for the inspect CLI / ``storage`` command."""
        total_bytes = 0
        for path in self.directory.iterdir():
            if path.is_file():
                total_bytes += path.stat().st_size
        return {
            "name": self.name,
            "rows": self.num_rows,
            "columns": [
                {
                    "name": spec["name"],
                    "type": spec["type"],
                    "chunks": len(spec["chunks"]),
                }
                for spec in self.manifest["columns"]
            ],
            "chunk_rows": self.chunk_rows,
            "digest": self.digest,
            "bytes": total_bytes,
        }


def table_digest(
    schema: Schema, columns, tids: np.ndarray, precomputed: str | None = None
) -> str:
    """Content digest of a table's logical values (blake2b-128 hex).

    Canonical over the *logical* content, not the physical layout:
    numeric/bool columns hash their C-contiguous bytes, string columns
    hash their deterministic dictionary encoding. The digest of an
    in-memory table therefore equals the digest of its mmap round-trip,
    which is what lets preprocess artifacts persisted before a restart
    be found after it (the artifact key starts with this digest).
    """
    if precomputed is not None:
        return precomputed
    h = hashlib.blake2b(digest_size=16)
    for column in schema:
        h.update(column.name.encode())
        h.update(column.ctype.value.encode())
        array = columns(column.name)
        if column.ctype is ColumnType.STR:
            codes, values = dict_encode(array)
            h.update(np.ascontiguousarray(codes).tobytes())
            h.update(json.dumps(values).encode())
        else:
            h.update(np.ascontiguousarray(array).tobytes())
    h.update(np.ascontiguousarray(np.asarray(tids, dtype=np.int64)).tobytes())
    return h.hexdigest()


def store_for_columns(
    schema: Schema, columns: Mapping[str, np.ndarray], validate: bool = True
) -> tuple[InMemoryStore, int]:
    """Validate a ``{name: array}`` mapping and wrap it as a store.

    The dtype/length checks previously inlined in ``Table.__init__``;
    they apply only to caller-supplied mappings — store-backed
    construction trusts the manifest (validating would defeat lazy
    opening by materializing every column).
    """
    from ..errors import TypeMismatchError

    out: dict[str, np.ndarray] = {}
    length: int | None = None
    for column in schema:
        try:
            array = columns[column.name]
        except KeyError:
            raise SchemaError(f"missing data for column {column.name!r}") from None
        array = np.asarray(array)
        if validate:
            expected = column.ctype.numpy_dtype
            if array.dtype != expected:
                raise TypeMismatchError(
                    f"column {column.name!r} has dtype {array.dtype}, "
                    f"expected {expected}"
                )
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise SchemaError(
                    f"column {column.name!r} has {len(array)} rows, "
                    f"expected {length}"
                )
        elif length is None:
            length = len(array)
        out[column.name] = array
    if length is None:
        length = 0
    return InMemoryStore(out, length), length
