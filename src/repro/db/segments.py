"""Segmented-array execution layer: one flat array, many groups.

The pipeline's hot paths — grouped aggregation in the executor,
leave-one-out influence in the Preprocessor, and the ranker's Δε
previews — all operate on *the same shape of data*: the values of one
numeric expression partitioned into per-group segments. Iterating over
those segments in Python (one ``Aggregate.compute`` call per group) is
the dominant cost at scale; this module replaces the iteration with a
single :class:`SegmentedValues` structure plus vectorized kernels.

A ``SegmentedValues`` holds a flat float64 ``values`` array in which the
elements of segment ``g`` occupy ``values[offsets[g]:offsets[g + 1]]``
(the classic CSR/ragged-array layout). Kernels are built on
``np.ufunc.reduceat`` over the non-empty segment starts, which makes
every per-segment reduction one C-level pass regardless of the number
of segments:

* :func:`segment_sum` / :func:`segment_min` / :func:`segment_max` —
  per-segment reductions with explicit empty-segment fills (``reduceat``
  alone mishandles zero-length segments, so empties are masked out and
  filled separately);
* :meth:`SegmentedValues.segment_ids` — the inverse map from flat
  element position to segment index, used to broadcast per-segment
  statistics back onto elements (the "sorted-segment trick" behind the
  closed-form grouped leave-one-out kernels in
  :mod:`repro.db.aggregates`).

NULL semantics match :mod:`repro.db.aggregates`: NaN is the FLOAT NULL
encoding and every kernel that claims "valid" arithmetic excludes NaN
positions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import AggregateError, StorageError


class SegmentedValues:
    """A flat float64 array partitioned into contiguous segments.

    Parameters
    ----------
    values:
        Flat array of per-tuple values, segment by segment.
    offsets:
        int64 array of length ``n_segments + 1`` with ``offsets[0] == 0``,
        ``offsets[-1] == len(values)``, monotonically non-decreasing.
        Segment ``g`` is ``values[offsets[g]:offsets[g + 1]]``; empty
        segments are allowed.
    """

    __slots__ = ("values", "offsets", "_segment_ids", "_valid", "memo")

    def __init__(self, values: np.ndarray, offsets: np.ndarray):
        values = np.asarray(values)
        if values.dtype == object:
            raise AggregateError("segmented kernels require numeric input")
        self.values = np.asarray(values, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if len(offsets) == 0 or offsets[0] != 0 or offsets[-1] != len(self.values):
            raise AggregateError(
                "offsets must start at 0 and end at len(values)"
            )
        if np.any(np.diff(offsets) < 0):
            raise AggregateError("offsets must be non-decreasing")
        self.offsets = offsets
        self._segment_ids: np.ndarray | None = None
        self._valid: np.ndarray | None = None
        #: Kernel-local caches of segment-only derivations (e.g. the
        #: no-removal baselines and central moments the pair-sparse Δε
        #: kernels reuse). Keyed by the kernels themselves; races are
        #: benign (recomputation yields identical values).
        self.memo: dict = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_arrays(cls, arrays: Sequence[np.ndarray]) -> "SegmentedValues":
        """Build from one array per segment (concatenating them)."""
        arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
        lengths = np.array([len(a) for a in arrays], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        if arrays:
            values = np.concatenate(arrays)
        else:
            values = np.empty(0, dtype=np.float64)
        return cls(values, offsets)

    @classmethod
    def from_codes(
        cls, values: np.ndarray, codes: np.ndarray, n_segments: int
    ) -> "tuple[SegmentedValues, np.ndarray]":
        """Build by stably sorting ``values`` on integer segment ``codes``.

        Returns ``(seg, order)`` where ``order`` is the permutation that
        groups the flat input (``seg.values == values[order]``), so
        callers can carry parallel arrays (tids, masks) into segment
        order with the same gather.
        """
        codes = np.asarray(codes, dtype=np.int64)
        order = np.argsort(codes, kind="stable")
        counts = np.bincount(codes, minlength=n_segments)
        if len(counts) > n_segments:
            raise AggregateError("codes exceed the declared segment count")
        offsets = np.concatenate([[0], np.cumsum(counts)])
        return cls(np.asarray(values, dtype=np.float64)[order], offsets), order

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def n_segments(self) -> int:
        """Number of segments (groups)."""
        return len(self.offsets) - 1

    def __len__(self) -> int:
        return len(self.values)

    @property
    def lengths(self) -> np.ndarray:
        """Per-segment element counts (NaNs included)."""
        return np.diff(self.offsets)

    @property
    def segment_ids(self) -> np.ndarray:
        """``out[i]`` = segment index owning flat position ``i`` (cached)."""
        if self._segment_ids is None:
            self._segment_ids = np.repeat(
                np.arange(self.n_segments, dtype=np.int64), self.lengths
            )
        return self._segment_ids

    @property
    def valid(self) -> np.ndarray:
        """Boolean mask of non-NaN (non-NULL) flat positions (cached)."""
        if self._valid is None:
            self._valid = ~np.isnan(self.values)
        return self._valid

    def segment(self, index: int) -> np.ndarray:
        """Segment ``index`` as a view into the flat array."""
        return self.values[self.offsets[index]: self.offsets[index + 1]]

    def to_arrays(self) -> list[np.ndarray]:
        """All segments as a list of views (for interop with loop code)."""
        return [self.segment(g) for g in range(self.n_segments)]

    def split_flat(self, flat: np.ndarray) -> list[np.ndarray]:
        """Partition a parallel flat array into per-segment views."""
        flat = np.asarray(flat)
        if len(flat) != len(self.values):
            raise AggregateError("flat array length does not match segments")
        if self.n_segments == 0:
            return []
        return np.split(flat, self.offsets[1:-1])

    def slice_segments(self, start: int, stop: int) -> "SegmentedValues":
        """Segments ``[start, stop)`` as a standalone SegmentedValues.

        The flat values are a *view* into the parent array and the
        offsets are rebased, so a contiguous segment block costs O(stop
        − start) regardless of the flat volume. Because every grouped
        kernel is a per-segment-local fold, running it over the block
        yields bit-identical per-segment results to running it over the
        whole array — the property the partitioned execution backend's
        scatter step is built on.
        """
        if start < 0 or stop < start or stop > self.n_segments:
            raise AggregateError(
                f"segment slice [{start}, {stop}) out of range "
                f"(have {self.n_segments} segments)"
            )
        base = self.offsets[start]
        values = self.values[base: self.offsets[stop]]
        offsets = self.offsets[start: stop + 1] - base
        return SegmentedValues(values, offsets)

    def __repr__(self) -> str:
        return (
            f"SegmentedValues({len(self.values)} values, "
            f"{self.n_segments} segments)"
        )


def blocked_ranges(n_rows: int, block_rows: int) -> Iterator[tuple[int, int]]:
    """Yield ``(lo, hi)`` row bounds that tile ``n_rows`` in fixed blocks.

    The fixed-size counterpart of :func:`partition_offsets`: that one
    cuts on segment boundaries for grouped math, this one tiles a flat
    row range. It is the chunk layout of
    :class:`~repro.db.store.MmapColumnStore` on both the write and the
    read path — kept tiny and shared so the two can never disagree.
    """
    if block_rows < 1:
        raise StorageError("block_rows must be >= 1")
    if n_rows == 0:
        yield (0, 0)
        return
    for lo in range(0, n_rows, block_rows):
        yield (lo, min(lo + block_rows, n_rows))


def partition_offsets(offsets: np.ndarray, n_partitions: int) -> np.ndarray:
    """Segment-boundary cut points for ≤ ``n_partitions`` contiguous blocks.

    Returns an ascending int64 array ``bounds`` with ``bounds[0] == 0``
    and ``bounds[-1] == n_segments``; block ``b`` covers segments
    ``[bounds[b], bounds[b + 1])``. Cuts always land on segment
    boundaries (a segment is never split across blocks — that is what
    keeps per-block grouped folds bit-identical to the global ones) and
    are placed so blocks balance *flat element counts*, not segment
    counts. Degenerate cuts (several targets inside one huge segment)
    collapse, so fewer than ``n_partitions`` blocks may come back.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n_segments = len(offsets) - 1
    if n_partitions < 1:
        raise AggregateError("n_partitions must be >= 1")
    if n_segments <= 0 or n_partitions == 1:
        return np.array([0, max(n_segments, 0)], dtype=np.int64)
    total = int(offsets[-1])
    targets = (total * np.arange(1, n_partitions, dtype=np.int64)) // n_partitions
    cuts = np.searchsorted(offsets, targets, side="left")
    cuts = np.clip(cuts, 0, n_segments)
    bounds = np.unique(np.concatenate([[0], cuts, [n_segments]]))
    return np.asarray(bounds, dtype=np.int64)


# ----------------------------------------------------------------------
# reduceat kernels
# ----------------------------------------------------------------------


def _reduceat(
    ufunc: np.ufunc,
    values: np.ndarray,
    offsets: np.ndarray,
    empty_fill: float,
) -> np.ndarray:
    """``ufunc``-reduce each segment, filling empty segments explicitly.

    ``np.ufunc.reduceat`` returns ``values[start]`` (not the identity)
    for zero-length slices and cannot take a start index equal to
    ``len(values)``, so empty segments are dropped from the index list
    and written as ``empty_fill`` instead. Dropping them is sound
    because offsets are monotone: the surviving starts still delimit
    exactly the non-empty segments.
    """
    n = len(offsets) - 1
    out = np.full(n, empty_fill, dtype=np.float64)
    if n == 0 or len(values) == 0:
        return out
    starts = offsets[:-1]
    nonempty = starts < offsets[1:]
    if nonempty.any():
        out[nonempty] = ufunc.reduceat(values, starts[nonempty])
    return out


def _reduceat_batch(
    ufunc: np.ufunc,
    values: np.ndarray,
    offsets: np.ndarray,
    empty_fill: float,
) -> np.ndarray:
    """:func:`_reduceat` over a ``(rows, n)`` matrix, one pass per call.

    ``out[r, g]`` reduces ``values[r, offsets[g]:offsets[g + 1]]``. The
    per-segment accumulation order is identical to the 1-D kernel (a
    sequential left fold), so batching R rows produces bit-identical
    results to R separate 1-D calls — the property the batched Δε
    scorer's parity tests rely on.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise AggregateError("batched reduceat requires a 2-D value matrix")
    rows = values.shape[0]
    n = len(offsets) - 1
    out = np.full((rows, n), empty_fill, dtype=np.float64)
    if n == 0 or values.shape[1] == 0 or rows == 0:
        return out
    starts = offsets[:-1]
    nonempty = starts < offsets[1:]
    if nonempty.any():
        out[:, nonempty] = ufunc.reduceat(values, starts[nonempty], axis=1)
    return out


def segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sum; empty segments sum to 0."""
    return _reduceat(np.add, np.asarray(values, dtype=np.float64), offsets, 0.0)


def segment_sum_batch(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Row-wise :func:`segment_sum` of a ``(rows, n)`` matrix."""
    return _reduceat_batch(np.add, values, offsets, 0.0)


def segment_min_batch(
    values: np.ndarray, offsets: np.ndarray, empty_fill: float = np.inf
) -> np.ndarray:
    """Row-wise :func:`segment_min` of a ``(rows, n)`` matrix."""
    return _reduceat_batch(np.minimum, values, offsets, empty_fill)


def segment_max_batch(
    values: np.ndarray, offsets: np.ndarray, empty_fill: float = -np.inf
) -> np.ndarray:
    """Row-wise :func:`segment_max` of a ``(rows, n)`` matrix."""
    return _reduceat_batch(np.maximum, values, offsets, empty_fill)


def segment_count_batch(mask: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Row-wise :func:`segment_count` of a ``(rows, n)`` boolean matrix.

    Boolean input is accumulated as int64 (no ``(rows, n)`` float64
    temporary); the result is converted to float64 afterwards, which is
    exact for counts and therefore bit-identical to the float-sum form.
    """
    mask = np.asarray(mask)
    if mask.dtype == np.bool_:
        return _count_reduceat_batch(mask, offsets).astype(np.float64)
    return segment_sum_batch(np.asarray(mask, dtype=np.float64), offsets)


def _count_reduceat_batch(mask: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-(row, segment) True counts of a boolean matrix, as int64."""
    if mask.ndim != 2:
        raise AggregateError("batched reduceat requires a 2-D value matrix")
    rows = mask.shape[0]
    n = len(offsets) - 1
    out = np.zeros((rows, n), dtype=np.int64)
    if n == 0 or mask.shape[1] == 0 or rows == 0:
        return out
    starts = offsets[:-1]
    nonempty = starts < offsets[1:]
    if nonempty.any():
        out[:, nonempty] = np.add.reduceat(
            mask.view(np.uint8), starts[nonempty], axis=1, dtype=np.int64
        )
    return out


def segment_min(
    values: np.ndarray, offsets: np.ndarray, empty_fill: float = np.inf
) -> np.ndarray:
    """Per-segment min; empty segments yield ``empty_fill`` (+inf)."""
    return _reduceat(np.minimum, values, offsets, empty_fill)


def segment_max(
    values: np.ndarray, offsets: np.ndarray, empty_fill: float = -np.inf
) -> np.ndarray:
    """Per-segment max; empty segments yield ``empty_fill`` (-inf)."""
    return _reduceat(np.maximum, values, offsets, empty_fill)


def segment_count(mask: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment count of True positions in a boolean mask.

    Boolean input is accumulated as int64 and converted — exact for
    counts, so bit-identical to the float-sum form, without the float64
    temporary.
    """
    mask = np.asarray(mask)
    if mask.dtype == np.bool_:
        return _count_reduceat_batch(mask[None, :], offsets)[0].astype(np.float64)
    return segment_sum(np.asarray(mask, dtype=np.float64), offsets)


def segment_stats(
    seg: SegmentedValues, where: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """``(n_valid, total)`` per segment over non-NaN positions.

    ``where`` optionally restricts which flat positions participate
    (NaN positions are always excluded).
    """
    keep = seg.valid if where is None else (seg.valid & where)
    n_valid = segment_count(keep, seg.offsets)
    total = segment_sum(np.where(keep, seg.values, 0.0), seg.offsets)
    return n_valid, total


class SegmentPairs:
    """A compacted selection of (mask-row, segment) pairs.

    The sparse Δε scorer copies *whole segments* — only those a
    remove-mask actually touches — into one flat array and re-aggregates
    just these pairs. ``flat`` holds the gather indices into the parent
    ``seg.values`` (each touched segment's full range, concatenated),
    ``offsets`` delimits the pairs, and ``group_idx`` names each pair's
    original segment. Because every grouped kernel is a per-segment-local
    left fold, re-running it over a wholesale-copied segment is
    bit-identical to running it in place — the property that lets the
    pair kernels in :mod:`repro.db.aggregates` reuse precomputed
    segment statistics without changing a single bit of output.
    """

    __slots__ = ("seg", "flat", "offsets", "group_idx", "values", "_valid")

    def __init__(
        self,
        seg: SegmentedValues,
        flat: np.ndarray,
        offsets: np.ndarray,
        group_idx: np.ndarray,
    ):
        self.seg = seg
        self.flat = flat
        self.offsets = offsets
        self.group_idx = group_idx
        self.values = seg.values[flat]
        self._valid: np.ndarray | None = None

    @property
    def n_pairs(self) -> int:
        """Number of (mask-row, segment) pairs."""
        return len(self.offsets) - 1

    @property
    def valid(self) -> np.ndarray:
        """Non-NaN flat positions (gathered from the parent, cached)."""
        if self._valid is None:
            self._valid = self.seg.valid[self.flat]
        return self._valid


def segment_stats_batch(
    seg: SegmentedValues, where: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`segment_stats` for a ``(rows, n)`` restriction matrix.

    Returns ``(n_valid, total)`` of shape ``(rows, n_segments)``: row
    ``r`` equals ``segment_stats(seg, where[r])`` bit-for-bit (the batch
    kernels keep the 1-D accumulation order).
    """
    where = np.asarray(where, dtype=bool)
    if where.ndim != 2 or where.shape[1] != len(seg.values):
        raise AggregateError("restriction matrix shape does not match segments")
    keep = seg.valid[None, :] & where
    n_valid = segment_count_batch(keep, seg.offsets)
    total = segment_sum_batch(
        np.where(keep, seg.values[None, :], 0.0), seg.offsets
    )
    return n_valid, total


def as_segments(
    values: "SegmentedValues | Iterable[np.ndarray]",
) -> SegmentedValues:
    """Coerce a list of per-group arrays (or a SegmentedValues) to segments."""
    if isinstance(values, SegmentedValues):
        return values
    return SegmentedValues.from_arrays(list(values))
