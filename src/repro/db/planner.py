"""Semantic analysis: bind a parsed SELECT against a table schema.

The planner validates the statement and produces a :class:`LogicalPlan`
the executor can run directly:

* every column reference must exist in the table schema;
* WHERE/HAVING must be boolean;
* every non-aggregate select item must match a GROUP BY expression
  (structural equality on the expression tree, like SQL engines do);
* aggregate arguments must be numeric (except ``count``, which accepts
  anything including ``*``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlanError, TypeMismatchError, UnknownColumnError
from .aggregates import Aggregate, get_aggregate
from .expr import ColumnRef, Expr
from .schema import Schema
from .sqlparse.ast_nodes import AggregateCall, SelectStatement, Star
from .types import ColumnType


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output: the call, its implementation, its output name."""

    call: AggregateCall
    impl: Aggregate
    output_name: str

    @property
    def is_star(self) -> bool:
        """Whether this is ``count(*)``."""
        return isinstance(self.call.arg, Star)


@dataclass(frozen=True)
class KeySpec:
    """One group-key output: the expression and its output name."""

    expr: Expr
    output_name: str
    ctype: ColumnType


@dataclass(frozen=True)
class LogicalPlan:
    """A validated, executable description of a SELECT statement."""

    statement: SelectStatement
    table_name: str
    keys: tuple[KeySpec, ...]
    aggs: tuple[AggSpec, ...]
    #: Output column order: each entry is ("key"|"agg", index into keys/aggs).
    output_order: tuple[tuple[str, int], ...] = field(default_factory=tuple)

    @property
    def is_aggregate_query(self) -> bool:
        """Whether the query computes any aggregates."""
        return bool(self.aggs)

    @property
    def is_grouped(self) -> bool:
        """Whether the query has a GROUP BY clause."""
        return bool(self.statement.group_by)

    def output_names(self) -> tuple[str, ...]:
        """Output column names in SELECT order."""
        names = []
        for kind, index in self.output_order:
            if kind == "key":
                names.append(self.keys[index].output_name)
            else:
                names.append(self.aggs[index].output_name)
        return tuple(names)


def plan_select(statement: SelectStatement, schema: Schema) -> LogicalPlan:
    """Validate ``statement`` against ``schema`` and build a :class:`LogicalPlan`."""
    _check_columns_exist(statement, schema)
    if statement.where is not None:
        if statement.where.result_type(schema) is not ColumnType.BOOL:
            raise PlanError("WHERE clause must be a boolean expression")
    has_aggs = any(item.is_aggregate for item in statement.items)
    grouped = bool(statement.group_by)
    if grouped and not has_aggs:
        raise PlanError("GROUP BY without aggregates is not supported")
    if statement.having is not None and not has_aggs:
        raise PlanError("HAVING requires an aggregate query")

    keys: list[KeySpec] = []
    aggs: list[AggSpec] = []
    output_order: list[tuple[str, int]] = []
    used_names: set[str] = set()

    group_exprs = list(statement.group_by)
    if has_aggs:
        _plan_aggregate_items(statement, schema, group_exprs, keys, aggs, output_order, used_names)
    else:
        _plan_projection_items(statement, schema, keys, output_order, used_names)
    return LogicalPlan(
        statement=statement,
        table_name=statement.table,
        keys=tuple(keys),
        aggs=tuple(aggs),
        output_order=tuple(output_order),
    )


def _plan_aggregate_items(
    statement: SelectStatement,
    schema: Schema,
    group_exprs: list[Expr],
    keys: list[KeySpec],
    aggs: list[AggSpec],
    output_order: list[tuple[str, int]],
    used_names: set[str],
) -> None:
    key_index_by_expr: dict[Expr, int] = {}
    for item in statement.items:
        name = _unique_name(item.output_name(), used_names)
        if isinstance(item.value, AggregateCall):
            impl = get_aggregate(item.value.func)
            if not isinstance(item.value.arg, Star):
                arg_type = item.value.arg.result_type(schema)
                if item.value.func != "count" and not arg_type.is_numeric:
                    raise TypeMismatchError(
                        f"{item.value.func}() requires a numeric argument, got {arg_type}"
                    )
            elif item.value.func != "count":
                raise PlanError(f"{item.value.func}(*) is not valid; only count(*)")
            aggs.append(AggSpec(call=item.value, impl=impl, output_name=name))
            output_order.append(("agg", len(aggs) - 1))
        else:
            matched = None
            for index, group_expr in enumerate(group_exprs):
                if group_expr == item.value:
                    matched = index
                    break
            if matched is None:
                raise PlanError(
                    f"select item {item.value.to_sql()} must appear in GROUP BY"
                )
            if item.value in key_index_by_expr:
                output_order.append(("key", key_index_by_expr[item.value]))
                continue
            keys.append(
                KeySpec(
                    expr=item.value,
                    output_name=name,
                    ctype=item.value.result_type(schema),
                )
            )
            key_index_by_expr[item.value] = len(keys) - 1
            output_order.append(("key", len(keys) - 1))
    # GROUP BY expressions not in the select list still partition the data.
    for group_expr in group_exprs:
        if group_expr not in key_index_by_expr:
            name = _unique_name(_expr_name(group_expr), used_names)
            keys.append(
                KeySpec(
                    expr=group_expr,
                    output_name=name,
                    ctype=group_expr.result_type(schema),
                )
            )
            key_index_by_expr[group_expr] = len(keys) - 1


def _plan_projection_items(
    statement: SelectStatement,
    schema: Schema,
    keys: list[KeySpec],
    output_order: list[tuple[str, int]],
    used_names: set[str],
) -> None:
    for item in statement.items:
        assert not isinstance(item.value, AggregateCall)
        name = _unique_name(item.output_name(), used_names)
        keys.append(
            KeySpec(
                expr=item.value,
                output_name=name,
                ctype=item.value.result_type(schema),
            )
        )
        output_order.append(("key", len(keys) - 1))


def _check_columns_exist(statement: SelectStatement, schema: Schema) -> None:
    referenced: set[str] = set()
    for item in statement.items:
        if isinstance(item.value, AggregateCall):
            if not isinstance(item.value.arg, Star):
                referenced |= item.value.arg.columns()
        else:
            referenced |= item.value.columns()
    if statement.where is not None:
        referenced |= statement.where.columns()
    for expr in statement.group_by:
        referenced |= expr.columns()
    for name in sorted(referenced):
        if name not in schema:
            raise UnknownColumnError(name, schema.names)


def _unique_name(base: str, used: set[str]) -> str:
    name = base
    suffix = 2
    while name in used:
        name = f"{base}_{suffix}"
        suffix += 1
    used.add(name)
    return name


def _expr_name(expr: Expr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    sql = expr.to_sql()
    safe = "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in sql)
    return safe.strip("_") or "key"
