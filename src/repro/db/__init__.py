"""``repro.db`` — the in-memory database substrate.

A column-store engine with stable tuple ids, a SQL dialect covering the
paper's aggregate GROUP BY queries, removable aggregates, and
fine-grained provenance capture. See DESIGN.md for why this substitutes
for the original demo's PostgreSQL backend.
"""

from .aggregates import AGGREGATE_NAMES, Aggregate, get_aggregate, is_aggregate_name
from .catalog import Database
from .csvio import read_csv, write_csv
from .executor import execute_plan
from .expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    conjoin,
)
from .planner import LogicalPlan, plan_select
from .predicate import (
    CategoricalClause,
    Clause,
    NumericClause,
    Predicate,
    equals,
    in_set,
    interval,
)
from .provenance import CoarseProvenance, FineProvenance, OpNode
from .result import ResultSet
from .schema import Column, Schema
from .segments import (
    SegmentedValues,
    as_segments,
    segment_count,
    segment_count_batch,
    segment_max,
    segment_max_batch,
    segment_min,
    segment_min_batch,
    segment_stats_batch,
    segment_sum,
    segment_sum_batch,
)
from .sqlparse import SelectStatement, parse_select
from .store import (
    ColumnStore,
    GatherStore,
    InMemoryStore,
    MmapColumnStore,
    SliceStore,
    table_digest,
)
from .table import Table
from .types import ColumnType

__all__ = [
    "AGGREGATE_NAMES",
    "Aggregate",
    "And",
    "Arithmetic",
    "Between",
    "CategoricalClause",
    "Clause",
    "CoarseProvenance",
    "Column",
    "ColumnRef",
    "ColumnStore",
    "ColumnType",
    "Comparison",
    "Database",
    "GatherStore",
    "InMemoryStore",
    "MmapColumnStore",
    "SliceStore",
    "Expr",
    "FineProvenance",
    "FuncCall",
    "InList",
    "IsNull",
    "Like",
    "Literal",
    "LogicalPlan",
    "Negate",
    "Not",
    "NumericClause",
    "OpNode",
    "Or",
    "Predicate",
    "ResultSet",
    "Schema",
    "SegmentedValues",
    "SelectStatement",
    "Table",
    "as_segments",
    "conjoin",
    "equals",
    "execute_plan",
    "get_aggregate",
    "in_set",
    "interval",
    "is_aggregate_name",
    "parse_select",
    "plan_select",
    "read_csv",
    "segment_count",
    "segment_count_batch",
    "segment_max",
    "segment_max_batch",
    "segment_min",
    "segment_min_batch",
    "segment_stats_batch",
    "segment_sum",
    "segment_sum_batch",
    "table_digest",
    "write_csv",
]
