"""The database catalog: named tables plus the SQL entry point."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ..errors import UnknownTableError
from .executor import execute_plan
from .planner import plan_select
from .result import ResultSet
from .schema import Schema
from .sqlparse.ast_nodes import SelectStatement
from .sqlparse.parser import parse_select
from .table import Table
from .types import ColumnType


class Database:
    """A collection of named tables with a ``sql()`` query entry point.

    This stands in for the PostgreSQL instance of the original demo (see
    DESIGN.md substitutions): it executes the aggregate GROUP BY dialect
    with fine-grained provenance capture, which is all DBWipes requires
    of its backing store.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    # -- table management ------------------------------------------------

    def register(self, table: Table, name: str | None = None) -> Table:
        """Register a table under ``name`` (defaults to ``table.name``)."""
        name = name or table.name
        if not name:
            raise UnknownTableError("table must have a name to be registered")
        stored = table.rename(name)
        self._tables[name] = stored
        return stored

    def create_table(
        self,
        name: str,
        data: Mapping[str, Sequence[Any]],
        types: Mapping[str, ColumnType | str] | None = None,
    ) -> Table:
        """Create and register a table from ``{column: values}`` data."""
        table = Table.from_columns(data, types=types, name=name)
        return self.register(table)

    def create_from_rows(
        self, name: str, schema: Schema, rows: Iterable[Sequence[Any]]
    ) -> Table:
        """Create and register a table from row tuples."""
        table = Table.from_rows(schema, rows, name=name)
        return self.register(table)

    def table(self, name: str) -> Table:
        """Look up a registered table by name."""
        try:
            return self._tables[name]
        except KeyError:
            available = ", ".join(sorted(self._tables)) or "<none>"
            raise UnknownTableError(
                f"unknown table {name!r} (available: {available})"
            ) from None

    def drop(self, name: str) -> None:
        """Remove a table from the catalog."""
        self.table(name)
        del self._tables[name]

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all registered tables, sorted."""
        return tuple(sorted(self._tables))

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- querying ----------------------------------------------------------

    def sql(self, query: str | SelectStatement) -> ResultSet:
        """Parse (if needed), plan, and execute a SELECT statement."""
        if isinstance(query, str):
            statement = parse_select(query)
        else:
            statement = query
        table = self.table(statement.table)
        plan = plan_select(statement, table.schema)
        return execute_plan(plan, table)

    execute = sql

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{len(table)}]" for name, table in sorted(self._tables.items())
        )
        return f"Database({parts})"
