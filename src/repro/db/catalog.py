"""The database catalog: named tables plus the SQL entry point."""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..errors import StorageError, UnknownTableError
from .executor import execute_plan
from .planner import plan_select
from .result import ResultSet
from .schema import Schema
from .sqlparse.ast_nodes import SelectStatement
from .sqlparse.parser import parse_select
from .store import MANIFEST_NAME
from .table import Table
from .types import ColumnType


class Database:
    """A collection of named tables with a ``sql()`` query entry point.

    This stands in for the PostgreSQL instance of the original demo (see
    DESIGN.md substitutions): it executes the aggregate GROUP BY dialect
    with fine-grained provenance capture, which is all DBWipes requires
    of its backing store.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    # -- table management ------------------------------------------------

    def register(self, table: Table, name: str | None = None) -> Table:
        """Register a table under ``name`` (defaults to ``table.name``)."""
        name = name or table.name
        if not name:
            raise UnknownTableError("table must have a name to be registered")
        stored = table.rename(name)
        self._tables[name] = stored
        return stored

    def create_table(
        self,
        name: str,
        data: Mapping[str, Sequence[Any]],
        types: Mapping[str, ColumnType | str] | None = None,
    ) -> Table:
        """Create and register a table from ``{column: values}`` data."""
        table = Table.from_columns(data, types=types, name=name)
        return self.register(table)

    def create_from_rows(
        self, name: str, schema: Schema, rows: Iterable[Sequence[Any]]
    ) -> Table:
        """Create and register a table from row tuples."""
        table = Table.from_rows(schema, rows, name=name)
        return self.register(table)

    def table(self, name: str) -> Table:
        """Look up a registered table by name."""
        try:
            return self._tables[name]
        except KeyError:
            available = ", ".join(sorted(self._tables)) or "<none>"
            raise UnknownTableError(
                f"unknown table {name!r} (available: {available})"
            ) from None

    def drop(self, name: str) -> None:
        """Remove a table from the catalog."""
        self.table(name)
        del self._tables[name]

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all registered tables, sorted."""
        return tuple(sorted(self._tables))

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- durable storage ---------------------------------------------------

    def save(
        self,
        directory: str | Path,
        chunk_rows: int | None = None,
        overwrite: bool = False,
    ) -> "Database":
        """Persist every table as a columnar subdirectory of ``directory``.

        Returns a new database whose tables read from the just-written
        memory-mapped files, so a caller that keeps serving after a save
        serves the durable copy.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        out = Database()
        for name, table in sorted(self._tables.items()):
            saved = table.save(
                directory / name, chunk_rows=chunk_rows, overwrite=overwrite
            )
            out.register(saved, name)
        return out

    @classmethod
    def open(cls, directory: str | Path) -> "Database":
        """Open a database persisted by :meth:`save` (manifest reads only)."""
        directory = Path(directory)
        if not directory.is_dir():
            raise StorageError(f"{directory} is not a database directory")
        db = cls()
        for child in sorted(directory.iterdir()):
            if child.is_dir() and (child / MANIFEST_NAME).exists():
                db.register(Table.open(child), child.name)
        if not db._tables:
            raise StorageError(f"{directory} holds no table directories")
        return db

    # -- querying ----------------------------------------------------------

    def sql(self, query: str | SelectStatement) -> ResultSet:
        """Parse (if needed), plan, and execute a SELECT statement."""
        if isinstance(query, str):
            statement = parse_select(query)
        else:
            statement = query
        table = self.table(statement.table)
        plan = plan_select(statement, table.schema)
        return execute_plan(plan, table)

    execute = sql

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{len(table)}]" for name, table in sorted(self._tables.items())
        )
        return f"Database({parts})"
