"""SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator

from ...errors import SQLSyntaxError


class TokenType(enum.Enum):
    """Lexical categories produced by :func:`tokenize`."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    LPAREN = "lparen"
    RPAREN = "rparen"
    COMMA = "comma"
    STAR = "star"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    ttype: TokenType
    text: str
    value: Any
    position: int

    def is_keyword(self, *keywords: str) -> bool:
        """Whether this is an identifier matching any keyword (case-insensitive)."""
        if self.ttype is not TokenType.IDENT:
            return False
        upper = self.text.upper()
        return any(upper == keyword.upper() for keyword in keywords)


_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "/", "%")


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text into a list ending with an EOF token."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        char = text[i]
        if char.isspace():
            i += 1
            continue
        if char == "-" and i + 1 < n and text[i + 1] == "-":
            # Line comment.
            while i < n and text[i] != "\n":
                i += 1
            continue
        if char == "(":
            yield Token(TokenType.LPAREN, "(", "(", i)
            i += 1
            continue
        if char == ")":
            yield Token(TokenType.RPAREN, ")", ")", i)
            i += 1
            continue
        if char == ",":
            yield Token(TokenType.COMMA, ",", ",", i)
            i += 1
            continue
        if char == "*":
            yield Token(TokenType.STAR, "*", "*", i)
            i += 1
            continue
        if char == "'":
            literal, end = _read_string(text, i)
            yield Token(TokenType.STRING, text[i:end], literal, i)
            i = end
            continue
        if char.isdigit() or (char == "." and i + 1 < n and text[i + 1].isdigit()):
            value, end = _read_number(text, i)
            yield Token(TokenType.NUMBER, text[i:end], value, i)
            i = end
            continue
        if char.isalpha() or char == "_":
            end = i + 1
            while end < n and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[i:end]
            yield Token(TokenType.IDENT, word, word, i)
            i = end
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                yield Token(TokenType.OPERATOR, op, op, i)
                i += len(op)
                matched = True
                break
        if matched:
            continue
        raise SQLSyntaxError(f"unexpected character {char!r}", position=i, text=text)
    yield Token(TokenType.EOF, "", None, n)


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string with ``''`` escaping; returns (value, end)."""
    i = start + 1
    n = len(text)
    parts: list[str] = []
    while i < n:
        char = text[i]
        if char == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(char)
        i += 1
    raise SQLSyntaxError("unterminated string literal", position=start, text=text)


def _read_number(text: str, start: int) -> tuple[int | float, int]:
    """Read an integer or float literal; returns (value, end)."""
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        char = text[i]
        if char.isdigit():
            i += 1
        elif char == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif char in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and text[i] in "+-":
                i += 1
        else:
            break
    raw = text[start:i]
    try:
        if seen_dot or seen_exp:
            return float(raw), i
        return int(raw), i
    except ValueError:
        raise SQLSyntaxError(f"bad number literal {raw!r}", position=start, text=text) from None
