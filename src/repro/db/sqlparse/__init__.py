"""SQL dialect for the DBWipes reproduction.

Supports the aggregate GROUP BY SELECTs the paper's interface issues,
including expression group keys (e.g. ``GROUP BY time / 30`` for
30-minute windows), WHERE with the full boolean algebra, HAVING over
output columns, ORDER BY, and LIMIT.
"""

from .ast_nodes import AggregateCall, OrderItem, SelectItem, SelectStatement, Star
from .parser import parse_select
from .tokens import Token, TokenType, tokenize

__all__ = [
    "AggregateCall",
    "OrderItem",
    "SelectItem",
    "SelectStatement",
    "Star",
    "Token",
    "TokenType",
    "parse_select",
    "tokenize",
]
