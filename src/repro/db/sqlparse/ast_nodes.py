"""AST dataclasses for parsed SELECT statements.

These nodes sit above the scalar expression layer (:mod:`repro.db.expr`):
a :class:`SelectStatement` holds scalar ``Expr`` trees for select items,
WHERE, and GROUP BY keys, plus :class:`AggregateCall` wrappers for the
aggregate functions the paper supports. Every node renders back to SQL so
the frontend can rewrite queries when predicates are clicked.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

from ..expr import And, Expr, Not, conjoin


@dataclass(frozen=True)
class Star:
    """The ``*`` argument of ``count(*)``."""

    def to_sql(self) -> str:
        """Render as SQL."""
        return "*"


@dataclass(frozen=True)
class AggregateCall:
    """An aggregate function applied to a scalar expression (or ``*``)."""

    func: str
    arg: Union[Expr, Star]

    def to_sql(self) -> str:
        """Render as SQL, e.g. ``avg(temp)``."""
        return f"{self.func}({self.arg.to_sql()})"

    def default_alias(self) -> str:
        """The output column name used when the query gives no alias."""
        if isinstance(self.arg, Star):
            return self.func
        inner = self.arg.to_sql().strip("()").replace(" ", "")
        safe = "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in inner)
        return f"{self.func}_{safe}"


@dataclass(frozen=True)
class SelectItem:
    """One item of the SELECT list: an expression or aggregate, plus alias."""

    value: Union[Expr, AggregateCall]
    alias: str | None = None

    @property
    def is_aggregate(self) -> bool:
        """Whether this item is an aggregate call."""
        return isinstance(self.value, AggregateCall)

    def output_name(self) -> str:
        """The column name this item produces in the result."""
        if self.alias:
            return self.alias
        if isinstance(self.value, AggregateCall):
            return self.value.default_alias()
        sql = self.value.to_sql()
        if sql.isidentifier():
            return sql
        safe = "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in sql)
        return safe.strip("_") or "expr"

    def to_sql(self) -> str:
        """Render as SQL, including the alias when present."""
        base = self.value.to_sql()
        if self.alias:
            return f"{base} AS {self.alias}"
        return base


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: an output column name or expression, plus direction."""

    expr: Expr
    descending: bool = False

    def to_sql(self) -> str:
        """Render as SQL."""
        direction = " DESC" if self.descending else ""
        return f"{self.expr.to_sql()}{direction}"


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT ... FROM ... [WHERE] [GROUP BY] [HAVING] [ORDER BY] [LIMIT]."""

    items: tuple[SelectItem, ...]
    table: str
    where: Expr | None = None
    group_by: tuple[Expr, ...] = field(default_factory=tuple)
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = field(default_factory=tuple)
    limit: int | None = None

    def to_sql(self) -> str:
        """Render the full statement back to SQL text."""
        parts = ["SELECT " + ", ".join(item.to_sql() for item in self.items)]
        parts.append(f"FROM {self.table}")
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(expr.to_sql() for expr in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(item.to_sql() for item in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)

    def with_extra_filter(self, condition: Expr) -> "SelectStatement":
        """A new statement whose WHERE clause additionally requires ``condition``.

        This is the *clean-as-you-query* rewrite: clicking a predicate in
        the dashboard conjoins ``NOT (predicate)`` onto the query.
        """
        if self.where is None:
            new_where = condition
        else:
            new_where = conjoin([self.where, condition])
        return replace(self, where=new_where)

    def without_filter(self, condition: Expr) -> "SelectStatement":
        """Undo :meth:`with_extra_filter` for exactly ``condition``.

        Removes one matching conjunct from the WHERE clause; raises
        ``ValueError`` if the conjunct is not present.
        """
        if self.where == condition:
            return replace(self, where=None)
        if isinstance(self.where, And):
            operands = list(self.where.operands)
            if condition in operands:
                operands.remove(condition)
                return replace(self, where=conjoin(operands))
        raise ValueError("condition is not a conjunct of the WHERE clause")

    @property
    def aggregates(self) -> tuple[AggregateCall, ...]:
        """All aggregate calls in the SELECT list, in order."""
        return tuple(item.value for item in self.items if isinstance(item.value, AggregateCall))

    @property
    def cleaning_filters(self) -> tuple[Expr, ...]:
        """The NOT(...) conjuncts currently in WHERE (applied cleanings)."""
        if self.where is None:
            return ()
        conjuncts = self.where.operands if isinstance(self.where, And) else (self.where,)
        return tuple(c for c in conjuncts if isinstance(c, Not))
