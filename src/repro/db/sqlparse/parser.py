"""Recursive-descent parser for the SELECT dialect.

Grammar (informal)::

    select    := SELECT item (, item)* FROM ident
                 [WHERE bool] [GROUP BY expr (, expr)*] [HAVING bool]
                 [ORDER BY order (, order)*] [LIMIT int]
    item      := (agg_call | expr) [[AS] ident]
    agg_call  := AGGNAME ( expr | * )
    bool      := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | predicate
    predicate := additive [comparison | IN | BETWEEN | LIKE | IS NULL]
    additive  := multiplicative ((+|-) multiplicative)*
    multiplicative := unary ((*|/|%) unary)*
    unary     := - unary | primary
    primary   := number | string | TRUE | FALSE | NULL
               | func ( args ) | ident | ( bool )
"""

from __future__ import annotations

from typing import Any

from ...errors import SQLSyntaxError
from ..aggregates import is_aggregate_name
from ..expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
)
from .ast_nodes import AggregateCall, OrderItem, SelectItem, SelectStatement, Star
from .tokens import Token, TokenType, tokenize

_RESERVED = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL", "AS",
    "ASC", "DESC", "TRUE", "FALSE",
}


def parse_select(sql: str) -> SelectStatement:
    """Parse SQL text into a :class:`SelectStatement`.

    Raises :class:`~repro.errors.SQLSyntaxError` with the offending
    position on malformed input.
    """
    return _Parser(sql).parse()


class _Parser:
    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = tokenize(sql)
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.ttype is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self._peek()
        return SQLSyntaxError(message, position=token.position, text=self._sql)

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if not token.is_keyword(keyword):
            raise self._error(f"expected {keyword}, found {token.text!r}")
        return self._advance()

    def _accept_keyword(self, *keywords: str) -> bool:
        if self._peek().is_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect(self, ttype: TokenType) -> Token:
        token = self._peek()
        if token.ttype is not ttype:
            raise self._error(f"expected {ttype.value}, found {token.text!r}")
        return self._advance()

    # -- grammar --------------------------------------------------------

    def parse(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        items = [self._select_item()]
        while self._peek().ttype is TokenType.COMMA:
            self._advance()
            items.append(self._select_item())
        self._expect_keyword("FROM")
        table_token = self._expect(TokenType.IDENT)
        if table_token.text.upper() in _RESERVED:
            raise self._error(f"expected table name, found keyword {table_token.text!r}")
        where = None
        if self._accept_keyword("WHERE"):
            where = self._bool_expr()
        group_by: list[Expr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._additive())
            while self._peek().ttype is TokenType.COMMA:
                self._advance()
                group_by.append(self._additive())
        having = None
        if self._accept_keyword("HAVING"):
            having = self._bool_expr()
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._peek().ttype is TokenType.COMMA:
                self._advance()
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._expect(TokenType.NUMBER)
            if not isinstance(token.value, int) or token.value < 0:
                raise self._error("LIMIT requires a non-negative integer")
            limit = token.value
        if self._peek().ttype is not TokenType.EOF:
            raise self._error(f"unexpected trailing input {self._peek().text!r}")
        return SelectStatement(
            items=tuple(items),
            table=table_token.text,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
        )

    def _select_item(self) -> SelectItem:
        value: Expr | AggregateCall
        token = self._peek()
        if (
            token.ttype is TokenType.IDENT
            and is_aggregate_name(token.text)
            and self._peek(1).ttype is TokenType.LPAREN
        ):
            value = self._aggregate_call()
        else:
            value = self._additive()
        alias = None
        if self._accept_keyword("AS"):
            alias_token = self._expect(TokenType.IDENT)
            alias = alias_token.text
        elif (
            self._peek().ttype is TokenType.IDENT
            and self._peek().text.upper() not in _RESERVED
        ):
            alias = self._advance().text
        return SelectItem(value=value, alias=alias)

    def _aggregate_call(self) -> AggregateCall:
        func_token = self._advance()
        self._expect(TokenType.LPAREN)
        arg: Expr | Star
        if self._peek().ttype is TokenType.STAR:
            self._advance()
            arg = Star()
        else:
            arg = self._additive()
        self._expect(TokenType.RPAREN)
        return AggregateCall(func=func_token.text.lower(), arg=arg)

    def _order_item(self) -> OrderItem:
        expr = self._additive()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr=expr, descending=descending)

    def _bool_expr(self) -> Expr:
        operands = [self._and_expr()]
        while self._accept_keyword("OR"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return Or(operands)

    def _and_expr(self) -> Expr:
        operands = [self._not_expr()]
        while self._accept_keyword("AND"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return And(operands)

    def _not_expr(self) -> Expr:
        if self._accept_keyword("NOT"):
            return Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expr:
        left = self._additive()
        token = self._peek()
        if token.ttype is TokenType.OPERATOR and token.text in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            self._advance()
            right = self._additive()
            return Comparison(token.text, left, right)
        negated = False
        if token.is_keyword("NOT") and self._peek(1).is_keyword("IN", "BETWEEN", "LIKE"):
            self._advance()
            negated = True
            token = self._peek()
        if token.is_keyword("IN"):
            self._advance()
            self._expect(TokenType.LPAREN)
            values = [self._literal_value()]
            while self._peek().ttype is TokenType.COMMA:
                self._advance()
                values.append(self._literal_value())
            self._expect(TokenType.RPAREN)
            return InList(left, values, negated=negated)
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return Between(left, low, high, negated=negated)
        if token.is_keyword("LIKE"):
            self._advance()
            pattern_token = self._expect(TokenType.STRING)
            return Like(left, pattern_token.value, negated=negated)
        if token.is_keyword("IS"):
            self._advance()
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNull(left, negated=is_negated)
        return left

    def _literal_value(self) -> Any:
        token = self._peek()
        if token.ttype is TokenType.NUMBER:
            self._advance()
            return token.value
        if token.ttype is TokenType.STRING:
            self._advance()
            return token.value
        if token.is_keyword("TRUE"):
            self._advance()
            return True
        if token.is_keyword("FALSE"):
            self._advance()
            return False
        if token.ttype is TokenType.OPERATOR and token.text == "-":
            self._advance()
            number = self._expect(TokenType.NUMBER)
            return -number.value
        raise self._error("expected a literal value")

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.ttype is TokenType.OPERATOR and token.text in ("+", "-"):
                self._advance()
                right = self._multiplicative()
                left = Arithmetic(token.text, left, right)
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.ttype is TokenType.STAR:
                self._advance()
                left = Arithmetic("*", left, self._unary())
            elif token.ttype is TokenType.OPERATOR and token.text in ("/", "%"):
                self._advance()
                left = Arithmetic(token.text, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        token = self._peek()
        if token.ttype is TokenType.OPERATOR and token.text == "-":
            self._advance()
            return Negate(self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._peek()
        if token.ttype is TokenType.NUMBER:
            self._advance()
            return Literal(token.value)
        if token.ttype is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.ttype is TokenType.LPAREN:
            self._advance()
            inner = self._bool_expr()
            self._expect(TokenType.RPAREN)
            return inner
        if token.ttype is TokenType.IDENT:
            if token.text.upper() in _RESERVED:
                raise self._error(f"unexpected keyword {token.text!r}")
            if self._peek(1).ttype is TokenType.LPAREN:
                name_token = self._advance()
                self._advance()  # (
                args = []
                if self._peek().ttype is not TokenType.RPAREN:
                    args.append(self._additive())
                    while self._peek().ttype is TokenType.COMMA:
                        self._advance()
                        args.append(self._additive())
                self._expect(TokenType.RPAREN)
                return FuncCall(name_token.text, args)
            self._advance()
            return ColumnRef(token.text)
        raise self._error(f"unexpected token {token.text!r}")
