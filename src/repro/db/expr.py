"""Scalar expression AST with vectorized evaluation over a :class:`Table`.

Expressions are built either programmatically or by the SQL parser. Every
node knows how to:

* evaluate itself against a table into a numpy array (``eval``),
* render itself back to SQL text (``to_sql``),
* report which columns it references (``columns``),
* infer its result type against a schema (``result_type``).

Semantics follow PostgreSQL where it matters for the paper's queries:
``/`` on two integers is integer division (used for 30-minute window ids
like ``time / 30``), and comparisons against NULL are simply false (full
three-valued logic is intentionally out of scope; see DESIGN.md).
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Sequence

import numpy as np

from ..errors import ExecutionError, TypeMismatchError
from .schema import Schema
from .table import Table
from .types import ColumnType


class Expr:
    """Base class for scalar expressions."""

    def eval(self, table: Table) -> np.ndarray:
        """Evaluate vectorized over ``table``; returns an array of len(table)."""
        raise NotImplementedError

    def to_sql(self) -> str:
        """Render this expression as SQL text."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns referenced by this expression."""
        raise NotImplementedError

    def result_type(self, schema: Schema) -> ColumnType:
        """The type this expression produces against ``schema``."""
        raise NotImplementedError

    # Operator sugar for programmatic construction -----------------------

    def __add__(self, other: "Expr | Any") -> "Arithmetic":
        return Arithmetic("+", self, _wrap(other))

    def __sub__(self, other: "Expr | Any") -> "Arithmetic":
        return Arithmetic("-", self, _wrap(other))

    def __mul__(self, other: "Expr | Any") -> "Arithmetic":
        return Arithmetic("*", self, _wrap(other))

    def __truediv__(self, other: "Expr | Any") -> "Arithmetic":
        return Arithmetic("/", self, _wrap(other))

    def __mod__(self, other: "Expr | Any") -> "Arithmetic":
        return Arithmetic("%", self, _wrap(other))

    def eq(self, other: "Expr | Any") -> "Comparison":
        """``self = other`` (SQL equality)."""
        return Comparison("=", self, _wrap(other))

    def ne(self, other: "Expr | Any") -> "Comparison":
        """``self != other``."""
        return Comparison("!=", self, _wrap(other))

    def lt(self, other: "Expr | Any") -> "Comparison":
        """``self < other``."""
        return Comparison("<", self, _wrap(other))

    def le(self, other: "Expr | Any") -> "Comparison":
        """``self <= other``."""
        return Comparison("<=", self, _wrap(other))

    def gt(self, other: "Expr | Any") -> "Comparison":
        """``self > other``."""
        return Comparison(">", self, _wrap(other))

    def ge(self, other: "Expr | Any") -> "Comparison":
        """``self >= other``."""
        return Comparison(">=", self, _wrap(other))

    def isin(self, values: Iterable[Any]) -> "InList":
        """``self IN (values...)``."""
        return InList(self, tuple(values))

    def between(self, low: Any, high: Any) -> "Between":
        """``self BETWEEN low AND high`` (inclusive both ends)."""
        return Between(self, _wrap(low), _wrap(high))


def _wrap(value: "Expr | Any") -> "Expr":
    if isinstance(value, Expr):
        return value
    return Literal(value)


def sql_literal(value: Any) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return repr(value)
    return str(value)


class ColumnRef(Expr):
    """A reference to a named table column."""

    def __init__(self, name: str):
        self.name = name

    def eval(self, table: Table) -> np.ndarray:
        return table.column(self.name)

    def to_sql(self) -> str:
        return self.name

    def columns(self) -> set[str]:
        return {self.name}

    def result_type(self, schema: Schema) -> ColumnType:
        return schema.type_of(self.name)

    def __repr__(self) -> str:
        return f"ColumnRef({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ColumnRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("col", self.name))


class Literal(Expr):
    """A constant value."""

    def __init__(self, value: Any):
        self.value = value

    def eval(self, table: Table) -> np.ndarray:
        n = len(table)
        if self.value is None:
            return np.full(n, np.nan)
        if isinstance(self.value, bool):
            return np.full(n, self.value, dtype=np.bool_)
        if isinstance(self.value, int):
            return np.full(n, self.value, dtype=np.int64)
        if isinstance(self.value, float):
            return np.full(n, self.value, dtype=np.float64)
        out = np.empty(n, dtype=object)
        out[:] = self.value
        return out

    def to_sql(self) -> str:
        return sql_literal(self.value)

    def columns(self) -> set[str]:
        return set()

    def result_type(self, schema: Schema) -> ColumnType:
        if isinstance(self.value, bool):
            return ColumnType.BOOL
        if isinstance(self.value, int):
            return ColumnType.INT
        if isinstance(self.value, float) or self.value is None:
            return ColumnType.FLOAT
        return ColumnType.STR

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("lit", self.value))


class Arithmetic(Expr):
    """Binary arithmetic: ``+ - * / %``.

    ``/`` follows PostgreSQL: integer division when both operands are
    integers, float division otherwise. Division by zero yields NaN under
    float semantics and raises :class:`ExecutionError` for integer division.
    """

    OPS = ("+", "-", "*", "/", "%")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in self.OPS:
            raise TypeMismatchError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, table: Table) -> np.ndarray:
        left = self.left.eval(table)
        right = self.right.eval(table)
        if left.dtype == object or right.dtype == object:
            raise TypeMismatchError(f"arithmetic {self.op!r} on non-numeric operands")
        both_int = left.dtype.kind in "iu" and right.dtype.kind in "iu"
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        if self.op == "%":
            if np.any(right == 0):
                raise ExecutionError("modulo by zero")
            return left % right
        if both_int:
            if np.any(right == 0):
                raise ExecutionError("integer division by zero")
            # PostgreSQL integer division truncates toward zero.
            quotient = left // right
            remainder = left - quotient * right
            fix = (remainder != 0) & ((left < 0) != (right < 0))
            return quotient + fix
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.asarray(left, dtype=np.float64) / np.asarray(right, dtype=np.float64)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def result_type(self, schema: Schema) -> ColumnType:
        left = self.left.result_type(schema)
        right = self.right.result_type(schema)
        if not left.is_numeric or not right.is_numeric:
            raise TypeMismatchError(
                f"arithmetic {self.op!r} requires numeric operands, got {left} and {right}"
            )
        if left is ColumnType.INT and right is ColumnType.INT:
            return ColumnType.INT
        return ColumnType.FLOAT

    def __repr__(self) -> str:
        return f"Arithmetic({self.op!r}, {self.left!r}, {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Arithmetic)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("arith", self.op, self.left, self.right))


class Negate(Expr):
    """Unary minus."""

    def __init__(self, operand: Expr):
        self.operand = operand

    def eval(self, table: Table) -> np.ndarray:
        value = self.operand.eval(table)
        if value.dtype == object:
            raise TypeMismatchError("unary minus on non-numeric operand")
        return -value

    def to_sql(self) -> str:
        return f"(-{self.operand.to_sql()})"

    def columns(self) -> set[str]:
        return self.operand.columns()

    def result_type(self, schema: Schema) -> ColumnType:
        inner = self.operand.result_type(schema)
        if not inner.is_numeric:
            raise TypeMismatchError(f"unary minus requires a numeric operand, got {inner}")
        return inner

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Negate) and other.operand == self.operand

    def __hash__(self) -> int:
        return hash(("neg", self.operand))


class Comparison(Expr):
    """Binary comparison producing a boolean mask.

    Comparisons where either side is NULL (NaN / None) evaluate to False,
    matching the practical filtering behaviour of SQL WHERE clauses.
    """

    OPS = ("=", "!=", "<", "<=", ">", ">=")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op == "<>":
            op = "!="
        if op not in self.OPS:
            raise TypeMismatchError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, table: Table) -> np.ndarray:
        left = self.left.eval(table)
        right = self.right.eval(table)
        if (left.dtype == object) != (right.dtype == object):
            raise TypeMismatchError("cannot compare string and numeric operands")
        if left.dtype == object:
            return self._compare_objects(left, right)
        with np.errstate(invalid="ignore"):
            result = _NUMERIC_COMPARE[self.op](left, right)
        # NaN on either side -> False (even for !=, to keep filters conservative).
        nan_mask = np.zeros(len(result), dtype=bool)
        if left.dtype.kind == "f":
            nan_mask |= np.isnan(left)
        if right.dtype.kind == "f":
            nan_mask |= np.isnan(right)
        result = np.asarray(result, dtype=bool)
        result[nan_mask] = False
        return result

    def _compare_objects(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        out = np.zeros(len(left), dtype=bool)
        op = self.op
        for i in range(len(left)):
            lv = left[i]
            rv = right[i]
            if lv is None or rv is None:
                continue
            if op == "=":
                out[i] = lv == rv
            elif op == "!=":
                out[i] = lv != rv
            elif op == "<":
                out[i] = lv < rv
            elif op == "<=":
                out[i] = lv <= rv
            elif op == ">":
                out[i] = lv > rv
            else:
                out[i] = lv >= rv
        return out

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def result_type(self, schema: Schema) -> ColumnType:
        left = self.left.result_type(schema)
        right = self.right.result_type(schema)
        if left.is_numeric != right.is_numeric:
            raise TypeMismatchError(f"cannot compare {left} with {right}")
        return ColumnType.BOOL

    def __repr__(self) -> str:
        return f"Comparison({self.op!r}, {self.left!r}, {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("cmp", self.op, self.left, self.right))


_NUMERIC_COMPARE = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class And(Expr):
    """N-ary logical conjunction."""

    def __init__(self, operands: Sequence[Expr]):
        self.operands = tuple(operands)

    def eval(self, table: Table) -> np.ndarray:
        result = np.ones(len(table), dtype=bool)
        for operand in self.operands:
            result &= _as_bool(operand.eval(table))
        return result

    def to_sql(self) -> str:
        inner = " AND ".join(operand.to_sql() for operand in self.operands)
        return f"({inner})"

    def columns(self) -> set[str]:
        out: set[str] = set()
        for operand in self.operands:
            out |= operand.columns()
        return out

    def result_type(self, schema: Schema) -> ColumnType:
        for operand in self.operands:
            _require_bool(operand, schema, "AND")
        return ColumnType.BOOL

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and other.operands == self.operands

    def __hash__(self) -> int:
        return hash(("and", self.operands))


class Or(Expr):
    """N-ary logical disjunction."""

    def __init__(self, operands: Sequence[Expr]):
        self.operands = tuple(operands)

    def eval(self, table: Table) -> np.ndarray:
        result = np.zeros(len(table), dtype=bool)
        for operand in self.operands:
            result |= _as_bool(operand.eval(table))
        return result

    def to_sql(self) -> str:
        inner = " OR ".join(operand.to_sql() for operand in self.operands)
        return f"({inner})"

    def columns(self) -> set[str]:
        out: set[str] = set()
        for operand in self.operands:
            out |= operand.columns()
        return out

    def result_type(self, schema: Schema) -> ColumnType:
        for operand in self.operands:
            _require_bool(operand, schema, "OR")
        return ColumnType.BOOL

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and other.operands == self.operands

    def __hash__(self) -> int:
        return hash(("or", self.operands))


class Not(Expr):
    """Logical negation."""

    def __init__(self, operand: Expr):
        self.operand = operand

    def eval(self, table: Table) -> np.ndarray:
        return ~_as_bool(self.operand.eval(table))

    def to_sql(self) -> str:
        return f"(NOT {self.operand.to_sql()})"

    def columns(self) -> set[str]:
        return self.operand.columns()

    def result_type(self, schema: Schema) -> ColumnType:
        _require_bool(self.operand, schema, "NOT")
        return ColumnType.BOOL

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.operand == self.operand

    def __hash__(self) -> int:
        return hash(("not", self.operand))


class InList(Expr):
    """``expr IN (v1, v2, ...)`` with optional negation."""

    def __init__(self, operand: Expr, values: Sequence[Any], negated: bool = False):
        self.operand = operand
        self.values = tuple(values)
        self.negated = negated

    def eval(self, table: Table) -> np.ndarray:
        value = self.operand.eval(table)
        if value.dtype == object:
            allowed = set(self.values)
            result = np.fromiter(
                (v is not None and v in allowed for v in value),
                dtype=bool,
                count=len(value),
            )
        else:
            result = np.zeros(len(value), dtype=bool)
            for candidate in self.values:
                with np.errstate(invalid="ignore"):
                    result |= np.asarray(value == candidate, dtype=bool)
        return ~result if self.negated else result

    def to_sql(self) -> str:
        inner = ", ".join(sql_literal(value) for value in self.values)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {keyword} ({inner}))"

    def columns(self) -> set[str]:
        return self.operand.columns()

    def result_type(self, schema: Schema) -> ColumnType:
        self.operand.result_type(schema)
        return ColumnType.BOOL

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, InList)
            and other.operand == self.operand
            and other.values == self.values
            and other.negated == self.negated
        )

    def __hash__(self) -> int:
        return hash(("in", self.operand, self.values, self.negated))


class Between(Expr):
    """``expr BETWEEN low AND high`` (inclusive), with optional negation."""

    def __init__(self, operand: Expr, low: Expr, high: Expr, negated: bool = False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def eval(self, table: Table) -> np.ndarray:
        value = self.operand.eval(table)
        low = self.low.eval(table)
        high = self.high.eval(table)
        if value.dtype == object:
            raise TypeMismatchError("BETWEEN requires numeric operands")
        with np.errstate(invalid="ignore"):
            result = np.asarray((value >= low) & (value <= high), dtype=bool)
        if value.dtype.kind == "f":
            result[np.isnan(value)] = False
        return ~result if self.negated else result

    def to_sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql()} {keyword} "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )

    def columns(self) -> set[str]:
        return self.operand.columns() | self.low.columns() | self.high.columns()

    def result_type(self, schema: Schema) -> ColumnType:
        for part in (self.operand, self.low, self.high):
            if not part.result_type(schema).is_numeric:
                raise TypeMismatchError("BETWEEN requires numeric operands")
        return ColumnType.BOOL

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Between)
            and other.operand == self.operand
            and other.low == self.low
            and other.high == self.high
            and other.negated == self.negated
        )

    def __hash__(self) -> int:
        return hash(("between", self.operand, self.low, self.high, self.negated))


class Like(Expr):
    """SQL LIKE pattern match (``%`` any run, ``_`` any single char)."""

    def __init__(self, operand: Expr, pattern: str, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self._regex = re.compile(_like_to_regex(pattern), re.DOTALL)

    def eval(self, table: Table) -> np.ndarray:
        value = self.operand.eval(table)
        if value.dtype != object:
            raise TypeMismatchError("LIKE requires a string operand")
        result = np.fromiter(
            (v is not None and self._regex.fullmatch(v) is not None for v in value),
            dtype=bool,
            count=len(value),
        )
        return ~result if self.negated else result

    def to_sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.to_sql()} {keyword} {sql_literal(self.pattern)})"

    def columns(self) -> set[str]:
        return self.operand.columns()

    def result_type(self, schema: Schema) -> ColumnType:
        if self.operand.result_type(schema).is_numeric:
            raise TypeMismatchError("LIKE requires a string operand")
        return ColumnType.BOOL

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Like)
            and other.operand == self.operand
            and other.pattern == self.pattern
            and other.negated == self.negated
        )

    def __hash__(self) -> int:
        return hash(("like", self.operand, self.pattern, self.negated))


def _like_to_regex(pattern: str) -> str:
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return "".join(parts)


class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    def __init__(self, operand: Expr, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def eval(self, table: Table) -> np.ndarray:
        value = self.operand.eval(table)
        if value.dtype == object:
            result = np.fromiter((v is None for v in value), dtype=bool, count=len(value))
        elif value.dtype.kind == "f":
            result = np.isnan(value)
        else:
            result = np.zeros(len(value), dtype=bool)
        return ~result if self.negated else result

    def to_sql(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {keyword})"

    def columns(self) -> set[str]:
        return self.operand.columns()

    def result_type(self, schema: Schema) -> ColumnType:
        self.operand.result_type(schema)
        return ColumnType.BOOL

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IsNull)
            and other.operand == self.operand
            and other.negated == self.negated
        )

    def __hash__(self) -> int:
        return hash(("isnull", self.operand, self.negated))


class FuncCall(Expr):
    """A scalar function call: abs, round, floor, ceil, sign, lower, upper, length."""

    NUMERIC_FUNCS = ("abs", "round", "floor", "ceil", "sign")
    STRING_FUNCS = ("lower", "upper", "length")

    def __init__(self, name: str, args: Sequence[Expr]):
        self.func_name = name.lower()
        self.args = tuple(args)
        if self.func_name not in self.NUMERIC_FUNCS + self.STRING_FUNCS:
            raise TypeMismatchError(f"unknown scalar function {name!r}")

    def eval(self, table: Table) -> np.ndarray:
        values = [arg.eval(table) for arg in self.args]
        name = self.func_name
        if name in self.NUMERIC_FUNCS:
            value = values[0]
            if value.dtype == object:
                raise TypeMismatchError(f"{name}() requires a numeric argument")
            if name == "abs":
                return np.abs(value)
            if name == "round":
                digits = 0
                if len(values) > 1:
                    digits = int(values[1][0]) if len(values[1]) else 0
                return np.round(value, digits)
            if name == "floor":
                return np.floor(np.asarray(value, dtype=np.float64))
            if name == "ceil":
                return np.ceil(np.asarray(value, dtype=np.float64))
            return np.sign(np.asarray(value, dtype=np.float64))
        value = values[0]
        if value.dtype != object:
            raise TypeMismatchError(f"{name}() requires a string argument")
        if name == "lower":
            out = np.empty(len(value), dtype=object)
            for i, v in enumerate(value):
                out[i] = None if v is None else v.lower()
            return out
        if name == "upper":
            out = np.empty(len(value), dtype=object)
            for i, v in enumerate(value):
                out[i] = None if v is None else v.upper()
            return out
        lengths = np.empty(len(value), dtype=np.int64)
        for i, v in enumerate(value):
            lengths[i] = 0 if v is None else len(v)
        return lengths

    def to_sql(self) -> str:
        inner = ", ".join(arg.to_sql() for arg in self.args)
        return f"{self.func_name}({inner})"

    def columns(self) -> set[str]:
        out: set[str] = set()
        for arg in self.args:
            out |= arg.columns()
        return out

    def result_type(self, schema: Schema) -> ColumnType:
        if self.func_name == "length":
            return ColumnType.INT
        if self.func_name in self.STRING_FUNCS:
            return ColumnType.STR
        if self.func_name in ("floor", "ceil", "sign"):
            return ColumnType.FLOAT
        return self.args[0].result_type(schema)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FuncCall)
            and other.func_name == self.func_name
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("func", self.func_name, self.args))


def _as_bool(value: np.ndarray) -> np.ndarray:
    if value.dtype == np.bool_:
        return value
    raise TypeMismatchError("logical operator applied to a non-boolean expression")


def _require_bool(operand: Expr, schema: Schema, context: str) -> None:
    if operand.result_type(schema) is not ColumnType.BOOL:
        raise TypeMismatchError(f"{context} requires boolean operands")


def conjoin(operands: Sequence[Expr]) -> Expr:
    """AND together a sequence of boolean expressions (flattening nested ANDs)."""
    flat: list[Expr] = []
    for operand in operands:
        if isinstance(operand, And):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return Literal(True)
    if len(flat) == 1:
        return flat[0]
    return And(flat)
