"""Removable aggregate functions.

DBWipes needs to answer two questions much faster than naive recomputation:

1. *Leave-one-out influence* (Preprocessor): for every input tuple of a
   selected group, what would the aggregate value be if exactly that tuple
   were removed? :meth:`Aggregate.leave_one_out` answers this for a whole
   group in one vectorized pass — O(n) total for the algebraic aggregates
   instead of the naive O(n²).

2. *Predicate application* (Ranker / clean-as-you-query preview): what is
   the aggregate value of a group after removing an arbitrary subset?
   :meth:`Aggregate.compute_without` answers this from sufficient
   statistics for algebraic aggregates (sum/count/avg/var/stddev) and by
   reduced recomputation for min/max.

Both questions also arise *per group*: the executor aggregates every
group of a GROUP BY, the Preprocessor runs leave-one-out over every
selected group, and the Ranker previews subset removal over all groups
at once. The ``*_grouped`` methods answer them for a whole
:class:`~repro.db.segments.SegmentedValues` in single vectorized passes
(``np.add.reduceat`` closed forms for count/sum/avg/var/stddev, two
masked segmented reductions for min/max) with no Python per-group loop.
The ``*_grouped_loop`` variants keep the per-group Python iteration as
the naive reference for parity tests and the scaling ablation.

NULL handling follows SQL: NaN values (the FLOAT NULL encoding) are
ignored by every aggregate; an aggregate over zero non-null values is NaN
(except ``count``, which is 0).
"""

from __future__ import annotations

import numpy as np

from ..errors import AggregateError
from .segments import (
    SegmentedValues,
    SegmentPairs,
    segment_count,
    segment_count_batch,
    segment_max,
    segment_max_batch,
    segment_min,
    segment_min_batch,
    segment_stats,
    segment_stats_batch,
    segment_sum,
    segment_sum_batch,
)

#: Aggregate names accepted by the SQL parser, matching the paper's list.
AGGREGATE_NAMES = ("avg", "sum", "count", "min", "max", "stddev", "var")


class Aggregate:
    """Base class for aggregate functions over a 1-D float array."""

    #: SQL name of the aggregate.
    name: str = ""

    def compute(self, values: np.ndarray) -> float:
        """The aggregate over all non-null values."""
        raise NotImplementedError

    def leave_one_out(self, values: np.ndarray) -> np.ndarray:
        """``out[i]`` = aggregate over ``values`` with element ``i`` removed.

        The default implementation is the naive O(n²) loop; algebraic
        subclasses override with O(n) closed forms. Kept callable for the
        ablation benchmark (A1 in DESIGN.md).
        """
        return self.leave_one_out_naive(values)

    def leave_one_out_naive(self, values: np.ndarray) -> np.ndarray:
        """Reference O(n²) leave-one-out used for testing and ablation."""
        values = _as_float(values)
        n = len(values)
        out = np.empty(n, dtype=np.float64)
        for i in range(n):
            out[i] = self.compute(np.delete(values, i))
        return out

    def compute_without(self, values: np.ndarray, remove_mask: np.ndarray) -> float:
        """The aggregate over ``values`` with masked elements removed.

        The default recomputes from scratch; algebraic subclasses subtract
        the removed subset's sufficient statistics instead.
        """
        values = _as_float(values)
        remove_mask = _as_mask(values, remove_mask)
        return self.compute(values[~remove_mask])

    # ------------------------------------------------------------------
    # grouped (segmented) kernels
    # ------------------------------------------------------------------

    def compute_grouped(self, seg: SegmentedValues) -> np.ndarray:
        """``out[g]`` = the aggregate over segment ``g``, in one pass.

        Algebraic subclasses override with vectorized kernels; the base
        version falls back to the per-group Python loop.
        """
        return self.compute_grouped_loop(seg)

    def compute_grouped_loop(self, seg: SegmentedValues) -> np.ndarray:
        """Reference per-group loop for :meth:`compute_grouped`."""
        return np.array(
            [self.compute(seg.segment(g)) for g in range(seg.n_segments)],
            dtype=np.float64,
        )

    def leave_one_out_grouped(self, seg: SegmentedValues) -> np.ndarray:
        """Flat leave-one-out values: ``out[i]`` = aggregate of the
        segment owning flat position ``i`` with that element removed.
        """
        return self.leave_one_out_grouped_loop(seg)

    def leave_one_out_grouped_loop(self, seg: SegmentedValues) -> np.ndarray:
        """Reference per-group loop for :meth:`leave_one_out_grouped`."""
        if seg.n_segments == 0:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(
            [self.leave_one_out(seg.segment(g)) for g in range(seg.n_segments)]
        )

    def compute_without_grouped(
        self, seg: SegmentedValues, remove_mask: np.ndarray
    ) -> np.ndarray:
        """``out[g]`` = aggregate over segment ``g`` with masked flat
        positions removed (the grouped Δε-preview kernel)."""
        return self.compute_without_grouped_loop(seg, remove_mask)

    def compute_without_grouped_loop(
        self, seg: SegmentedValues, remove_mask: np.ndarray
    ) -> np.ndarray:
        """Reference per-group loop for :meth:`compute_without_grouped`."""
        remove_mask = _as_flat_mask(seg, remove_mask)
        mask_parts = seg.split_flat(remove_mask)
        return np.array(
            [
                self.compute_without(seg.segment(g), mask_parts[g])
                for g in range(seg.n_segments)
            ],
            dtype=np.float64,
        )

    def compute_without_grouped_batch(
        self, seg: SegmentedValues, remove_masks: np.ndarray
    ) -> np.ndarray:
        """``out[r, g]`` = aggregate over segment ``g`` with row ``r``'s
        masked flat positions removed — R Δε previews in one grouped pass.

        ``remove_masks`` is a ``(R, len(seg))`` boolean matrix (one
        candidate predicate per row). Algebraic subclasses override with
        2-D kernels whose per-segment accumulation order matches the 1-D
        :meth:`compute_without_grouped` exactly, so row ``r`` of the
        result is bit-identical to the per-rule call — the batched
        Ranker/Merger scoring path depends on that.
        """
        return self.compute_without_grouped_batch_loop(seg, remove_masks)

    def compute_without_grouped_batch_loop(
        self, seg: SegmentedValues, remove_masks: np.ndarray
    ) -> np.ndarray:
        """Reference per-row loop for :meth:`compute_without_grouped_batch`."""
        remove_masks = _as_mask_matrix(seg, remove_masks)
        if remove_masks.shape[0] == 0:
            return np.empty((0, seg.n_segments), dtype=np.float64)
        return np.stack(
            [self.compute_without_grouped(seg, row) for row in remove_masks]
        )

    def compute_without_pairs(
        self, pairs: SegmentPairs, remove_mask: np.ndarray
    ) -> np.ndarray:
        """``out[p]`` = aggregate over pair ``p``'s segment copy with its
        masked positions removed — the sparse Δε kernel.

        ``remove_mask`` is flat over ``pairs`` (aligned with
        ``pairs.values``). Algebraic subclasses override to reuse
        segment-only statistics precomputed once on the *parent*
        ``SegmentedValues`` (gathered through ``pairs.flat``), so the
        per-pair work is only the mask-dependent folds; every override
        is bit-identical to :meth:`compute_without_grouped` over the
        same segment because segments are copied wholesale.
        """
        return self.compute_without_pairs_loop(pairs, remove_mask)

    def compute_without_pairs_loop(
        self, pairs: SegmentPairs, remove_mask: np.ndarray
    ) -> np.ndarray:
        """Reference for :meth:`compute_without_pairs`: rebuild the pairs
        as a standalone segmented array and run the 1-D grouped kernel."""
        mini = SegmentedValues(pairs.values, pairs.offsets)
        return self.compute_without_grouped(mini, remove_mask)

    def __repr__(self) -> str:
        return f"<aggregate {self.name}>"


def _as_float(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values)
    if values.dtype == object:
        raise AggregateError("aggregates require numeric input")
    return np.asarray(values, dtype=np.float64)


def _as_mask(values: np.ndarray, remove_mask: np.ndarray) -> np.ndarray:
    remove_mask = np.asarray(remove_mask, dtype=bool)
    if len(remove_mask) != len(values):
        raise AggregateError("remove mask length does not match values")
    return remove_mask


def _as_flat_mask(seg: SegmentedValues, remove_mask: np.ndarray) -> np.ndarray:
    remove_mask = np.asarray(remove_mask, dtype=bool)
    if len(remove_mask) != len(seg.values):
        raise AggregateError("remove mask length does not match values")
    return remove_mask


def _as_mask_matrix(seg: SegmentedValues, remove_masks: np.ndarray) -> np.ndarray:
    remove_masks = np.asarray(remove_masks, dtype=bool)
    if remove_masks.ndim != 2 or remove_masks.shape[1] != len(seg.values):
        raise AggregateError("remove mask matrix shape does not match values")
    return remove_masks


def _valid(values: np.ndarray) -> np.ndarray:
    return values[~np.isnan(values)]


class Count(Aggregate):
    """``count(x)`` — number of non-null values."""

    name = "count"

    def compute(self, values: np.ndarray) -> float:
        return float(len(_valid(_as_float(values))))

    def leave_one_out(self, values: np.ndarray) -> np.ndarray:
        values = _as_float(values)
        nulls = np.isnan(values)
        total = float(len(values) - nulls.sum())
        out = np.full(len(values), total - 1.0)
        out[nulls] = total
        return out

    def compute_without(self, values: np.ndarray, remove_mask: np.ndarray) -> float:
        values = _as_float(values)
        remove_mask = _as_mask(values, remove_mask)
        valid = ~np.isnan(values)
        return float((valid & ~remove_mask).sum())

    def compute_grouped(self, seg: SegmentedValues) -> np.ndarray:
        return segment_count(seg.valid, seg.offsets)

    def leave_one_out_grouped(self, seg: SegmentedValues) -> np.ndarray:
        n_valid = segment_count(seg.valid, seg.offsets)
        return n_valid[seg.segment_ids] - seg.valid

    def compute_without_grouped(
        self, seg: SegmentedValues, remove_mask: np.ndarray
    ) -> np.ndarray:
        remove_mask = _as_flat_mask(seg, remove_mask)
        return segment_count(seg.valid & ~remove_mask, seg.offsets)

    def compute_without_grouped_batch(
        self, seg: SegmentedValues, remove_masks: np.ndarray
    ) -> np.ndarray:
        remove_masks = _as_mask_matrix(seg, remove_masks)
        return segment_count_batch(seg.valid[None, :] & ~remove_masks, seg.offsets)

    def compute_without_pairs(
        self, pairs: SegmentPairs, remove_mask: np.ndarray
    ) -> np.ndarray:
        keep = pairs.valid & ~remove_mask
        return segment_count(keep, pairs.offsets)


class Sum(Aggregate):
    """``sum(x)`` — NaN over zero non-null values (SQL NULL)."""

    name = "sum"

    def compute(self, values: np.ndarray) -> float:
        valid = _valid(_as_float(values))
        if len(valid) == 0:
            return float("nan")
        return float(valid.sum())

    def leave_one_out(self, values: np.ndarray) -> np.ndarray:
        values = _as_float(values)
        nulls = np.isnan(values)
        n_valid = len(values) - nulls.sum()
        if n_valid == 0:
            return np.full(len(values), np.nan)
        total = np.nansum(values)
        out = total - np.where(nulls, 0.0, values)
        if n_valid == 1:
            out[~nulls] = np.nan
        return out

    def compute_without(self, values: np.ndarray, remove_mask: np.ndarray) -> float:
        values = _as_float(values)
        remove_mask = _as_mask(values, remove_mask)
        keep = values[~remove_mask]
        keep = keep[~np.isnan(keep)]
        if len(keep) == 0:
            return float("nan")
        total = np.nansum(values)
        removed = values[remove_mask]
        return float(total - np.nansum(removed))

    def compute_grouped(self, seg: SegmentedValues) -> np.ndarray:
        n_valid, total = segment_stats(seg)
        return np.where(n_valid > 0, total, np.nan)

    def leave_one_out_grouped(self, seg: SegmentedValues) -> np.ndarray:
        n_valid, total = segment_stats(seg)
        ids = seg.segment_ids
        out = total[ids] - np.where(seg.valid, seg.values, 0.0)
        out[seg.valid & (n_valid[ids] == 1.0)] = np.nan
        out[n_valid[ids] == 0.0] = np.nan
        return out

    def compute_without_grouped(
        self, seg: SegmentedValues, remove_mask: np.ndarray
    ) -> np.ndarray:
        remove_mask = _as_flat_mask(seg, remove_mask)
        n_kept, kept_total = segment_stats(seg, where=~remove_mask)
        return np.where(n_kept > 0, kept_total, np.nan)

    def compute_without_grouped_batch(
        self, seg: SegmentedValues, remove_masks: np.ndarray
    ) -> np.ndarray:
        remove_masks = _as_mask_matrix(seg, remove_masks)
        n_kept, kept_total = segment_stats_batch(seg, ~remove_masks)
        return np.where(n_kept > 0, kept_total, np.nan)

    def compute_without_pairs(
        self, pairs: SegmentPairs, remove_mask: np.ndarray
    ) -> np.ndarray:
        n_kept, kept_total = _pair_stats(pairs, remove_mask)
        return np.where(n_kept > 0, kept_total, np.nan)


class Avg(Aggregate):
    """``avg(x)``."""

    name = "avg"

    def compute(self, values: np.ndarray) -> float:
        valid = _valid(_as_float(values))
        if len(valid) == 0:
            return float("nan")
        return float(valid.mean())

    def leave_one_out(self, values: np.ndarray) -> np.ndarray:
        values = _as_float(values)
        nulls = np.isnan(values)
        n_valid = len(values) - int(nulls.sum())
        out = np.empty(len(values), dtype=np.float64)
        if n_valid == 0:
            out[:] = np.nan
            return out
        total = np.nansum(values)
        full = total / n_valid
        if n_valid == 1:
            out[:] = np.nan
            out[nulls] = full
            return out
        with np.errstate(invalid="ignore"):
            out = (total - np.where(nulls, 0.0, values)) / (n_valid - 1)
        out[nulls] = full
        return out

    def compute_without(self, values: np.ndarray, remove_mask: np.ndarray) -> float:
        values = _as_float(values)
        remove_mask = _as_mask(values, remove_mask)
        valid = ~np.isnan(values)
        kept = valid & ~remove_mask
        n = int(kept.sum())
        if n == 0:
            return float("nan")
        total = np.nansum(values) - np.nansum(values[remove_mask])
        return float(total / n)

    def compute_grouped(self, seg: SegmentedValues) -> np.ndarray:
        n_valid, total = segment_stats(seg)
        with np.errstate(invalid="ignore"):
            mean = total / np.maximum(n_valid, 1.0)
        return np.where(n_valid > 0, mean, np.nan)

    def leave_one_out_grouped(self, seg: SegmentedValues) -> np.ndarray:
        n_valid, total = segment_stats(seg)
        ids = seg.segment_ids
        with np.errstate(invalid="ignore", divide="ignore"):
            full = np.where(n_valid > 0, total / np.maximum(n_valid, 1.0), np.nan)
            out = (total[ids] - np.where(seg.valid, seg.values, 0.0)) / (
                n_valid[ids] - 1.0
            )
        out = np.where(seg.valid, out, full[ids])
        out[seg.valid & (n_valid[ids] == 1.0)] = np.nan
        return out

    def compute_without_grouped(
        self, seg: SegmentedValues, remove_mask: np.ndarray
    ) -> np.ndarray:
        remove_mask = _as_flat_mask(seg, remove_mask)
        n_kept, kept_total = segment_stats(seg, where=~remove_mask)
        with np.errstate(invalid="ignore"):
            mean = kept_total / np.maximum(n_kept, 1.0)
        return np.where(n_kept > 0, mean, np.nan)

    def compute_without_grouped_batch(
        self, seg: SegmentedValues, remove_masks: np.ndarray
    ) -> np.ndarray:
        remove_masks = _as_mask_matrix(seg, remove_masks)
        n_kept, kept_total = segment_stats_batch(seg, ~remove_masks)
        with np.errstate(invalid="ignore"):
            mean = kept_total / np.maximum(n_kept, 1.0)
        return np.where(n_kept > 0, mean, np.nan)

    def compute_without_pairs(
        self, pairs: SegmentPairs, remove_mask: np.ndarray
    ) -> np.ndarray:
        n_kept, kept_total = _pair_stats(pairs, remove_mask)
        with np.errstate(invalid="ignore"):
            mean = kept_total / np.maximum(n_kept, 1.0)
        return np.where(n_kept > 0, mean, np.nan)


class Var(Aggregate):
    """``var(x)`` — sample variance (n−1 denominator, PostgreSQL semantics)."""

    name = "var"

    def compute(self, values: np.ndarray) -> float:
        valid = _valid(_as_float(values))
        if len(valid) < 2:
            return float("nan")
        return float(valid.var(ddof=1))

    def leave_one_out(self, values: np.ndarray) -> np.ndarray:
        # Moments are centered on the full-data mean before subtraction:
        # deviations are bounded by the data spread, which avoids the
        # catastrophic cancellation the raw sum/sum-of-squares form
        # suffers when the mean is large relative to the variance.
        values = _as_float(values)
        nulls = np.isnan(values)
        n_valid = len(values) - int(nulls.sum())
        out = np.empty(len(values), dtype=np.float64)
        full = self.compute(values)
        if n_valid < 3:
            out[:] = np.nan
            out[nulls] = full
            return out
        mean = np.nansum(values) / n_valid
        centered = np.where(nulls, 0.0, values - mean)
        total_c = centered.sum()
        total_c2 = (centered * centered).sum()
        n_after = n_valid - 1
        sum_after = total_c - centered
        sumsq_after = total_c2 - centered * centered
        with np.errstate(invalid="ignore"):
            var_after = (sumsq_after - sum_after * sum_after / n_after) / (n_after - 1)
        var_after = np.maximum(var_after, 0.0)
        out = var_after
        out[nulls] = full
        return out

    def compute_without(self, values: np.ndarray, remove_mask: np.ndarray) -> float:
        values = _as_float(values)
        remove_mask = _as_mask(values, remove_mask)
        valid = ~np.isnan(values)
        kept = valid & ~remove_mask
        n = int(kept.sum())
        if n < 2:
            return float("nan")
        mean = np.nansum(values) / max(int(valid.sum()), 1)
        centered = np.where(valid, values - mean, 0.0)
        kept_c = np.where(kept, centered, 0.0)
        total_c = kept_c.sum()
        total_c2 = (kept_c * kept_c).sum()
        var = (total_c2 - total_c * total_c / n) / (n - 1)
        return float(max(var, 0.0))

    def compute_grouped(self, seg: SegmentedValues) -> np.ndarray:
        n_valid, tc, tc2, _ = _segment_central_moments(seg)
        with np.errstate(invalid="ignore", divide="ignore"):
            var = (tc2 - tc * tc / np.maximum(n_valid, 1.0)) / (n_valid - 1.0)
        var = np.maximum(var, 0.0)
        return np.where(n_valid >= 2, var, np.nan)

    def leave_one_out_grouped(self, seg: SegmentedValues) -> np.ndarray:
        # Same full-data-mean centering as the per-group closed form: the
        # deviations stay bounded by the data spread, avoiding the
        # cancellation of the raw sum/sum-of-squares formulation.
        n_valid, tc, tc2, centered = _segment_central_moments(seg)
        ids = seg.segment_ids
        with np.errstate(invalid="ignore", divide="ignore"):
            full = (tc2 - tc * tc / np.maximum(n_valid, 1.0)) / (n_valid - 1.0)
            full = np.where(n_valid >= 2, np.maximum(full, 0.0), np.nan)
            n_after = n_valid[ids] - 1.0
            sum_after = tc[ids] - centered
            sumsq_after = tc2[ids] - centered * centered
            var_after = (sumsq_after - sum_after * sum_after / n_after) / (
                n_after - 1.0
            )
        out = np.maximum(var_after, 0.0)
        out = np.where(seg.valid, out, full[ids])
        out[seg.valid & (n_valid[ids] < 3.0)] = np.nan
        return out

    def compute_without_grouped(
        self, seg: SegmentedValues, remove_mask: np.ndarray
    ) -> np.ndarray:
        # Centering stays on the *full* per-group mean, matching the
        # per-group compute_without sufficient-statistics form.
        remove_mask = _as_flat_mask(seg, remove_mask)
        n_valid, total = segment_stats(seg)
        keep = seg.valid & ~remove_mask
        n_kept = segment_count(keep, seg.offsets)
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = total / np.maximum(n_valid, 1.0)
            kept_c = np.where(keep, seg.values - mean[seg.segment_ids], 0.0)
            tc = segment_sum(kept_c, seg.offsets)
            tc2 = segment_sum(kept_c * kept_c, seg.offsets)
            var = (tc2 - tc * tc / np.maximum(n_kept, 1.0)) / (n_kept - 1.0)
        var = np.maximum(var, 0.0)
        return np.where(n_kept >= 2, var, np.nan)

    def compute_without_grouped_batch(
        self, seg: SegmentedValues, remove_masks: np.ndarray
    ) -> np.ndarray:
        # The mask-independent statistics (per-group valid counts, full
        # means, centered values) are computed once for the whole batch;
        # only the kept-subset moments are per-row work.
        remove_masks = _as_mask_matrix(seg, remove_masks)
        n_valid, total = segment_stats(seg)
        keep = seg.valid[None, :] & ~remove_masks
        n_kept = segment_count_batch(keep, seg.offsets)
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = total / np.maximum(n_valid, 1.0)
            centered = seg.values - mean[seg.segment_ids]
            kept_c = np.where(keep, centered[None, :], 0.0)
            tc = segment_sum_batch(kept_c, seg.offsets)
            tc2 = segment_sum_batch(kept_c * kept_c, seg.offsets)
            var = (tc2 - tc * tc / np.maximum(n_kept, 1.0)) / (n_kept - 1.0)
        var = np.maximum(var, 0.0)
        return np.where(n_kept >= 2, var, np.nan)

    @staticmethod
    def _centered_on_full_mean(seg: SegmentedValues) -> np.ndarray:
        """``values − full-group-mean`` per flat position, memoized on
        the segments: the only mask-independent part of the
        sufficient-statistics form, shared by every pair call."""
        centered = seg.memo.get("var_centered_full_mean")
        if centered is None:
            n_valid, total = segment_stats(seg)
            with np.errstate(invalid="ignore", divide="ignore"):
                mean = total / np.maximum(n_valid, 1.0)
                centered = seg.values - mean[seg.segment_ids]
            seg.memo["var_centered_full_mean"] = centered
        return centered

    def compute_without_pairs(
        self, pairs: SegmentPairs, remove_mask: np.ndarray
    ) -> np.ndarray:
        centered = self._centered_on_full_mean(pairs.seg)[pairs.flat]
        keep = pairs.valid & ~remove_mask
        n_kept = segment_count(keep, pairs.offsets)
        with np.errstate(invalid="ignore", divide="ignore"):
            kept_c = np.where(keep, centered, 0.0)
            tc = segment_sum(kept_c, pairs.offsets)
            tc2 = segment_sum(kept_c * kept_c, pairs.offsets)
            var = (tc2 - tc * tc / np.maximum(n_kept, 1.0)) / (n_kept - 1.0)
        var = np.maximum(var, 0.0)
        return np.where(n_kept >= 2, var, np.nan)


def _segment_central_moments(
    seg: SegmentedValues,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment ``(n_valid, Σc, Σc², c)`` with ``c`` centered on the
    segment's own valid mean (0 at NULL positions)."""
    n_valid, total = segment_stats(seg)
    with np.errstate(invalid="ignore"):
        mean = total / np.maximum(n_valid, 1.0)
    centered = np.where(seg.valid, seg.values - mean[seg.segment_ids], 0.0)
    tc = segment_sum(centered, seg.offsets)
    tc2 = segment_sum(centered * centered, seg.offsets)
    return n_valid, tc, tc2, centered


class Stddev(Aggregate):
    """``stddev(x)`` — sample standard deviation."""

    name = "stddev"

    def __init__(self) -> None:
        self._var = Var()

    def compute(self, values: np.ndarray) -> float:
        var = self._var.compute(values)
        return float(np.sqrt(var)) if not np.isnan(var) else float("nan")

    def leave_one_out(self, values: np.ndarray) -> np.ndarray:
        var = self._var.leave_one_out(values)
        with np.errstate(invalid="ignore"):
            return np.sqrt(var)

    def compute_without(self, values: np.ndarray, remove_mask: np.ndarray) -> float:
        var = self._var.compute_without(values, remove_mask)
        return float(np.sqrt(var)) if not np.isnan(var) else float("nan")

    def compute_grouped(self, seg: SegmentedValues) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return np.sqrt(self._var.compute_grouped(seg))

    def leave_one_out_grouped(self, seg: SegmentedValues) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return np.sqrt(self._var.leave_one_out_grouped(seg))

    def compute_without_grouped(
        self, seg: SegmentedValues, remove_mask: np.ndarray
    ) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return np.sqrt(self._var.compute_without_grouped(seg, remove_mask))

    def compute_without_grouped_batch(
        self, seg: SegmentedValues, remove_masks: np.ndarray
    ) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return np.sqrt(self._var.compute_without_grouped_batch(seg, remove_masks))

    def compute_without_pairs(
        self, pairs: SegmentPairs, remove_mask: np.ndarray
    ) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return np.sqrt(self._var.compute_without_pairs(pairs, remove_mask))


class Min(Aggregate):
    """``min(x)``."""

    name = "min"

    def compute(self, values: np.ndarray) -> float:
        valid = _valid(_as_float(values))
        if len(valid) == 0:
            return float("nan")
        return float(valid.min())

    def leave_one_out(self, values: np.ndarray) -> np.ndarray:
        return _extreme_leave_one_out(values, smallest=True)

    def compute_grouped(self, seg: SegmentedValues) -> np.ndarray:
        return _segment_extreme(seg, smallest=True)

    def leave_one_out_grouped(self, seg: SegmentedValues) -> np.ndarray:
        return _segment_extreme_leave_one_out(seg, smallest=True)

    def compute_without_grouped(
        self, seg: SegmentedValues, remove_mask: np.ndarray
    ) -> np.ndarray:
        return _segment_extreme_without(seg, remove_mask, smallest=True)

    def compute_without_grouped_batch(
        self, seg: SegmentedValues, remove_masks: np.ndarray
    ) -> np.ndarray:
        return _segment_extreme_without_batch(seg, remove_masks, smallest=True)

    def compute_without_pairs(
        self, pairs: SegmentPairs, remove_mask: np.ndarray
    ) -> np.ndarray:
        return _segment_extreme_without_pairs(pairs, remove_mask, smallest=True)


class Max(Aggregate):
    """``max(x)``."""

    name = "max"

    def compute(self, values: np.ndarray) -> float:
        valid = _valid(_as_float(values))
        if len(valid) == 0:
            return float("nan")
        return float(valid.max())

    def leave_one_out(self, values: np.ndarray) -> np.ndarray:
        return _extreme_leave_one_out(values, smallest=False)

    def compute_grouped(self, seg: SegmentedValues) -> np.ndarray:
        return _segment_extreme(seg, smallest=False)

    def leave_one_out_grouped(self, seg: SegmentedValues) -> np.ndarray:
        return _segment_extreme_leave_one_out(seg, smallest=False)

    def compute_without_grouped(
        self, seg: SegmentedValues, remove_mask: np.ndarray
    ) -> np.ndarray:
        return _segment_extreme_without(seg, remove_mask, smallest=False)

    def compute_without_grouped_batch(
        self, seg: SegmentedValues, remove_masks: np.ndarray
    ) -> np.ndarray:
        return _segment_extreme_without_batch(seg, remove_masks, smallest=False)

    def compute_without_pairs(
        self, pairs: SegmentPairs, remove_mask: np.ndarray
    ) -> np.ndarray:
        return _segment_extreme_without_pairs(pairs, remove_mask, smallest=False)


def _pair_stats(
    pairs: SegmentPairs, remove_mask: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(n_kept, kept_total)`` per pair — :func:`segment_stats` of the
    pair copies restricted to the un-removed positions."""
    keep = pairs.valid & ~remove_mask
    n_kept = segment_count(keep, pairs.offsets)
    kept_total = segment_sum(np.where(keep, pairs.values, 0.0), pairs.offsets)
    return n_kept, kept_total


def _segment_extreme(seg: SegmentedValues, smallest: bool) -> np.ndarray:
    """Per-segment min/max over valid values; all-NULL segments are NaN."""
    sentinel = np.inf if smallest else -np.inf
    reducer = segment_min if smallest else segment_max
    masked = np.where(seg.valid, seg.values, sentinel)
    ext = reducer(masked, seg.offsets, empty_fill=sentinel)
    n_valid = segment_count(seg.valid, seg.offsets)
    return np.where(n_valid > 0, ext, np.nan)


def _segment_extreme_leave_one_out(
    seg: SegmentedValues, smallest: bool
) -> np.ndarray:
    """Grouped min/max leave-one-out via extreme + runner-up reductions.

    Two masked segmented reductions suffice: the extreme itself, and the
    extreme with all extreme-valued positions masked out (the runner-up).
    Only a *uniquely* extreme element changes its group's value when
    removed — it falls back to the runner-up; everything else (including
    NULLs) sees the unchanged extreme.
    """
    sentinel = np.inf if smallest else -np.inf
    reducer = segment_min if smallest else segment_max
    n_valid = segment_count(seg.valid, seg.offsets)
    masked = np.where(seg.valid, seg.values, sentinel)
    ext = reducer(masked, seg.offsets, empty_fill=sentinel)
    ids = seg.segment_ids
    is_ext = seg.valid & (seg.values == ext[ids])
    mult = segment_count(is_ext, seg.offsets)
    runner = reducer(
        np.where(is_ext, sentinel, masked), seg.offsets, empty_fill=sentinel
    )
    out = ext[ids].copy()
    unique_ext = is_ext & (mult[ids] == 1.0)
    out[unique_ext] = runner[ids][unique_ext]
    out[seg.valid & (n_valid[ids] == 1.0)] = np.nan
    out[n_valid[ids] == 0.0] = np.nan
    return out


def _segment_extreme_without(
    seg: SegmentedValues, remove_mask: np.ndarray, smallest: bool
) -> np.ndarray:
    """Per-segment min/max after removing masked positions."""
    remove_mask = _as_flat_mask(seg, remove_mask)
    sentinel = np.inf if smallest else -np.inf
    reducer = segment_min if smallest else segment_max
    keep = seg.valid & ~remove_mask
    ext = reducer(
        np.where(keep, seg.values, sentinel), seg.offsets, empty_fill=sentinel
    )
    n_kept = segment_count(keep, seg.offsets)
    return np.where(n_kept > 0, ext, np.nan)


def _segment_extreme_without_pairs(
    pairs: SegmentPairs, remove_mask: np.ndarray, smallest: bool
) -> np.ndarray:
    """Per-pair min/max after removing each pair's masked positions."""
    sentinel = np.inf if smallest else -np.inf
    reducer = segment_min if smallest else segment_max
    keep = pairs.valid & ~remove_mask
    ext = reducer(
        np.where(keep, pairs.values, sentinel), pairs.offsets, empty_fill=sentinel
    )
    n_kept = segment_count(keep, pairs.offsets)
    return np.where(n_kept > 0, ext, np.nan)


def _segment_extreme_without_batch(
    seg: SegmentedValues, remove_masks: np.ndarray, smallest: bool
) -> np.ndarray:
    """Per-(row, segment) min/max after removing each row's masked positions."""
    remove_masks = _as_mask_matrix(seg, remove_masks)
    sentinel = np.inf if smallest else -np.inf
    reducer = segment_min_batch if smallest else segment_max_batch
    keep = seg.valid[None, :] & ~remove_masks
    ext = reducer(
        np.where(keep, seg.values[None, :], sentinel),
        seg.offsets,
        empty_fill=sentinel,
    )
    n_kept = segment_count_batch(keep, seg.offsets)
    return np.where(n_kept > 0, ext, np.nan)


def _extreme_leave_one_out(values: np.ndarray, smallest: bool) -> np.ndarray:
    """Vectorized leave-one-out for min/max via the two extreme values."""
    values = _as_float(values)
    nulls = np.isnan(values)
    valid = values[~nulls]
    n_valid = len(valid)
    out = np.empty(len(values), dtype=np.float64)
    if n_valid == 0:
        out[:] = np.nan
        return out
    extreme = valid.min() if smallest else valid.max()
    if n_valid == 1:
        out[:] = np.nan
        out[nulls] = extreme
        return out
    multiplicity = int((valid == extreme).sum())
    if multiplicity > 1:
        runner_up = extreme
    else:
        others = valid[valid != extreme]
        runner_up = others.min() if smallest else others.max()
    out[:] = extreme
    is_extreme = (values == extreme) & ~nulls
    if multiplicity == 1:
        out[is_extreme] = runner_up
    return out


_REGISTRY: dict[str, Aggregate] = {
    agg.name: agg
    for agg in (Count(), Sum(), Avg(), Var(), Stddev(), Min(), Max())
}


def get_aggregate(name: str) -> Aggregate:
    """Look up an aggregate implementation by SQL name (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise AggregateError(
            f"unknown aggregate {name!r}; supported: {', '.join(sorted(_REGISTRY))}"
        ) from None


def is_aggregate_name(name: str) -> bool:
    """Whether ``name`` is a recognized aggregate function name."""
    return name.lower() in _REGISTRY
