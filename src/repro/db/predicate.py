"""Conjunctive predicates: the unit of explanation in DBWipes.

A :class:`Predicate` is a conjunction of clauses over table columns:

* :class:`NumericClause` — an interval constraint ``lo <OP> column <OP> hi``
  with independently open/closed/unbounded ends.
* :class:`CategoricalClause` — a membership constraint
  ``column IN {v1, ...}`` or its negation.

Predicates are what the backend returns to the user (Figure 6 of the
paper), what gets clicked to clean the database, and what the query
rewriter splices into the WHERE clause as ``AND NOT (...)``. They render
to SQL, evaluate vectorized against tables, report complexity (clause
count, the ranker's penalty term), and simplify conjunctions on the same
column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from ..errors import SchemaError
from .expr import (
    And,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    conjoin,
)
from .table import Table


@dataclass(frozen=True)
class NumericClause:
    """An interval constraint on a numeric column.

    ``lo``/``hi`` of ``None`` mean unbounded on that side. Inclusive flags
    control ``<=`` vs ``<``.
    """

    column: str
    lo: float | None = None
    hi: float | None = None
    lo_inclusive: bool = True
    hi_inclusive: bool = False

    def __post_init__(self) -> None:
        if self.lo is None and self.hi is None:
            raise SchemaError("numeric clause must bound at least one side")
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise SchemaError(f"empty interval for {self.column}: ({self.lo}, {self.hi})")

    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of rows satisfying this clause."""
        values = table.column(self.column)
        result = np.ones(len(values), dtype=bool)
        with np.errstate(invalid="ignore"):
            if self.lo is not None:
                if self.lo_inclusive:
                    result &= np.asarray(values >= self.lo, dtype=bool)
                else:
                    result &= np.asarray(values > self.lo, dtype=bool)
            if self.hi is not None:
                if self.hi_inclusive:
                    result &= np.asarray(values <= self.hi, dtype=bool)
                else:
                    result &= np.asarray(values < self.hi, dtype=bool)
        if np.asarray(values).dtype.kind == "f":
            result[np.isnan(np.asarray(values, dtype=np.float64))] = False
        return result

    def to_expr(self) -> Expr:
        """This clause as a boolean :class:`Expr`."""
        parts: list[Expr] = []
        ref = ColumnRef(self.column)
        if self.lo is not None:
            op = ">=" if self.lo_inclusive else ">"
            parts.append(Comparison(op, ref, Literal(_tidy(self.lo))))
        if self.hi is not None:
            op = "<=" if self.hi_inclusive else "<"
            parts.append(Comparison(op, ref, Literal(_tidy(self.hi))))
        return conjoin(parts)

    def to_sql(self) -> str:
        """SQL text for this clause, e.g. ``(temp >= 100.0 AND temp < 130.0)``."""
        return self.to_expr().to_sql()

    def describe(self) -> str:
        """A compact human-readable form, e.g. ``100 <= temp < 130``."""
        parts = []
        if self.lo is not None:
            parts.append(f"{_fmt(self.lo)} {'<=' if self.lo_inclusive else '<'} ")
        parts.append(self.column)
        if self.hi is not None:
            parts.append(f" {'<=' if self.hi_inclusive else '<'} {_fmt(self.hi)}")
        return "".join(parts)

    def intersect(self, other: "NumericClause") -> "NumericClause | None":
        """The intersection of two intervals on the same column.

        Returns ``None`` when the intersection is empty.
        """
        if other.column != self.column:
            raise SchemaError("cannot intersect clauses on different columns")
        lo, lo_inc = self.lo, self.lo_inclusive
        if other.lo is not None and (lo is None or other.lo > lo):
            lo, lo_inc = other.lo, other.lo_inclusive
        elif other.lo is not None and other.lo == lo:
            lo_inc = lo_inc and other.lo_inclusive
        hi, hi_inc = self.hi, self.hi_inclusive
        if other.hi is not None and (hi is None or other.hi < hi):
            hi, hi_inc = other.hi, other.hi_inclusive
        elif other.hi is not None and other.hi == hi:
            hi_inc = hi_inc and other.hi_inclusive
        if lo is not None and hi is not None:
            if lo > hi or (lo == hi and not (lo_inc and hi_inc)):
                return None
        return NumericClause(self.column, lo, hi, lo_inc, hi_inc)


@dataclass(frozen=True)
class CategoricalClause:
    """A membership constraint on a categorical column."""

    column: str
    values: frozenset
    negated: bool = False

    def __post_init__(self) -> None:
        if not self.values:
            raise SchemaError("categorical clause needs at least one value")

    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of rows satisfying this clause."""
        column = table.column(self.column)
        if column.dtype == object:
            result = np.fromiter(
                (v is not None and v in self.values for v in column),
                dtype=bool,
                count=len(column),
            )
        else:
            result = np.zeros(len(column), dtype=bool)
            for value in self.values:
                result |= np.asarray(column == value, dtype=bool)
        return ~result if self.negated else result

    def to_expr(self) -> Expr:
        """This clause as a boolean :class:`Expr`.

        The negated form matches NULL values (a NULL is "not in the set"),
        so the rendered SQL explicitly includes ``IS NULL`` — a bare
        ``!=`` / ``NOT IN`` would silently drop NULL rows.
        """
        ordered = sorted(self.values, key=repr)
        ref = ColumnRef(self.column)
        if not self.negated:
            if len(ordered) == 1:
                return Comparison("=", ref, Literal(ordered[0]))
            return InList(ref, ordered)
        if len(ordered) == 1:
            positive: Expr = Comparison("!=", ref, Literal(ordered[0]))
        else:
            positive = InList(ref, ordered, negated=True)
        return Or([IsNull(ref), positive])

    def to_sql(self) -> str:
        """SQL text for this clause, e.g. ``(memo = 'REATTRIBUTION TO SPOUSE')``."""
        return self.to_expr().to_sql()

    def describe(self) -> str:
        """A compact human-readable form."""
        ordered = sorted(self.values, key=repr)
        op = "not in" if self.negated else "in"
        if len(ordered) == 1:
            op = "!=" if self.negated else "="
            return f"{self.column} {op} {ordered[0]!r}"
        inner = ", ".join(repr(value) for value in ordered)
        return f"{self.column} {op} {{{inner}}}"

    def intersect(self, other: "CategoricalClause") -> "CategoricalClause | None":
        """The conjunction of two membership constraints on the same column."""
        if other.column != self.column:
            raise SchemaError("cannot intersect clauses on different columns")
        if not self.negated and not other.negated:
            merged = self.values & other.values
            return CategoricalClause(self.column, merged) if merged else None
        if self.negated and other.negated:
            return CategoricalClause(self.column, self.values | other.values, negated=True)
        positive = self if not self.negated else other
        negative = other if not self.negated else self
        remaining = positive.values - negative.values
        return CategoricalClause(self.column, remaining) if remaining else None


Clause = NumericClause | CategoricalClause


class Predicate:
    """A conjunction of clauses describing a set of tuples."""

    def __init__(self, clauses: Iterable[Clause] = ()):
        self._clauses: tuple[Clause, ...] = tuple(clauses)

    @classmethod
    def true(cls) -> "Predicate":
        """The always-true predicate (empty conjunction)."""
        return cls(())

    @property
    def clauses(self) -> tuple[Clause, ...]:
        """The clauses in order."""
        return self._clauses

    @property
    def is_true(self) -> bool:
        """Whether this is the empty (always-true) conjunction."""
        return not self._clauses

    @property
    def complexity(self) -> int:
        """Number of atomic conditions — the ranker's complexity penalty.

        A two-sided interval counts as two conditions; a membership clause
        counts as one per listed value.
        """
        total = 0
        for clause in self._clauses:
            if isinstance(clause, NumericClause):
                total += int(clause.lo is not None) + int(clause.hi is not None)
            else:
                total += len(clause.values)
        return total

    def columns(self) -> set[str]:
        """Columns referenced by any clause."""
        return {clause.column for clause in self._clauses}

    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of rows satisfying every clause."""
        result = np.ones(len(table), dtype=bool)
        for clause in self._clauses:
            result &= clause.mask(table)
        return result

    def matching_tids(self, table: Table) -> np.ndarray:
        """Tids of rows satisfying this predicate."""
        return np.asarray(table.tids)[self.mask(table)]

    def to_expr(self) -> Expr:
        """The predicate as a boolean expression."""
        if not self._clauses:
            return Literal(True)
        return conjoin([clause.to_expr() for clause in self._clauses])

    def negated_expr(self) -> Expr:
        """``NOT (predicate)`` — what the query rewriter splices into WHERE."""
        return Not(self.to_expr())

    def to_sql(self) -> str:
        """SQL text of the conjunction."""
        return self.to_expr().to_sql()

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``sensorid = 15 and voltage < 2.4``."""
        if not self._clauses:
            return "TRUE"
        return " and ".join(clause.describe() for clause in self._clauses)

    def and_clause(self, clause: Clause) -> "Predicate":
        """A new predicate with one more clause appended."""
        return Predicate(self._clauses + (clause,))

    def simplify(self) -> "Predicate | None":
        """Merge clauses on the same column.

        Returns ``None`` if the conjunction is unsatisfiable (e.g. two
        disjoint intervals on one column).
        """
        numeric: dict[str, NumericClause] = {}
        categorical: dict[str, CategoricalClause] = {}
        order: list[tuple[str, str]] = []
        for clause in self._clauses:
            if isinstance(clause, NumericClause):
                key = ("num", clause.column)
                if clause.column in numeric:
                    merged = numeric[clause.column].intersect(clause)
                    if merged is None:
                        return None
                    numeric[clause.column] = merged
                else:
                    numeric[clause.column] = clause
                    order.append(key)
            else:
                key = ("cat", clause.column)
                if clause.column in categorical:
                    merged_cat = categorical[clause.column].intersect(clause)
                    if merged_cat is None:
                        return None
                    categorical[clause.column] = merged_cat
                else:
                    categorical[clause.column] = clause
                    order.append(key)
        clauses: list[Clause] = []
        for kind, column in order:
            clauses.append(numeric[column] if kind == "num" else categorical[column])
        return Predicate(clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return frozenset(self._clauses) == frozenset(other._clauses)

    def __hash__(self) -> int:
        return hash(frozenset(self._clauses))

    def __repr__(self) -> str:
        return f"Predicate({self.describe()})"


def equals(column: str, value: Any) -> Predicate:
    """Convenience: ``column = value`` as a one-clause predicate."""
    if isinstance(value, str):
        return Predicate([CategoricalClause(column, frozenset([value]))])
    return Predicate([NumericClause(column, value, value, True, True)])


def in_set(column: str, values: Iterable[Any]) -> Predicate:
    """Convenience: ``column IN values`` as a one-clause predicate."""
    return Predicate([CategoricalClause(column, frozenset(values))])


def interval(
    column: str,
    lo: float | None = None,
    hi: float | None = None,
    lo_inclusive: bool = True,
    hi_inclusive: bool = False,
) -> Predicate:
    """Convenience: an interval constraint as a one-clause predicate."""
    return Predicate([NumericClause(column, lo, hi, lo_inclusive, hi_inclusive)])


def _tidy(value: float) -> float | int:
    """Render integral floats as ints in generated SQL for readability."""
    if isinstance(value, float) and not math.isnan(value) and value.is_integer():
        return int(value)
    return value


def _fmt(value: float) -> str:
    tidied = _tidy(value)
    if isinstance(tidied, int):
        return str(tidied)
    return f"{value:.4g}"
