"""Query results: an output table plus its provenance and originating query."""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from .provenance import CoarseProvenance, FineProvenance
from .sqlparse.ast_nodes import SelectStatement
from .table import Table


class ResultSet:
    """The output of executing a SELECT.

    Wraps the output :class:`Table` (whose *tids are output row indexes*,
    not input tids) together with:

    * ``fine`` — fine-grained provenance: output row -> input tids,
    * ``coarse`` — the operator pipeline,
    * ``statement`` — the parsed query (used for rewriting),
    * ``group_key_names`` / ``aggregate_names`` — output column roles.
    """

    def __init__(
        self,
        output: Table,
        statement: SelectStatement,
        fine: FineProvenance,
        coarse: CoarseProvenance,
        group_key_names: tuple[str, ...],
        aggregate_names: tuple[str, ...],
        source: Table | None = None,
    ):
        self._output = output
        self.statement = statement
        self.fine = fine
        self.coarse = coarse
        self.group_key_names = group_key_names
        self.aggregate_names = aggregate_names
        #: The table the query scanned (before WHERE). Two executions of
        #: one query text over the same source object are equivalent —
        #: that identity keys the cross-session preprocess cache.
        self.source = source if source is not None else fine.base

    @property
    def output(self) -> Table:
        """The result rows as a table."""
        return self._output

    @property
    def column_names(self) -> tuple[str, ...]:
        """Output column names in SELECT order."""
        return self._output.schema.names

    def column(self, name: str) -> np.ndarray:
        """One output column as an array."""
        return self._output.column(name)

    def __len__(self) -> int:
        return len(self._output)

    @property
    def num_rows(self) -> int:
        """Number of result rows."""
        return len(self._output)

    def row(self, index: int) -> tuple[Any, ...]:
        """Result row ``index`` as a tuple."""
        return self._output.row(index)

    def row_dict(self, index: int) -> dict[str, Any]:
        """Result row ``index`` as a dict."""
        return self._output.row_dict(index)

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate over result rows as tuples."""
        return self._output.iter_rows()

    def lineage(self, row: int) -> np.ndarray:
        """Input tids behind result row ``row`` (fine-grained provenance)."""
        return self.fine.lineage(row)

    def lineage_table(self, row: int) -> Table:
        """Input tuples behind result row ``row`` as a table."""
        return self.fine.lineage_table(row)

    def inputs_for(self, rows: list[int] | np.ndarray) -> Table:
        """Union of input tuples behind several result rows (the paper's F)."""
        return self.fine.lineage_table_many(list(rows))

    def to_text(self, max_rows: int = 20) -> str:
        """Plain-text rendering of the result rows."""
        return self._output.to_text(max_rows=max_rows)

    def __repr__(self) -> str:
        return (
            f"ResultSet({len(self._output)} rows, "
            f"keys={list(self.group_key_names)}, aggs={list(self.aggregate_names)})"
        )
