"""Query execution with fine-grained provenance capture.

The executor runs a :class:`~repro.db.planner.LogicalPlan` against a
table and produces a :class:`~repro.db.result.ResultSet`. Provenance is
captured *during* grouping — every output row records the tids of the
input tuples in its group — so ranked provenance never has to re-derive
lineage afterwards.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import PlanError
from .planner import LogicalPlan
from .provenance import CoarseProvenance, FineProvenance, OpNode
from .result import ResultSet
from .schema import Column, Schema
from .sqlparse.ast_nodes import SelectStatement, Star
from .table import Table
from .types import ColumnType


def execute_plan(plan: LogicalPlan, table: Table) -> ResultSet:
    """Execute a validated plan against its table."""
    statement = plan.statement
    ops = [OpNode("scan", plan.table_name)]
    base = table
    if statement.where is not None:
        mask = statement.where.eval(base)
        base = base.filter(mask)
        ops.append(OpNode("filter", statement.where.to_sql()))
    if plan.is_aggregate_query:
        output, lineage, key_names, agg_names = _execute_aggregate(plan, base, ops)
    else:
        output, lineage, key_names, agg_names = _execute_projection(plan, base, ops)
    fine = FineProvenance(base, lineage)

    if statement.having is not None:
        having_mask = statement.having.eval(output)
        positions = np.flatnonzero(having_mask)
        output = output.take(positions)
        fine = fine.reorder(list(positions))
        ops.append(OpNode("having", statement.having.to_sql()))

    if statement.order_by:
        positions = _order_positions(statement, output)
        output = output.take(positions)
        fine = fine.reorder(list(positions))
        ops.append(OpNode("order", ", ".join(o.to_sql() for o in statement.order_by)))

    if statement.limit is not None:
        keep = min(statement.limit, len(output))
        positions = np.arange(keep, dtype=np.int64)
        output = output.take(positions)
        fine = fine.reorder(list(positions))
        ops.append(OpNode("limit", str(statement.limit)))

    # Result rows are addressed by position; normalize output tids to 0..n-1.
    output = Table(
        output.schema,
        {name: output.column(name) for name in output.schema.names},
        tids=np.arange(len(output), dtype=np.int64),
        name="result",
    )
    return ResultSet(
        output=output,
        statement=statement,
        fine=fine,
        coarse=CoarseProvenance(tuple(ops)),
        group_key_names=key_names,
        aggregate_names=agg_names,
    )


def _execute_aggregate(
    plan: LogicalPlan, base: Table, ops: list[OpNode]
) -> tuple[Table, list[np.ndarray], tuple[str, ...], tuple[str, ...]]:
    key_arrays = [spec.expr.eval(base) for spec in plan.keys]
    if key_arrays:
        codes, group_order = _group_codes(key_arrays)
        n_groups = len(group_order)
        ops.append(
            OpNode("groupby", ", ".join(spec.expr.to_sql() for spec in plan.keys))
        )
    else:
        codes = np.zeros(len(base), dtype=np.int64)
        group_order = [np.arange(len(base), dtype=np.int64)] if len(base) else [
            np.empty(0, dtype=np.int64)
        ]
        n_groups = 1

    lineage: list[np.ndarray] = []
    base_tids = np.asarray(base.tids)
    for group_positions in group_order:
        lineage.append(base_tids[group_positions])

    out_columns: dict[str, np.ndarray] = {}
    out_schema_cols: list[Column] = []

    key_first_positions = np.array(
        [positions[0] if len(positions) else -1 for positions in group_order],
        dtype=np.int64,
    )
    for spec_index, spec in enumerate(plan.keys):
        array = key_arrays[spec_index]
        if n_groups == 1 and len(base) == 0:
            column = np.empty(0, dtype=array.dtype)
            lineage = [np.empty(0, dtype=np.int64)]
        else:
            column = array[key_first_positions]
        out_columns[spec.output_name] = _coerce_output(column, spec.ctype)
        out_schema_cols.append(Column(spec.output_name, spec.ctype))

    for spec in plan.aggs:
        values = _agg_input(spec, base)
        agg_out = np.empty(n_groups, dtype=np.float64)
        for group_index, group_positions in enumerate(group_order):
            group_values = values[group_positions]
            agg_out[group_index] = spec.impl.compute(group_values)
        ctype = ColumnType.INT if spec.impl.name == "count" else ColumnType.FLOAT
        if ctype is ColumnType.INT:
            out_columns[spec.output_name] = agg_out.astype(np.int64)
        else:
            out_columns[spec.output_name] = agg_out
        out_schema_cols.append(Column(spec.output_name, ctype))
        ops.append(OpNode("aggregate", spec.call.to_sql()))

    # Reorder output columns to SELECT order.
    ordered_cols: list[Column] = []
    seen: set[str] = set()
    for kind, index in plan.output_order:
        name = plan.keys[index].output_name if kind == "key" else plan.aggs[index].output_name
        if name in seen:
            continue
        seen.add(name)
        ordered_cols.append(next(c for c in out_schema_cols if c.name == name))
    for column in out_schema_cols:
        if column.name not in seen:
            seen.add(column.name)
            ordered_cols.append(column)
    output = Table(Schema(ordered_cols), out_columns, name="result")
    key_names = tuple(spec.output_name for spec in plan.keys)
    agg_names = tuple(spec.output_name for spec in plan.aggs)
    return output, lineage, key_names, agg_names


def _execute_projection(
    plan: LogicalPlan, base: Table, ops: list[OpNode]
) -> tuple[Table, list[np.ndarray], tuple[str, ...], tuple[str, ...]]:
    out_columns: dict[str, np.ndarray] = {}
    out_schema_cols: list[Column] = []
    for spec in plan.keys:
        array = spec.expr.eval(base)
        out_columns[spec.output_name] = _coerce_output(array, spec.ctype)
        out_schema_cols.append(Column(spec.output_name, spec.ctype))
    ops.append(OpNode("project", ", ".join(spec.output_name for spec in plan.keys)))
    output = Table(Schema(out_schema_cols), out_columns, name="result")
    base_tids = np.asarray(base.tids)
    lineage = [np.array([tid], dtype=np.int64) for tid in base_tids]
    key_names = tuple(spec.output_name for spec in plan.keys)
    return output, lineage, key_names, ()


def _agg_input(spec: Any, base: Table) -> np.ndarray:
    """The numeric argument array for one aggregate over the base table."""
    if isinstance(spec.call.arg, Star):
        return np.ones(len(base), dtype=np.float64)
    values = spec.call.arg.eval(base)
    if values.dtype == object:
        # count() over a categorical column: count non-nulls.
        if spec.impl.name == "count":
            return np.fromiter(
                (np.nan if v is None else 1.0 for v in values),
                dtype=np.float64,
                count=len(values),
            )
        raise PlanError(f"{spec.impl.name}() requires a numeric argument")
    return np.asarray(values, dtype=np.float64)


def _group_codes(key_arrays: list[np.ndarray]) -> tuple[np.ndarray, list[np.ndarray]]:
    """Combine several key arrays into group codes and per-group positions.

    Groups are ordered by ascending key tuples (the order ``np.unique``
    produces per key column, combined left-to-right), matching the stable
    ordering the dashboard relies on for the x-axis.
    """
    code_arrays = []
    cardinalities = []
    for array in key_arrays:
        if array.dtype == object:
            # np.unique on object arrays fails on None; map via dict.
            uniques = sorted({v for v in array if v is not None}, key=repr)
            mapping = {value: i for i, value in enumerate(uniques)}
            codes = np.fromiter(
                (mapping.get(v, len(uniques)) for v in array),
                dtype=np.int64,
                count=len(array),
            )
            cardinality = len(uniques) + 1
        else:
            uniques, codes = np.unique(array, return_inverse=True)
            codes = codes.astype(np.int64)
            cardinality = len(uniques)
        code_arrays.append(codes)
        cardinalities.append(max(cardinality, 1))
    combined = np.zeros(len(code_arrays[0]), dtype=np.int64)
    for codes, cardinality in zip(code_arrays, cardinalities):
        combined = combined * cardinality + codes
    unique_codes, inverse = np.unique(combined, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    boundaries = np.searchsorted(inverse[order], np.arange(len(unique_codes) + 1))
    group_positions = [
        order[boundaries[i]: boundaries[i + 1]] for i in range(len(unique_codes))
    ]
    return inverse, group_positions


def _order_positions(statement: SelectStatement, output: Table) -> np.ndarray:
    positions = np.arange(len(output), dtype=np.int64)
    # Apply keys right-to-left with stable sorts for lexicographic order.
    # Descending order is achieved by negating the sort key (never by
    # reversing a stable sort, which would also reverse ties).
    for item in reversed(statement.order_by):
        values = item.expr.eval(output)
        if values.dtype == object:
            order = sorted(
                range(len(values)),
                key=lambda i: (values[i] is None, values[i] or ""),
                reverse=item.descending,
            )
            order = np.array(order, dtype=np.int64)
        elif item.descending:
            order = np.argsort(
                -np.asarray(values, dtype=np.float64), kind="stable"
            )
        else:
            order = np.argsort(values, kind="stable")
        positions = positions[order]
        output = output.take(order)
    return positions


def _coerce_output(array: np.ndarray, ctype: ColumnType) -> np.ndarray:
    expected = ctype.numpy_dtype
    if array.dtype == expected:
        return array
    if ctype is ColumnType.FLOAT:
        return np.asarray(array, dtype=np.float64)
    if ctype is ColumnType.INT:
        return np.asarray(array, dtype=np.int64)
    if ctype is ColumnType.BOOL:
        return np.asarray(array, dtype=np.bool_)
    out = np.empty(len(array), dtype=object)
    out[:] = array
    return out
